//! The multi-process shard backend: worker processes execute disjoint
//! shard ranges and stream partial state back over pipes.
//!
//! ## Protocol
//!
//! One round trip, all sealed [`roam_codec`] frames:
//!
//! 1. The parent spawns `fleet_worker` processes, writes one
//!    [`KIND_JOB`] frame to each worker's stdin, and closes it. The job
//!    carries everything the worker needs — seed, sizing, telemetry
//!    mode, the *resolved* transport/calendar/fault knobs (workers never
//!    consult the environment, so parent and workers can't diverge), its
//!    striped shard list with per-shard resume states, and the
//!    checkpoint policy.
//! 2. The worker runs its shards sequentially. Before each shard it
//!    writes one [`KIND_HEARTBEAT`] frame (shard index + attempt) so
//!    the supervising parent can tell a long shard from a stalled
//!    worker — and knows which shard to charge when the child dies
//!    mid-flight. Each finished shard becomes one [`KIND_RESULT`]
//!    frame; the worker exits 0 when its stripe is done.
//! 3. The parent's [`crate::supervisor`] reads the stream, classifies
//!    every deviation (crash, nonzero exit, stall, protocol violation)
//!    as a typed [`crate::supervisor::WorkerError`], and recovers by
//!    respawn + re-dispatch. Outcomes feed the same merger the
//!    in-process backend uses, so `FleetReport::render()` is
//!    byte-identical across backends — and across recoveries, because
//!    a shard is a pure function of `(seed, config, spec)`.
//!
//! Worker stdout carries nothing but protocol frames; anything human-
//! readable a worker has to say goes to stderr (inherited from the
//! parent). That keeps `fleet_smoke`'s stdout-purity contract intact in
//! worker mode.
//!
//! The worker side also hosts the chaos half of the supervision story:
//! when the job's [`WorkerFaultSpec`] is active, a keyed draw per
//! `(shard, attempt)` decides whether this execution crashes, stalls,
//! tears its result frame, or exits nonzero — see
//! [`crate::supervisor`] for the spec and the recovery contract.

use crate::checkpoint::{
    decode_config, decode_faults, encode_config, encode_faults, telemetry_from_wire,
    telemetry_to_wire, CheckpointPolicy, ShardState, CKPT_VERSION, KIND_HEARTBEAT, KIND_JOB,
    KIND_RESULT,
};
use crate::config::FleetConfig;
use crate::exec::{run_fleet_shard, ShardOutcome, ShardSpec};
use crate::report::FleetReport;
use crate::supervisor::{InjectedFault, ProtocolViolation, WorkerFaultSpec};
use roam_codec::{CodecError, Decoder, Encoder, Frame};
use roam_netsim::{CalendarKind, FaultSpec, TransportKind};
use roam_telemetry::{TelemetryMode, TelemetrySnapshot};
use std::path::PathBuf;

/// Field tags for the job payload.
mod job_tag {
    pub const SEED: u32 = 1;
    pub const CONFIG: u32 = 2;
    pub const TELEMETRY: u32 = 3;
    pub const TRANSPORT: u32 = 4;
    pub const CALENDAR: u32 = 5;
    pub const FAULTS: u32 = 6;
    pub const SHARD: u32 = 7;
    pub const CKPT_DIR: u32 = 8;
    pub const CKPT_EVERY: u32 = 9;
    pub const CKPT_HALT: u32 = 10;
    pub const WORKER_FAULTS: u32 = 11;
    pub const DEADLINE_MS: u32 = 12;
}

/// Field tags for a shard entry inside a job.
mod job_shard_tag {
    pub const INDEX: u32 = 1;
    pub const LO: u32 = 2;
    pub const HI: u32 = 3;
    pub const RESUME: u32 = 4;
    pub const ATTEMPT: u32 = 5;
}

/// Field tags for the worker-fault section of a job.
mod wfault_tag {
    pub const CRASH: u32 = 1;
    pub const STALL: u32 = 2;
    pub const TORN: u32 = 3;
    pub const EXIT: u32 = 4;
}

/// Field tags for a heartbeat payload.
mod heartbeat_tag {
    pub const SHARD: u32 = 1;
    pub const ATTEMPT: u32 = 2;
}

/// Field tags for the result payload.
mod result_tag {
    pub const INDEX: u32 = 1;
    pub const REPORT: u32 = 2;
    pub const TELEMETRY: u32 = 3;
    pub const WALL_MS: u32 = 4;
    pub const COMPLETED: u32 = 5;
}

/// Everything one worker process needs to run its shards.
#[derive(Debug)]
pub(crate) struct WorkerJob {
    pub seed: u64,
    pub config: FleetConfig,
    pub telemetry: TelemetryMode,
    pub transport: TransportKind,
    pub calendar: CalendarKind,
    pub faults: FaultSpec,
    /// The resolved worker-fault injection spec — shipped in the job
    /// (like every other knob) so parent and workers cannot diverge on
    /// which executions get sabotaged.
    pub worker_faults: WorkerFaultSpec,
    /// The supervisor's stall deadline, so an injected stall knows how
    /// long it must sleep to be detected rather than merely slow.
    pub deadline_ms: u64,
    pub shards: Vec<ShardSpec>,
    pub checkpoint: Option<CheckpointPolicy>,
}

impl WorkerJob {
    pub(crate) fn to_frame(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(job_tag::SEED, self.seed);
        e.section(job_tag::CONFIG, |se| encode_config(se, &self.config));
        e.u64(job_tag::TELEMETRY, telemetry_to_wire(self.telemetry));
        e.u64(
            job_tag::TRANSPORT,
            match self.transport {
                TransportKind::ClosedForm => 0,
                TransportKind::Engine => 1,
            },
        );
        e.u64(
            job_tag::CALENDAR,
            match self.calendar {
                CalendarKind::Wheel => 0,
                CalendarKind::Heap => 1,
            },
        );
        e.section(job_tag::FAULTS, |se| encode_faults(se, &self.faults));
        if self.worker_faults.enabled() {
            e.section(job_tag::WORKER_FAULTS, |se| {
                se.f64(wfault_tag::CRASH, self.worker_faults.crash);
                se.f64(wfault_tag::STALL, self.worker_faults.stall);
                se.f64(wfault_tag::TORN, self.worker_faults.torn);
                se.f64(wfault_tag::EXIT, self.worker_faults.exit);
            });
        }
        e.u64(job_tag::DEADLINE_MS, self.deadline_ms);
        for shard in &self.shards {
            e.section(job_tag::SHARD, |se| {
                se.u64(job_shard_tag::INDEX, shard.index as u64);
                se.u64(job_shard_tag::LO, shard.lo);
                se.u64(job_shard_tag::HI, shard.hi);
                if let Some(state) = &shard.resume {
                    se.section(job_shard_tag::RESUME, |re| state.encode_fields(re));
                }
                if shard.attempt > 0 {
                    se.u64(job_shard_tag::ATTEMPT, u64::from(shard.attempt));
                }
            });
        }
        if let Some(policy) = &self.checkpoint {
            e.str(job_tag::CKPT_DIR, &policy.dir.to_string_lossy());
            e.u64(job_tag::CKPT_EVERY, policy.every_days);
            if let Some(halt) = policy.halt_after {
                e.u64(job_tag::CKPT_HALT, u64::from(halt));
            }
        }
        e.into_frame(KIND_JOB, CKPT_VERSION)
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(payload);
        let mut seed = None;
        let mut config = None;
        let mut telemetry = TelemetryMode::Off;
        let mut transport = TransportKind::ClosedForm;
        let mut calendar = CalendarKind::Wheel;
        let mut faults = None;
        let mut worker_faults = WorkerFaultSpec::off();
        let mut deadline_ms = crate::supervisor::DEFAULT_WORKER_DEADLINE_MS;
        let mut shards = Vec::new();
        let (mut dir, mut every, mut halt) = (None, None, None);
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                job_tag::SEED => seed = Some(v.as_u64(tag)?),
                job_tag::CONFIG => config = Some(decode_config(&mut v.as_section(tag)?)?),
                job_tag::TELEMETRY => telemetry = telemetry_from_wire(v.as_u64(tag)?)?,
                job_tag::TRANSPORT => {
                    transport = match v.as_u64(tag)? {
                        0 => TransportKind::ClosedForm,
                        1 => TransportKind::Engine,
                        _ => return Err(CodecError::BadValue("transport kind")),
                    };
                }
                job_tag::CALENDAR => {
                    calendar = match v.as_u64(tag)? {
                        0 => CalendarKind::Wheel,
                        1 => CalendarKind::Heap,
                        _ => return Err(CodecError::BadValue("calendar kind")),
                    };
                }
                job_tag::FAULTS => faults = Some(decode_faults(&mut v.as_section(tag)?)?),
                job_tag::WORKER_FAULTS => {
                    let mut wd = v.as_section(tag)?;
                    while let Some((wtag, wv)) = wd.next_field()? {
                        match wtag {
                            wfault_tag::CRASH => worker_faults.crash = wv.as_f64(wtag)?,
                            wfault_tag::STALL => worker_faults.stall = wv.as_f64(wtag)?,
                            wfault_tag::TORN => worker_faults.torn = wv.as_f64(wtag)?,
                            wfault_tag::EXIT => worker_faults.exit = wv.as_f64(wtag)?,
                            _ => {}
                        }
                    }
                }
                job_tag::DEADLINE_MS => deadline_ms = v.as_u64(tag)?,
                job_tag::SHARD => {
                    let mut sd = v.as_section(tag)?;
                    let (mut index, mut lo, mut hi, mut resume) = (None, None, None, None);
                    let mut attempt = 0u32;
                    while let Some((stag, sv)) = sd.next_field()? {
                        match stag {
                            job_shard_tag::INDEX => {
                                index = Some(
                                    usize::try_from(sv.as_u64(stag)?)
                                        .map_err(|_| CodecError::BadValue("shard index"))?,
                                );
                            }
                            job_shard_tag::LO => lo = Some(sv.as_u64(stag)?),
                            job_shard_tag::HI => hi = Some(sv.as_u64(stag)?),
                            job_shard_tag::RESUME => {
                                resume =
                                    Some(ShardState::decode_fields(&mut sv.as_section(stag)?)?);
                            }
                            job_shard_tag::ATTEMPT => {
                                attempt = u32::try_from(sv.as_u64(stag)?)
                                    .map_err(|_| CodecError::BadValue("shard attempt"))?;
                            }
                            _ => {}
                        }
                    }
                    shards.push(ShardSpec {
                        index: index.ok_or(CodecError::MissingField("shard index"))?,
                        lo: lo.ok_or(CodecError::MissingField("shard lo"))?,
                        hi: hi.ok_or(CodecError::MissingField("shard hi"))?,
                        resume,
                        attempt,
                    });
                }
                job_tag::CKPT_DIR => dir = Some(PathBuf::from(v.as_str(tag)?)),
                job_tag::CKPT_EVERY => every = Some(v.as_u64(tag)?),
                job_tag::CKPT_HALT => {
                    halt = Some(
                        u32::try_from(v.as_u64(tag)?)
                            .map_err(|_| CodecError::BadValue("halt_after"))?,
                    );
                }
                _ => {}
            }
        }
        let checkpoint = match (dir, every) {
            (Some(dir), Some(every_days)) => Some(CheckpointPolicy {
                dir,
                every_days,
                halt_after: halt,
            }),
            (None, None) => None,
            _ => return Err(CodecError::MissingField("checkpoint policy")),
        };
        Ok(WorkerJob {
            seed: seed.ok_or(CodecError::MissingField("seed"))?,
            config: config.ok_or(CodecError::MissingField("config"))?,
            telemetry,
            transport,
            calendar,
            faults: faults.ok_or(CodecError::MissingField("faults"))?,
            worker_faults,
            deadline_ms,
            shards,
            checkpoint,
        })
    }
}

/// Seal one heartbeat frame: "I am alive and about to run `shard`
/// (attempt `attempt`)". Emitted before each shard so the supervisor
/// can distinguish a long shard from a stalled worker and knows which
/// shard an in-flight death should be charged to.
fn heartbeat_frame(shard: usize, attempt: u32) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(heartbeat_tag::SHARD, shard as u64);
    e.u64(heartbeat_tag::ATTEMPT, u64::from(attempt));
    e.into_frame(KIND_HEARTBEAT, CKPT_VERSION)
}

fn decode_heartbeat(payload: &[u8]) -> Result<(usize, u32), CodecError> {
    let mut d = Decoder::new(payload);
    let (mut shard, mut attempt) = (None, 0u32);
    while let Some((tag, v)) = d.next_field()? {
        match tag {
            heartbeat_tag::SHARD => {
                shard = Some(
                    usize::try_from(v.as_u64(tag)?)
                        .map_err(|_| CodecError::BadValue("heartbeat shard"))?,
                );
            }
            heartbeat_tag::ATTEMPT => {
                attempt = u32::try_from(v.as_u64(tag)?)
                    .map_err(|_| CodecError::BadValue("heartbeat attempt"))?;
            }
            _ => {}
        }
    }
    Ok((
        shard.ok_or(CodecError::MissingField("heartbeat shard"))?,
        attempt,
    ))
}

fn result_frame(outcome: &ShardOutcome) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(result_tag::INDEX, outcome.index as u64);
    e.section(result_tag::REPORT, |se| outcome.report.encode_fields(se));
    e.section(result_tag::TELEMETRY, |se| outcome.snap.encode_fields(se));
    e.f64(result_tag::WALL_MS, outcome.wall_ms);
    e.u64(result_tag::COMPLETED, u64::from(outcome.completed));
    e.into_frame(KIND_RESULT, CKPT_VERSION)
}

fn decode_result(payload: &[u8]) -> Result<ShardOutcome, CodecError> {
    let mut d = Decoder::new(payload);
    let (mut index, mut report, mut snap) = (None, None, None);
    let mut wall_ms = 0.0;
    let mut completed = true;
    while let Some((tag, v)) = d.next_field()? {
        match tag {
            result_tag::INDEX => {
                index = Some(
                    usize::try_from(v.as_u64(tag)?)
                        .map_err(|_| CodecError::BadValue("shard index"))?,
                );
            }
            result_tag::REPORT => {
                report = Some(FleetReport::decode_fields(&mut v.as_section(tag)?)?)
            }
            result_tag::TELEMETRY => {
                snap = Some(TelemetrySnapshot::decode_fields(&mut v.as_section(tag)?)?);
            }
            result_tag::WALL_MS => wall_ms = v.as_f64(tag)?,
            result_tag::COMPLETED => completed = v.as_u64(tag)? != 0,
            _ => {}
        }
    }
    Ok(ShardOutcome {
        index: index.ok_or(CodecError::MissingField("result index"))?,
        report: report.ok_or(CodecError::MissingField("result report"))?,
        snap: snap.ok_or(CodecError::MissingField("result telemetry"))?,
        wall_ms,
        completed,
        // Session streaming needs the in-process backend (the runner
        // asserts it), so worker results never carry records.
        sessions: Vec::new(),
    })
}

/// Locate the worker binary: `ROAM_FLEET_WORKER_BIN`, an explicit
/// builder override, or `fleet_worker` next to the current executable
/// (where cargo places sibling bin targets).
pub(crate) fn find_worker_bin(explicit: Option<&PathBuf>) -> PathBuf {
    if let Some(path) = explicit {
        return path.clone();
    }
    if let Ok(path) = std::env::var("ROAM_FLEET_WORKER_BIN") {
        return PathBuf::from(path);
    }
    let name = format!("fleet_worker{}", std::env::consts::EXE_SUFFIX);
    if let Ok(exe) = std::env::current_exe() {
        if let Some(dir) = exe.parent() {
            let sibling = dir.join(&name);
            if sibling.exists() {
                return sibling;
            }
            // Test binaries live one level down, in target/<profile>/deps.
            if let Some(parent) = dir.parent() {
                let up = parent.join(&name);
                if up.exists() {
                    return up;
                }
            }
        }
    }
    PathBuf::from(name)
}

/// One decoded, protocol-conformant frame from a worker's stdout.
#[derive(Debug)]
pub(crate) enum WorkerFrame {
    /// The worker is alive and about to run `shard` (attempt `attempt`).
    Heartbeat { shard: usize, attempt: u32 },
    /// One finished shard.
    Result(Box<ShardOutcome>),
}

/// Decode one framed message from a worker's result stream, refusing
/// every malformation with a typed [`ProtocolViolation`]: unsealable
/// bytes (bad magic, truncated header, integrity-hash mismatch),
/// version skew, frame kinds outside the result protocol, and payloads
/// that do not decode. The supervisor turns any violation into a
/// kill + respawn + retry; nothing here panics and nothing corrupt is
/// ever silently accepted.
pub(crate) fn parse_worker_frame(bytes: &[u8]) -> Result<WorkerFrame, ProtocolViolation> {
    let (frame, _) = Frame::parse(bytes).map_err(ProtocolViolation::Frame)?;
    if frame.version != CKPT_VERSION {
        return Err(ProtocolViolation::WrongVersion(frame.version));
    }
    match frame.kind {
        KIND_RESULT => decode_result(frame.payload)
            .map(|outcome| WorkerFrame::Result(Box::new(outcome)))
            .map_err(ProtocolViolation::Payload),
        KIND_HEARTBEAT => decode_heartbeat(frame.payload)
            .map(|(shard, attempt)| WorkerFrame::Heartbeat { shard, attempt })
            .map_err(ProtocolViolation::Payload),
        other => Err(ProtocolViolation::WrongKind(other)),
    }
}

/// One liveness/progress event on a worker's stdout, as the
/// supervisor's reader thread sees it.
#[derive(Debug)]
pub(crate) enum WorkerEvent {
    /// The worker announced a shard. The supervisor cross-checks both
    /// fields against what it dispatched: an unowned shard or a stale
    /// attempt number means a confused child.
    Heartbeat { shard: usize, attempt: u32 },
    /// The worker delivered a shard outcome.
    Result(Box<ShardOutcome>),
    /// The stream broke protocol; reading stopped here.
    Violation(ProtocolViolation),
    /// The stream ended cleanly (worker closed stdout).
    Eof,
}

/// Drain one worker's stdout into events: frames while the stream is
/// healthy, exactly one terminal [`WorkerEvent::Violation`] or
/// [`WorkerEvent::Eof`] at the end. Runs on a supervisor reader thread;
/// the emit callback forwards into the supervisor's event channel.
pub(crate) fn read_worker_stream(mut input: impl std::io::Read, mut emit: impl FnMut(WorkerEvent)) {
    loop {
        match Frame::read_from(&mut input) {
            Ok(None) => {
                emit(WorkerEvent::Eof);
                return;
            }
            Ok(Some(bytes)) => match parse_worker_frame(&bytes) {
                Ok(WorkerFrame::Heartbeat { shard, attempt }) => {
                    emit(WorkerEvent::Heartbeat { shard, attempt });
                }
                Ok(WorkerFrame::Result(outcome)) => emit(WorkerEvent::Result(outcome)),
                Err(violation) => {
                    emit(WorkerEvent::Violation(violation));
                    return;
                }
            },
            Err(e) => {
                emit(WorkerEvent::Violation(ProtocolViolation::Truncated(
                    e.to_string(),
                )));
                return;
            }
        }
    }
}

/// Worker side: the whole child process. Reads one job frame from
/// `input`, pins the job's resolved knobs process-wide (this process
/// never reads `ROAM_*`), then runs its shards sequentially — one
/// heartbeat frame before each shard, one result frame after.
///
/// When the job carries an active [`WorkerFaultSpec`], the keyed draw
/// for each `(shard, attempt)` may sabotage the execution instead:
/// abort mid-shard, sleep past the supervisor's deadline, tear the
/// result frame (truncate it or flip a byte so the integrity hash
/// fails), or exit nonzero. The sabotage always happens *after* the
/// heartbeat, so the parent can charge the right shard's retry budget.
///
/// # Errors
/// An error message when the job stream is malformed (or an injected
/// nonzero-exit fault fired); the caller (the `fleet_worker` binary)
/// reports it on stderr and exits nonzero.
pub fn serve(
    input: &mut impl std::io::Read,
    output: &mut impl std::io::Write,
) -> Result<(), String> {
    let bytes = Frame::read_from(input)
        .map_err(|e| format!("reading job: {e}"))?
        .ok_or("empty input: expected one job frame")?;
    let (frame, _) = Frame::parse(&bytes).map_err(|e| format!("parsing job frame: {e}"))?;
    if frame.kind != KIND_JOB {
        return Err(format!("expected job frame, got kind {}", frame.kind));
    }
    if frame.version != CKPT_VERSION {
        return Err(format!(
            "job format v{} unsupported (worker speaks v{})",
            frame.version, CKPT_VERSION
        ));
    }
    let job = WorkerJob::decode(frame.payload).map_err(|e| format!("decoding job: {e}"))?;
    // Pin the resolved knobs for the life of the process. No restore
    // guards: the process exits when the job is done.
    TransportKind::override_transport(Some(job.transport));
    CalendarKind::override_calendar(Some(job.calendar));
    FaultSpec::override_faults(Some(job.faults));
    for spec in job.shards {
        let (index, attempt) = (spec.index, spec.attempt);
        output
            .write_all(&heartbeat_frame(index, attempt))
            .and_then(|()| output.flush())
            .map_err(|e| format!("writing heartbeat: {e}"))?;
        let fault = job.worker_faults.decide(job.seed, index, attempt);
        match fault {
            Some(InjectedFault::Crash) => {
                // Die by signal with the shard announced but unfinished
                // — indistinguishable from a real mid-shard crash.
                std::process::abort();
            }
            Some(InjectedFault::ExitNonzero) => {
                return Err(format!(
                    "worker-fault injection: nonzero exit on shard {index} attempt {attempt}"
                ));
            }
            Some(InjectedFault::Stall) => {
                // Sleep long enough that the parent's deadline *must*
                // trip, then abort in case nobody kills us.
                let ms = job.deadline_ms + job.deadline_ms.min(2_000) + 250;
                std::thread::sleep(std::time::Duration::from_millis(ms));
                std::process::abort();
            }
            _ => {}
        }
        let outcome = run_fleet_shard(
            job.seed,
            &job.config,
            spec,
            job.telemetry,
            job.checkpoint.as_ref(),
            false,
        );
        let mut frame = result_frame(&outcome);
        match fault {
            Some(InjectedFault::TornTruncate) => {
                // Half a frame, then a clean exit: the parent sees a
                // truncated stream from a 0-exit child.
                frame.truncate(frame.len() / 2);
                output
                    .write_all(&frame)
                    .and_then(|()| output.flush())
                    .map_err(|e| format!("writing torn result: {e}"))?;
                return Ok(());
            }
            Some(InjectedFault::TornBitflip) => {
                // Flip the frame's last byte (hash trailer): the frame
                // arrives whole but fails its integrity check.
                if let Some(last) = frame.last_mut() {
                    *last ^= 0x40;
                }
                output
                    .write_all(&frame)
                    .and_then(|()| output.flush())
                    .map_err(|e| format!("writing torn result: {e}"))?;
                return Ok(());
            }
            _ => {}
        }
        output
            .write_all(&frame)
            .and_then(|()| output.flush())
            .map_err(|e| format!("writing shard result: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_round_trips_through_its_frame() {
        let job = WorkerJob {
            seed: 42,
            config: FleetConfig::default(),
            telemetry: TelemetryMode::Summary,
            transport: TransportKind::Engine,
            calendar: CalendarKind::Heap,
            faults: FaultSpec::heavy(),
            worker_faults: WorkerFaultSpec::light(),
            deadline_ms: 12_345,
            shards: vec![
                ShardSpec {
                    index: 0,
                    lo: 0,
                    hi: 50,
                    resume: None,
                    attempt: 0,
                },
                ShardSpec {
                    index: 2,
                    lo: 100,
                    hi: 150,
                    resume: Some(ShardState {
                        index: 2,
                        next_uid: 120,
                        report: FleetReport::new(4),
                        telemetry: TelemetrySnapshot::default(),
                    }),
                    attempt: 3,
                },
            ],
            checkpoint: Some(CheckpointPolicy {
                dir: PathBuf::from("/tmp/ckpt"),
                every_days: 9000,
                halt_after: Some(1),
            }),
        };
        let frame = job.to_frame();
        let (parsed, _) = Frame::parse(&frame).expect("job frame parses");
        assert_eq!(parsed.kind, KIND_JOB);
        let back = WorkerJob::decode(parsed.payload).expect("job decodes");
        assert_eq!(back.seed, 42);
        assert_eq!(back.transport, TransportKind::Engine);
        assert_eq!(back.calendar, CalendarKind::Heap);
        assert_eq!(back.worker_faults, WorkerFaultSpec::light());
        assert_eq!(back.deadline_ms, 12_345);
        assert_eq!(back.shards.len(), 2);
        assert_eq!(back.shards[0].attempt, 0);
        assert_eq!(back.shards[1].attempt, 3);
        assert_eq!(
            back.shards[1].resume.as_ref().expect("resume").next_uid,
            120
        );
        let policy = back.checkpoint.expect("policy");
        assert_eq!(policy.every_days, 9000);
        assert_eq!(policy.halt_after, Some(1));
    }

    #[test]
    fn result_round_trips_through_its_frame() {
        let outcome = ShardOutcome {
            index: 3,
            report: FleetReport::new(2),
            snap: TelemetrySnapshot::default(),
            wall_ms: 12.5,
            completed: false,
            sessions: Vec::new(),
        };
        let frame = result_frame(&outcome);
        let (parsed, _) = Frame::parse(&frame).expect("result frame parses");
        assert_eq!(parsed.kind, KIND_RESULT);
        let back = decode_result(parsed.payload).expect("result decodes");
        assert_eq!(back.index, 3);
        assert_eq!(back.report, outcome.report);
        assert!((back.wall_ms - 12.5).abs() < f64::EPSILON);
        assert!(!back.completed);
    }

    #[test]
    fn heartbeat_round_trips_and_parses_as_worker_frame() {
        let frame = heartbeat_frame(7, 2);
        match parse_worker_frame(&frame).expect("heartbeat parses") {
            WorkerFrame::Heartbeat { shard, attempt } => {
                assert_eq!(shard, 7);
                assert_eq!(attempt, 2);
            }
            WorkerFrame::Result(_) => panic!("heartbeat decoded as result"),
        }
    }

    #[test]
    fn unknown_kind_is_a_typed_refusal() {
        let mut e = Encoder::new();
        e.u64(1, 9);
        let frame = e.into_frame(999, CKPT_VERSION);
        assert!(matches!(
            parse_worker_frame(&frame),
            Err(ProtocolViolation::WrongKind(999))
        ));
    }

    #[test]
    fn wrong_version_is_a_typed_refusal() {
        let frame = heartbeat_frame(0, 0);
        // Re-seal the same payload under a future payload version.
        let (parsed, _) = Frame::parse(&frame).expect("parses");
        let future = Frame::seal(KIND_HEARTBEAT, CKPT_VERSION + 1, parsed.payload);
        assert!(matches!(
            parse_worker_frame(&future),
            Err(ProtocolViolation::WrongVersion(v)) if v == CKPT_VERSION + 1
        ));
    }

    fn sample_result_frame() -> Vec<u8> {
        result_frame(&ShardOutcome {
            index: 1,
            report: FleetReport::new(2),
            snap: TelemetrySnapshot::default(),
            wall_ms: 3.5,
            completed: true,
            sessions: Vec::new(),
        })
    }

    proptest::proptest! {
        /// Satellite contract: every truncation of a sealed result
        /// frame is a typed refusal — never a panic, never silently
        /// accepted data.
        #[test]
        fn any_truncation_is_refused(cut in 0usize..10_000) {
            let frame = sample_result_frame();
            let cut = cut % frame.len(); // strictly shorter than whole
            proptest::prop_assert!(parse_worker_frame(&frame[..cut]).is_err());
        }

        /// Every single-bit flip anywhere in the frame is refused: the
        /// integrity hash covers header and payload, and flipping the
        /// hash trailer itself breaks the match from the other side.
        #[test]
        fn any_bitflip_is_refused(pos in 0usize..10_000, bit in 0u8..8) {
            let mut frame = sample_result_frame();
            let pos = pos % frame.len();
            frame[pos] ^= 1 << bit;
            proptest::prop_assert!(parse_worker_frame(&frame).is_err());
        }

        /// Frames of a kind outside the worker protocol are refused
        /// even when perfectly sealed. (Kinds 0–6 are the checkpoint
        /// registry; the worker protocol speaks only RESULT and
        /// HEARTBEAT, so everything above the registry must bounce.)
        #[test]
        fn any_unknown_kind_is_refused(kind in 7u16..u16::MAX) {
            let mut e = Encoder::new();
            e.u64(1, 1);
            let frame = e.into_frame(kind, CKPT_VERSION);
            proptest::prop_assert!(matches!(
                parse_worker_frame(&frame),
                Err(ProtocolViolation::WrongKind(k)) if k == kind
            ));
        }

        /// The intact frame always parses — the refusals above are
        /// about corruption, not about an over-strict decoder.
        #[test]
        fn intact_frames_always_parse(index in 0usize..64, wall in 0.0f64..1e6) {
            let frame = result_frame(&ShardOutcome {
                index,
                report: FleetReport::new(2),
                snap: TelemetrySnapshot::default(),
                wall_ms: wall,
                completed: true,
                sessions: Vec::new(),
            });
            proptest::prop_assert!(parse_worker_frame(&frame).is_ok());
        }
    }
}
