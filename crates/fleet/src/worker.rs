//! The multi-process shard backend: worker processes execute disjoint
//! shard ranges and stream partial state back over pipes.
//!
//! ## Protocol
//!
//! One round trip, all sealed [`roam_codec`] frames:
//!
//! 1. The parent spawns `fleet_worker` processes, writes one
//!    [`KIND_JOB`] frame to each worker's stdin, and closes it. The job
//!    carries everything the worker needs — seed, sizing, telemetry
//!    mode, the *resolved* transport/calendar/fault knobs (workers never
//!    consult the environment, so parent and workers can't diverge), its
//!    striped shard list with per-shard resume states, and the
//!    checkpoint policy.
//! 2. The worker runs its shards sequentially and writes one
//!    [`KIND_RESULT`] frame per shard to stdout, then exits 0.
//! 3. The parent reads result frames to EOF, checks exit statuses, and
//!    hands the outcomes to the merger — the same merger the in-process
//!    backend uses, so `FleetReport::render()` is byte-identical across
//!    backends.
//!
//! Worker stdout carries nothing but result frames; anything human-
//! readable a worker has to say goes to stderr (inherited from the
//! parent). That keeps `fleet_smoke`'s stdout-purity contract intact in
//! worker mode.

use crate::checkpoint::{
    decode_config, decode_faults, encode_config, encode_faults, telemetry_from_wire,
    telemetry_to_wire, CheckpointPolicy, ShardState, CKPT_VERSION, KIND_JOB, KIND_RESULT,
};
use crate::config::FleetConfig;
use crate::exec::{run_fleet_shard, ShardOutcome, ShardSpec};
use crate::report::FleetReport;
use roam_codec::{CodecError, Decoder, Encoder, Frame};
use roam_netsim::{CalendarKind, FaultSpec, TransportKind};
use roam_telemetry::{TelemetryMode, TelemetrySnapshot};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// Field tags for the job payload.
mod job_tag {
    pub const SEED: u32 = 1;
    pub const CONFIG: u32 = 2;
    pub const TELEMETRY: u32 = 3;
    pub const TRANSPORT: u32 = 4;
    pub const CALENDAR: u32 = 5;
    pub const FAULTS: u32 = 6;
    pub const SHARD: u32 = 7;
    pub const CKPT_DIR: u32 = 8;
    pub const CKPT_EVERY: u32 = 9;
    pub const CKPT_HALT: u32 = 10;
}

/// Field tags for a shard entry inside a job.
mod job_shard_tag {
    pub const INDEX: u32 = 1;
    pub const LO: u32 = 2;
    pub const HI: u32 = 3;
    pub const RESUME: u32 = 4;
}

/// Field tags for the result payload.
mod result_tag {
    pub const INDEX: u32 = 1;
    pub const REPORT: u32 = 2;
    pub const TELEMETRY: u32 = 3;
    pub const WALL_MS: u32 = 4;
    pub const COMPLETED: u32 = 5;
}

/// Everything one worker process needs to run its shards.
#[derive(Debug)]
pub(crate) struct WorkerJob {
    pub seed: u64,
    pub config: FleetConfig,
    pub telemetry: TelemetryMode,
    pub transport: TransportKind,
    pub calendar: CalendarKind,
    pub faults: FaultSpec,
    pub shards: Vec<ShardSpec>,
    pub checkpoint: Option<CheckpointPolicy>,
}

impl WorkerJob {
    fn to_frame(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(job_tag::SEED, self.seed);
        e.section(job_tag::CONFIG, |se| encode_config(se, &self.config));
        e.u64(job_tag::TELEMETRY, telemetry_to_wire(self.telemetry));
        e.u64(
            job_tag::TRANSPORT,
            match self.transport {
                TransportKind::ClosedForm => 0,
                TransportKind::Engine => 1,
            },
        );
        e.u64(
            job_tag::CALENDAR,
            match self.calendar {
                CalendarKind::Wheel => 0,
                CalendarKind::Heap => 1,
            },
        );
        e.section(job_tag::FAULTS, |se| encode_faults(se, &self.faults));
        for shard in &self.shards {
            e.section(job_tag::SHARD, |se| {
                se.u64(job_shard_tag::INDEX, shard.index as u64);
                se.u64(job_shard_tag::LO, shard.lo);
                se.u64(job_shard_tag::HI, shard.hi);
                if let Some(state) = &shard.resume {
                    se.section(job_shard_tag::RESUME, |re| state.encode_fields(re));
                }
            });
        }
        if let Some(policy) = &self.checkpoint {
            e.str(job_tag::CKPT_DIR, &policy.dir.to_string_lossy());
            e.u64(job_tag::CKPT_EVERY, policy.every_days);
            if let Some(halt) = policy.halt_after {
                e.u64(job_tag::CKPT_HALT, u64::from(halt));
            }
        }
        e.into_frame(KIND_JOB, CKPT_VERSION)
    }

    fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(payload);
        let mut seed = None;
        let mut config = None;
        let mut telemetry = TelemetryMode::Off;
        let mut transport = TransportKind::ClosedForm;
        let mut calendar = CalendarKind::Wheel;
        let mut faults = None;
        let mut shards = Vec::new();
        let (mut dir, mut every, mut halt) = (None, None, None);
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                job_tag::SEED => seed = Some(v.as_u64(tag)?),
                job_tag::CONFIG => config = Some(decode_config(&mut v.as_section(tag)?)?),
                job_tag::TELEMETRY => telemetry = telemetry_from_wire(v.as_u64(tag)?)?,
                job_tag::TRANSPORT => {
                    transport = match v.as_u64(tag)? {
                        0 => TransportKind::ClosedForm,
                        1 => TransportKind::Engine,
                        _ => return Err(CodecError::BadValue("transport kind")),
                    };
                }
                job_tag::CALENDAR => {
                    calendar = match v.as_u64(tag)? {
                        0 => CalendarKind::Wheel,
                        1 => CalendarKind::Heap,
                        _ => return Err(CodecError::BadValue("calendar kind")),
                    };
                }
                job_tag::FAULTS => faults = Some(decode_faults(&mut v.as_section(tag)?)?),
                job_tag::SHARD => {
                    let mut sd = v.as_section(tag)?;
                    let (mut index, mut lo, mut hi, mut resume) = (None, None, None, None);
                    while let Some((stag, sv)) = sd.next_field()? {
                        match stag {
                            job_shard_tag::INDEX => {
                                index = Some(
                                    usize::try_from(sv.as_u64(stag)?)
                                        .map_err(|_| CodecError::BadValue("shard index"))?,
                                );
                            }
                            job_shard_tag::LO => lo = Some(sv.as_u64(stag)?),
                            job_shard_tag::HI => hi = Some(sv.as_u64(stag)?),
                            job_shard_tag::RESUME => {
                                resume =
                                    Some(ShardState::decode_fields(&mut sv.as_section(stag)?)?);
                            }
                            _ => {}
                        }
                    }
                    shards.push(ShardSpec {
                        index: index.ok_or(CodecError::MissingField("shard index"))?,
                        lo: lo.ok_or(CodecError::MissingField("shard lo"))?,
                        hi: hi.ok_or(CodecError::MissingField("shard hi"))?,
                        resume,
                    });
                }
                job_tag::CKPT_DIR => dir = Some(PathBuf::from(v.as_str(tag)?)),
                job_tag::CKPT_EVERY => every = Some(v.as_u64(tag)?),
                job_tag::CKPT_HALT => {
                    halt = Some(
                        u32::try_from(v.as_u64(tag)?)
                            .map_err(|_| CodecError::BadValue("halt_after"))?,
                    );
                }
                _ => {}
            }
        }
        let checkpoint = match (dir, every) {
            (Some(dir), Some(every_days)) => Some(CheckpointPolicy {
                dir,
                every_days,
                halt_after: halt,
            }),
            (None, None) => None,
            _ => return Err(CodecError::MissingField("checkpoint policy")),
        };
        Ok(WorkerJob {
            seed: seed.ok_or(CodecError::MissingField("seed"))?,
            config: config.ok_or(CodecError::MissingField("config"))?,
            telemetry,
            transport,
            calendar,
            faults: faults.ok_or(CodecError::MissingField("faults"))?,
            shards,
            checkpoint,
        })
    }
}

fn result_frame(outcome: &ShardOutcome) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(result_tag::INDEX, outcome.index as u64);
    e.section(result_tag::REPORT, |se| outcome.report.encode_fields(se));
    e.section(result_tag::TELEMETRY, |se| outcome.snap.encode_fields(se));
    e.f64(result_tag::WALL_MS, outcome.wall_ms);
    e.u64(result_tag::COMPLETED, u64::from(outcome.completed));
    e.into_frame(KIND_RESULT, CKPT_VERSION)
}

fn decode_result(payload: &[u8]) -> Result<ShardOutcome, CodecError> {
    let mut d = Decoder::new(payload);
    let (mut index, mut report, mut snap) = (None, None, None);
    let mut wall_ms = 0.0;
    let mut completed = true;
    while let Some((tag, v)) = d.next_field()? {
        match tag {
            result_tag::INDEX => {
                index = Some(
                    usize::try_from(v.as_u64(tag)?)
                        .map_err(|_| CodecError::BadValue("shard index"))?,
                );
            }
            result_tag::REPORT => {
                report = Some(FleetReport::decode_fields(&mut v.as_section(tag)?)?)
            }
            result_tag::TELEMETRY => {
                snap = Some(TelemetrySnapshot::decode_fields(&mut v.as_section(tag)?)?);
            }
            result_tag::WALL_MS => wall_ms = v.as_f64(tag)?,
            result_tag::COMPLETED => completed = v.as_u64(tag)? != 0,
            _ => {}
        }
    }
    Ok(ShardOutcome {
        index: index.ok_or(CodecError::MissingField("result index"))?,
        report: report.ok_or(CodecError::MissingField("result report"))?,
        snap: snap.ok_or(CodecError::MissingField("result telemetry"))?,
        wall_ms,
        completed,
        // Session streaming needs the in-process backend (the runner
        // asserts it), so worker results never carry records.
        sessions: Vec::new(),
    })
}

/// Locate the worker binary: `ROAM_FLEET_WORKER_BIN`, an explicit
/// builder override, or `fleet_worker` next to the current executable
/// (where cargo places sibling bin targets).
pub(crate) fn find_worker_bin(explicit: Option<&PathBuf>) -> PathBuf {
    if let Some(path) = explicit {
        return path.clone();
    }
    if let Ok(path) = std::env::var("ROAM_FLEET_WORKER_BIN") {
        return PathBuf::from(path);
    }
    let name = format!("fleet_worker{}", std::env::consts::EXE_SUFFIX);
    if let Ok(exe) = std::env::current_exe() {
        if let Some(dir) = exe.parent() {
            let sibling = dir.join(&name);
            if sibling.exists() {
                return sibling;
            }
            // Test binaries live one level down, in target/<profile>/deps.
            if let Some(parent) = dir.parent() {
                let up = parent.join(&name);
                if up.exists() {
                    return up;
                }
            }
        }
    }
    PathBuf::from(name)
}

/// Parent side: stripe the shard plans over `workers` processes, ship a
/// job to each, and collect every shard outcome.
///
/// # Panics
/// When a worker cannot be spawned, dies, exits nonzero, or returns a
/// protocol-violating stream — a worker failure is unrecoverable for the
/// run (partial state is only on disk if checkpointing was on).
pub(crate) fn run_in_workers(
    job_proto: &WorkerJob,
    plans: Vec<ShardSpec>,
    workers: usize,
    worker_bin: Option<&PathBuf>,
) -> Vec<ShardOutcome> {
    let bin = find_worker_bin(worker_bin);
    let stripes = crate::plan::stripe(plans.len(), workers);
    let mut plans: Vec<Option<ShardSpec>> = plans.into_iter().map(Some).collect();
    let mut children: Vec<Child> = Vec::with_capacity(stripes.len());
    // Spawn all workers and ship their jobs up front; jobs are read
    // before any worker writes results, so the pipes can't interlock.
    for stripe in &stripes {
        let shards: Vec<ShardSpec> = stripe
            .iter()
            .map(|&i| plans[i].take().expect("each shard striped once"))
            .collect();
        let job = WorkerJob {
            seed: job_proto.seed,
            config: job_proto.config,
            telemetry: job_proto.telemetry,
            transport: job_proto.transport,
            calendar: job_proto.calendar,
            faults: job_proto.faults,
            shards,
            checkpoint: job_proto.checkpoint.clone(),
        };
        let mut child = Command::new(&bin)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| panic!("spawning fleet worker {}: {e}", bin.display()));
        let mut stdin = child.stdin.take().expect("piped stdin");
        stdin
            .write_all(&job.to_frame())
            .and_then(|()| stdin.flush())
            .expect("shipping worker job");
        drop(stdin); // EOF tells the worker the job is complete.
        children.push(child);
    }
    let mut outcomes = Vec::with_capacity(plans.len());
    for (child_idx, mut child) in children.into_iter().enumerate() {
        let mut stdout = child.stdout.take().expect("piped stdout");
        let expected = stripes[child_idx].len();
        let mut got = 0;
        while let Some(bytes) = Frame::read_from(&mut stdout).expect("reading worker results") {
            let (frame, _) = Frame::parse(&bytes).expect("worker result frame");
            assert_eq!(frame.kind, KIND_RESULT, "unexpected frame kind from worker");
            assert_eq!(
                frame.version, CKPT_VERSION,
                "worker speaks a different version"
            );
            outcomes.push(decode_result(frame.payload).expect("worker result payload"));
            got += 1;
        }
        let status = child.wait().expect("waiting for worker");
        assert!(
            status.success(),
            "fleet worker {child_idx} exited with {status}"
        );
        assert_eq!(
            got, expected,
            "fleet worker {child_idx} returned {got} of {expected} shard results"
        );
    }
    outcomes
}

/// Worker side: the whole child process. Reads one job frame from
/// `input`, pins the job's resolved knobs process-wide (this process
/// never reads `ROAM_*`), runs its shards sequentially, and writes one
/// result frame per shard to `output`.
///
/// # Errors
/// An error message when the job stream is malformed; the caller (the
/// `fleet_worker` binary) reports it on stderr and exits nonzero.
pub fn serve(
    input: &mut impl std::io::Read,
    output: &mut impl std::io::Write,
) -> Result<(), String> {
    let bytes = Frame::read_from(input)
        .map_err(|e| format!("reading job: {e}"))?
        .ok_or("empty input: expected one job frame")?;
    let (frame, _) = Frame::parse(&bytes).map_err(|e| format!("parsing job frame: {e}"))?;
    if frame.kind != KIND_JOB {
        return Err(format!("expected job frame, got kind {}", frame.kind));
    }
    if frame.version != CKPT_VERSION {
        return Err(format!(
            "job format v{} unsupported (worker speaks v{})",
            frame.version, CKPT_VERSION
        ));
    }
    let job = WorkerJob::decode(frame.payload).map_err(|e| format!("decoding job: {e}"))?;
    // Pin the resolved knobs for the life of the process. No restore
    // guards: the process exits when the job is done.
    TransportKind::override_transport(Some(job.transport));
    CalendarKind::override_calendar(Some(job.calendar));
    FaultSpec::override_faults(Some(job.faults));
    for spec in job.shards {
        let outcome = run_fleet_shard(
            job.seed,
            &job.config,
            spec,
            job.telemetry,
            job.checkpoint.as_ref(),
            false,
        );
        output
            .write_all(&result_frame(&outcome))
            .and_then(|()| output.flush())
            .map_err(|e| format!("writing shard result: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_round_trips_through_its_frame() {
        let job = WorkerJob {
            seed: 42,
            config: FleetConfig::default(),
            telemetry: TelemetryMode::Summary,
            transport: TransportKind::Engine,
            calendar: CalendarKind::Heap,
            faults: FaultSpec::heavy(),
            shards: vec![
                ShardSpec {
                    index: 0,
                    lo: 0,
                    hi: 50,
                    resume: None,
                },
                ShardSpec {
                    index: 2,
                    lo: 100,
                    hi: 150,
                    resume: Some(ShardState {
                        index: 2,
                        next_uid: 120,
                        report: FleetReport::new(4),
                        telemetry: TelemetrySnapshot::default(),
                    }),
                },
            ],
            checkpoint: Some(CheckpointPolicy {
                dir: PathBuf::from("/tmp/ckpt"),
                every_days: 9000,
                halt_after: Some(1),
            }),
        };
        let frame = job.to_frame();
        let (parsed, _) = Frame::parse(&frame).expect("job frame parses");
        assert_eq!(parsed.kind, KIND_JOB);
        let back = WorkerJob::decode(parsed.payload).expect("job decodes");
        assert_eq!(back.seed, 42);
        assert_eq!(back.transport, TransportKind::Engine);
        assert_eq!(back.calendar, CalendarKind::Heap);
        assert_eq!(back.shards.len(), 2);
        assert_eq!(
            back.shards[1].resume.as_ref().expect("resume").next_uid,
            120
        );
        let policy = back.checkpoint.expect("policy");
        assert_eq!(policy.every_days, 9000);
        assert_eq!(policy.halt_after, Some(1));
    }

    #[test]
    fn result_round_trips_through_its_frame() {
        let outcome = ShardOutcome {
            index: 3,
            report: FleetReport::new(2),
            snap: TelemetrySnapshot::default(),
            wall_ms: 12.5,
            completed: false,
            sessions: Vec::new(),
        };
        let frame = result_frame(&outcome);
        let (parsed, _) = Frame::parse(&frame).expect("result frame parses");
        assert_eq!(parsed.kind, KIND_RESULT);
        let back = decode_result(parsed.payload).expect("result decodes");
        assert_eq!(back.index, 3);
        assert_eq!(back.report, outcome.report);
        assert!((back.wall_ms - 12.5).abs() < f64::EPSILON);
        assert!(!back.completed);
    }
}
