//! The worker-fleet supervision plane: crash recovery, deterministic
//! retry, and the worker-fault chaos harness.
//!
//! The paper's campaigns run on flaky vantage points — resident probes
//! and mobile clients that die, stall and reconnect constantly. The
//! worker backend inherits that failure surface: a `fleet_worker` child
//! can crash mid-shard, wedge, exit nonzero, or hand back a torn stdout
//! stream. This module makes every one of those a *recovery event*
//! instead of a run-aborting panic.
//!
//! ## Why recovery cannot change the bytes
//!
//! A shard is a pure function of `(seed, config, ShardSpec)` — see
//! [`run_fleet_shard`]. Re-executing a shard on a fresh child (or on the
//! parent itself) therefore produces a byte-identical
//! [`ShardOutcome`], and the merge fold orders by shard index, not by
//! arrival. The supervisor exploits exactly this: it never tries to
//! salvage a dying child's partial work, it re-dispatches the shard and
//! lets determinism do the rest. Heavy chaos runs end byte-identical to
//! clean runs by construction.
//!
//! ## The state machine
//!
//! Each child slot cycles through `spawned → streaming → (done | dead)`:
//!
//! * **Liveness** is tracked by exit status plus a sim-progress
//!   heartbeat frame ([`KIND_HEARTBEAT`]) the worker emits before each
//!   shard. The heartbeat names the shard, so an in-flight death is
//!   charged to the right retry budget.
//! * **Detection** covers four failure classes: *crash* (killed by a
//!   signal), *nonzero exit*, *stall* (no frame within
//!   `ROAM_WORKER_DEADLINE_MS` of the last one), and *protocol
//!   violation* (truncated stream, integrity-hash failure, wrong frame
//!   kind/version, result for an unassigned shard).
//! * **Recovery** respawns the slot's child with its unfinished shards
//!   (capped exponential backoff between respawns) and charges one
//!   retry to the shard that was in flight.
//! * **Escalation**: a shard that exhausts `ROAM_WORKER_RETRIES`
//!   attempts — or a child that dies repeatedly before announcing any
//!   shard — is *quarantined*: its range runs in-process on the parent,
//!   which cannot crash-loop. Supervised runs therefore always
//!   complete.
//!
//! ## The chaos plane
//!
//! [`WorkerFaultSpec`] (`ROAM_WORKER_FAULTS=off|light|heavy|key=value`)
//! mirrors [`FaultSpec`](roam_netsim::FaultSpec): presets or a custom
//! `crash=…,stall=…,torn=…,exit=…` spec. Injection decisions are keyed
//! draws over `(seed, shard index, attempt)` — never wall clock — so a
//! chaos run is exactly reproducible and a retried attempt re-rolls its
//! fate. The faults execute *inside the worker* (abort mid-shard, sleep
//! past the deadline, truncate or bit-flip a result frame, exit
//! nonzero); the parent supervises them like any real-world failure.

use crate::exec::{run_fleet_shard, ShardOutcome, ShardSpec};
use crate::worker::{self, WorkerEvent, WorkerJob};
use roam_codec::CodecError;
use roam_netsim::engine::flow_seed;
use roam_netsim::{CalendarKind, FaultSpec, TransportKind};
use roam_telemetry::{Counter, Recorder, Sink as _, TelemetrySnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Default per-shard retry budget (`ROAM_WORKER_RETRIES`): attempts
/// beyond the first before the shard is quarantined to the parent.
pub const DEFAULT_WORKER_RETRIES: u32 = 3;

/// Default stall deadline (`ROAM_WORKER_DEADLINE_MS`): a worker that
/// produces no frame for this long is declared stalled and killed.
pub const DEFAULT_WORKER_DEADLINE_MS: u64 = 30_000;

/// Consecutive child deaths *before any heartbeat* that quarantine the
/// slot's whole remaining stripe — the guard against a child that
/// cannot even start (missing binary, immediate abort), where no
/// per-shard budget would ever be charged.
const CHILD_STRIKES: u32 = 3;

/// First respawn backoff; doubles per consecutive failure of a slot.
const BACKOFF_BASE_MS: u64 = 25;

/// Respawn backoff cap.
const BACKOFF_CAP_MS: u64 = 400;

// ---------------------------------------------------------------------
// The deterministic worker-fault injection spec.
// ---------------------------------------------------------------------

/// What fraction of shard attempts a worker sabotages, per failure
/// class. Mirrors [`FaultSpec`](roam_netsim::FaultSpec): presets
/// ([`WorkerFaultSpec::off`]/[`light`](WorkerFaultSpec::light)/
/// [`heavy`](WorkerFaultSpec::heavy)), a `key=value` custom parser, an
/// environment knob (`ROAM_WORKER_FAULTS`) and a process-wide override.
///
/// Each probability is evaluated per `(shard, attempt)` with one keyed
/// uniform draw, cumulatively: `crash`, then `stall`, then `torn`, then
/// `exit`. Probabilities summing past 1.0 starve the later classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerFaultSpec {
    /// P(abort mid-shard) — the worker dies by signal after announcing
    /// the shard, before producing its result.
    pub crash: f64,
    /// P(stall) — the worker sleeps past the supervisor's deadline and
    /// then aborts; the parent must detect and kill it.
    pub stall: f64,
    /// P(torn frame) — the worker computes the shard but writes a
    /// corrupted result frame (truncated, or one payload byte flipped so
    /// the integrity hash fails) and exits 0.
    pub torn: f64,
    /// P(nonzero exit) — the worker exits 1 after announcing the shard.
    pub exit: f64,
}

impl WorkerFaultSpec {
    /// The disabled plane: no draws, no sabotage.
    #[must_use]
    pub fn off() -> Self {
        WorkerFaultSpec {
            crash: 0.0,
            stall: 0.0,
            torn: 0.0,
            exit: 0.0,
        }
    }

    /// Occasional worker trouble: the level a mostly-healthy probe
    /// fleet shows.
    #[must_use]
    pub fn light() -> Self {
        WorkerFaultSpec {
            crash: 0.05,
            stall: 0.02,
            torn: 0.04,
            exit: 0.05,
        }
    }

    /// A hostile fleet: most shard attempts are sabotaged one way or
    /// another. Supervised runs must still complete byte-identically.
    #[must_use]
    pub fn heavy() -> Self {
        WorkerFaultSpec {
            crash: 0.25,
            stall: 0.10,
            torn: 0.20,
            exit: 0.15,
        }
    }

    /// Is any injection class active?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.crash > 0.0 || self.stall > 0.0 || self.torn > 0.0 || self.exit > 0.0
    }

    /// Parse a custom spec: comma-separated `key=value` pairs over a
    /// base of [`WorkerFaultSpec::off`]. Keys: `crash`, `stall`,
    /// `torn`, `exit`; each value a probability in `[0, 1]`. `None`
    /// when a key is unknown or a value is out of range.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let mut spec = WorkerFaultSpec::off();
        for pair in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=')?;
            let v: f64 = value.trim().parse().ok()?;
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return None;
            }
            match key.trim() {
                "crash" => spec.crash = v,
                "stall" => spec.stall = v,
                "torn" => spec.torn = v,
                "exit" => spec.exit = v,
                _ => return None,
            }
        }
        Some(spec)
    }

    /// Read the spec from `ROAM_WORKER_FAULTS`: `off`/unset/empty
    /// disable injection, `light` and `heavy` select the presets,
    /// anything else parses as a custom spec. Read per call (never
    /// cached) so tests can flip it mid-process.
    ///
    /// # Panics
    /// On an unparseable custom spec — a misspelt knob should fail
    /// loudly at startup, not silently run the happy path.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("ROAM_WORKER_FAULTS") {
            Err(_) => WorkerFaultSpec::off(),
            Ok(v) => match v.trim() {
                "" | "off" => WorkerFaultSpec::off(),
                "light" => WorkerFaultSpec::light(),
                "heavy" => WorkerFaultSpec::heavy(),
                other => WorkerFaultSpec::parse(other)
                    .unwrap_or_else(|| panic!("ROAM_WORKER_FAULTS: unparseable spec {other:?}")),
            },
        }
    }

    /// Install (or clear, with `None`) a process-wide override that
    /// takes precedence over `ROAM_WORKER_FAULTS`. Returns the previous
    /// override so callers can restore it.
    pub fn override_worker_faults(spec: Option<WorkerFaultSpec>) -> Option<WorkerFaultSpec> {
        let mut slot = match WORKER_FAULTS_OVERRIDE.lock() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        std::mem::replace(&mut slot, spec)
    }

    /// The effective spec for this call: the process-wide override if
    /// installed, otherwise whatever `ROAM_WORKER_FAULTS` says.
    #[must_use]
    pub fn current() -> Self {
        let slot = match WORKER_FAULTS_OVERRIDE.lock() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        slot.unwrap_or_else(WorkerFaultSpec::from_env)
    }

    /// The injected fate of one `(shard, attempt)` execution: one keyed
    /// uniform draw against the cumulative class probabilities. Pure in
    /// `(seed, shard, attempt)`, so parent and worker — and any two
    /// runs — agree on every sabotage decision.
    #[must_use]
    pub fn decide(&self, seed: u64, shard: usize, attempt: u32) -> Option<InjectedFault> {
        if !self.enabled() {
            return None;
        }
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let key = flow_seed(seed, &format!("wfault/s{shard}/a{attempt}"));
        let mut rng = SmallRng::seed_from_u64(key);
        let u: f64 = rng.gen();
        let mut edge = self.crash;
        if u < edge {
            return Some(InjectedFault::Crash);
        }
        edge += self.stall;
        if u < edge {
            return Some(InjectedFault::Stall);
        }
        edge += self.torn;
        if u < edge {
            // A second draw splits the torn class: truncate the frame
            // or flip one payload byte (integrity-hash failure).
            return Some(if rng.gen::<bool>() {
                InjectedFault::TornTruncate
            } else {
                InjectedFault::TornBitflip
            });
        }
        edge += self.exit;
        if u < edge {
            return Some(InjectedFault::ExitNonzero);
        }
        None
    }
}

/// `Some(spec)` = override installed, `None` = follow the environment.
static WORKER_FAULTS_OVERRIDE: std::sync::Mutex<Option<WorkerFaultSpec>> =
    std::sync::Mutex::new(None);

/// One injected worker sabotage, decided by [`WorkerFaultSpec::decide`]
/// and executed by the worker's serve loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Abort (die by signal) after the heartbeat, before the result.
    Crash,
    /// Sleep past the parent's deadline, then abort.
    Stall,
    /// Write only a prefix of the sealed result frame, then exit 0.
    TornTruncate,
    /// Flip one payload byte of the sealed result frame (the integrity
    /// hash catches it), then exit 0.
    TornBitflip,
    /// Exit 1 after the heartbeat, before the result.
    ExitNonzero,
}

// ---------------------------------------------------------------------
// Policy and error taxonomy.
// ---------------------------------------------------------------------

/// The supervisor's escalation policy, resolved once per run.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorPolicy {
    /// Per-shard retry budget: attempts beyond the first before the
    /// shard is quarantined (`ROAM_WORKER_RETRIES`).
    pub retries: u32,
    /// Stall deadline in wall milliseconds (`ROAM_WORKER_DEADLINE_MS`).
    pub deadline_ms: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            retries: DEFAULT_WORKER_RETRIES,
            deadline_ms: DEFAULT_WORKER_DEADLINE_MS,
        }
    }
}

impl SupervisorPolicy {
    /// Resolve the policy from `ROAM_WORKER_RETRIES` /
    /// `ROAM_WORKER_DEADLINE_MS`, with the documented defaults.
    #[must_use]
    pub fn from_env() -> Self {
        SupervisorPolicy {
            retries: crate::config::env_parse("ROAM_WORKER_RETRIES")
                .unwrap_or(DEFAULT_WORKER_RETRIES),
            deadline_ms: crate::config::env_parse("ROAM_WORKER_DEADLINE_MS")
                .unwrap_or(DEFAULT_WORKER_DEADLINE_MS)
                .max(1),
        }
    }
}

/// A protocol violation on a worker's result stream — every way the
/// bytes coming back over the pipe can be wrong, as a typed value. The
/// parent treats each as a recovery event (kill, respawn, retry), never
/// as a panic and never as silently-accepted data.
#[derive(Debug)]
pub enum ProtocolViolation {
    /// The stream ended (or errored) mid-frame.
    Truncated(String),
    /// A frame failed to unseal: bad magic, integrity-hash mismatch,
    /// short header — see [`CodecError`].
    Frame(CodecError),
    /// A sealed frame of a kind the result protocol does not speak.
    WrongKind(u16),
    /// A sealed frame from an incompatible payload-format version.
    WrongVersion(u16),
    /// A result/heartbeat payload that does not decode.
    Payload(CodecError),
    /// A result for a shard this child does not own (or already
    /// delivered).
    UnexpectedShard(usize),
    /// The child exited cleanly before delivering its whole stripe.
    MissingResults {
        /// Results delivered before the stream ended.
        got: usize,
        /// Results the stripe owed.
        expected: usize,
    },
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolViolation::Truncated(what) => write!(f, "truncated result stream: {what}"),
            ProtocolViolation::Frame(e) => write!(f, "unsealable frame: {e}"),
            ProtocolViolation::WrongKind(kind) => write!(f, "unexpected frame kind {kind}"),
            ProtocolViolation::WrongVersion(v) => write!(f, "unsupported frame version {v}"),
            ProtocolViolation::Payload(e) => write!(f, "undecodable payload: {e}"),
            ProtocolViolation::UnexpectedShard(index) => {
                write!(f, "result for unassigned shard {index}")
            }
            ProtocolViolation::MissingResults { got, expected } => {
                write!(f, "clean exit after {got} of {expected} shard results")
            }
        }
    }
}

/// One supervised worker failure: what went wrong, on which child, and
/// (when a heartbeat had announced one) which shard was in flight.
/// Every variant is a recovery event — the supervisor respawns and
/// retries; the taxonomy exists so telemetry, logs and tests can name
/// the cause precisely.
#[derive(Debug)]
pub enum WorkerError {
    /// The child process could not be spawned.
    Spawn {
        /// Child slot index.
        child: usize,
        /// The OS error.
        source: std::io::Error,
    },
    /// Writing the job frame to the child's stdin failed (typically a
    /// broken pipe from a child that died during startup).
    JobShip {
        /// Child slot index.
        child: usize,
        /// The OS error.
        source: std::io::Error,
    },
    /// The child was killed by a signal.
    Crashed {
        /// Child slot index.
        child: usize,
        /// Shard in flight when it died, if a heartbeat announced one.
        shard: Option<usize>,
        /// The exit status, rendered (`signal: 6 (SIGABRT)` etc.).
        status: String,
    },
    /// The child exited with a nonzero code.
    NonZeroExit {
        /// Child slot index.
        child: usize,
        /// Shard in flight when it exited, if announced.
        shard: Option<usize>,
        /// The exit code.
        code: i32,
    },
    /// The child produced no frame within the deadline.
    Stalled {
        /// Child slot index.
        child: usize,
        /// Shard in flight when it stalled, if announced.
        shard: Option<usize>,
        /// The deadline it blew, milliseconds.
        deadline_ms: u64,
    },
    /// The child's result stream violated the frame protocol.
    Protocol {
        /// Child slot index.
        child: usize,
        /// Shard in flight when the stream went bad, if announced.
        shard: Option<usize>,
        /// The violation.
        cause: ProtocolViolation,
    },
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shard = |s: &Option<usize>| match s {
            Some(i) => format!(" (shard {i} in flight)"),
            None => String::new(),
        };
        match self {
            WorkerError::Spawn { child, source } => {
                write!(f, "worker {child}: spawn failed: {source}")
            }
            WorkerError::JobShip { child, source } => {
                write!(f, "worker {child}: shipping job failed: {source}")
            }
            WorkerError::Crashed {
                child,
                shard: s,
                status,
            } => write!(f, "worker {child}: crashed [{status}]{}", shard(s)),
            WorkerError::NonZeroExit {
                child,
                shard: s,
                code,
            } => write!(f, "worker {child}: exited with code {code}{}", shard(s)),
            WorkerError::Stalled {
                child,
                shard: s,
                deadline_ms,
            } => write!(
                f,
                "worker {child}: no frame within {deadline_ms} ms{}",
                shard(s)
            ),
            WorkerError::Protocol {
                child,
                shard: s,
                cause,
            } => write!(f, "worker {child}: protocol violation: {cause}{}", shard(s)),
        }
    }
}

impl std::error::Error for WorkerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkerError::Spawn { source, .. } | WorkerError::JobShip { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What the supervision plane did during a run: respawns, retries,
/// quarantines, and the full failure history. Deliberately *outside*
/// the byte-stable report — recovery work never changes the bytes, so
/// it must not live in them.
#[derive(Debug, Default)]
pub struct SupervisionStats {
    /// Child processes respawned after a failure.
    pub respawns: u64,
    /// Shard attempts charged to a retry budget.
    pub retries: u64,
    /// Shards quarantined to in-process execution.
    pub quarantined: u64,
    /// Stall deadlines tripped.
    pub stalls: u64,
    /// Protocol violations on result streams.
    pub protocol_errors: u64,
    /// Heartbeat frames received.
    pub heartbeats: u64,
    /// Every supervised failure, in detection order.
    pub errors: Vec<WorkerError>,
}

impl SupervisionStats {
    /// Did the run need any recovery at all? (Heartbeats alone are
    /// normal operation.)
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.respawns > 0 || self.retries > 0 || self.quarantined > 0 || !self.errors.is_empty()
    }
}

// ---------------------------------------------------------------------
// Restore guards for the process-wide knob overrides (shared with the
// runner's in-process backend).
// ---------------------------------------------------------------------

/// Restores the previous process-wide transport override on drop (even
/// on unwind).
pub(crate) struct TransportPin(Option<Option<TransportKind>>);

impl TransportPin {
    pub(crate) fn install(kind: TransportKind) -> Self {
        TransportPin(Some(TransportKind::override_transport(Some(kind))))
    }
}

impl Drop for TransportPin {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            TransportKind::override_transport(prev);
        }
    }
}

/// Restores the previous process-wide calendar override on drop.
pub(crate) struct CalendarPin(Option<Option<CalendarKind>>);

impl CalendarPin {
    pub(crate) fn install(kind: CalendarKind) -> Self {
        CalendarPin(Some(CalendarKind::override_calendar(Some(kind))))
    }
}

impl Drop for CalendarPin {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            CalendarKind::override_calendar(prev);
        }
    }
}

/// Restores the previous process-wide fault-spec override on drop.
pub(crate) struct FaultsPin(Option<Option<FaultSpec>>);

impl FaultsPin {
    pub(crate) fn install(spec: FaultSpec) -> Self {
        FaultsPin(Some(FaultSpec::override_faults(Some(spec))))
    }
}

impl Drop for FaultsPin {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            FaultSpec::override_faults(prev);
        }
    }
}

// ---------------------------------------------------------------------
// The supervisor.
// ---------------------------------------------------------------------

/// An event from one child's reader thread, tagged with the slot and
/// its spawn generation so frames from a killed child's drained pipe
/// can't be mistaken for its replacement's.
struct Tagged {
    slot: usize,
    generation: u64,
    event: WorkerEvent,
}

/// One child slot: the live process (if any), its reader generation,
/// and its remaining work.
struct Slot {
    child: Option<Child>,
    generation: u64,
    /// Shard indices still owed by this slot, in dispatch order.
    queue: VecDeque<usize>,
    /// The shard the last heartbeat announced, until its result lands.
    announced: Option<usize>,
    /// Wall instant of the last frame (or spawn).
    last_event: Instant,
    /// Consecutive deaths with no shard in flight (startup failures,
    /// between-shard crashes) — the cannot-make-progress detector. Only
    /// a delivered result resets it; heartbeats alone prove nothing.
    strikes: u32,
    /// Consecutive failures of any kind, for backoff scaling. Reset by
    /// a delivered result.
    failures: u32,
}

/// What `supervise` hands back to the runner.
pub(crate) struct Supervised {
    pub outcomes: Vec<ShardOutcome>,
    pub stats: SupervisionStats,
    /// The supervisor's own telemetry (restart/retry/quarantine
    /// counters), for the runner to absorb when recovery occurred.
    pub snap: TelemetrySnapshot,
}

/// Run `plans` across `workers` supervised child processes and return
/// every shard outcome. Infallible by escalation: any shard the worker
/// fleet cannot finish within its retry budget runs in-process on the
/// parent, so a supervised run always completes — and completes with
/// the same bytes, because shards are pure.
pub(crate) fn supervise(
    job_proto: &WorkerJob,
    plans: Vec<ShardSpec>,
    workers: usize,
    worker_bin: Option<&PathBuf>,
    policy: SupervisorPolicy,
) -> Supervised {
    let bin = worker::find_worker_bin(worker_bin);
    let total = plans.len();
    let stripes = crate::plan::stripe(total, workers);
    let specs: BTreeMap<usize, ShardSpec> = plans.into_iter().map(|p| (p.index, p)).collect();
    let mut attempts: BTreeMap<usize, u32> = BTreeMap::new();
    let mut outcomes: BTreeMap<usize, ShardOutcome> = BTreeMap::new();
    let mut quarantine: Vec<usize> = Vec::new();
    let mut stats = SupervisionStats::default();
    let mut tel = Recorder::new(job_proto.telemetry);

    let (tx, rx) = mpsc::channel::<Tagged>();
    let mut slots: Vec<Slot> = stripes
        .iter()
        .map(|stripe| Slot {
            child: None,
            generation: 0,
            queue: stripe.iter().copied().collect(),
            announced: None,
            last_event: Instant::now(),
            strikes: 0,
            failures: 0,
        })
        .collect();

    // First wave of spawns.
    for (slot_idx, slot) in slots.iter_mut().enumerate() {
        spawn_slot(
            slot_idx,
            slot,
            job_proto,
            &specs,
            &attempts,
            &bin,
            &tx,
            &mut stats,
            &mut quarantine,
        );
    }

    let deadline = Duration::from_millis(policy.deadline_ms);
    let tick = Duration::from_millis(policy.deadline_ms.clamp(4, 800) / 4);
    while slots.iter().any(|s| s.child.is_some()) {
        match rx.recv_timeout(tick) {
            Ok(tagged) => {
                let slot_idx = tagged.slot;
                if tagged.generation != slots[slot_idx].generation
                    || slots[slot_idx].child.is_none()
                {
                    continue; // stale frame from a replaced child
                }
                slots[slot_idx].last_event = Instant::now();
                match tagged.event {
                    WorkerEvent::Heartbeat { shard, attempt } => {
                        // A heartbeat must announce a shard this child
                        // owns, at exactly the attempt number we
                        // dispatched — anything else is a confused or
                        // stale child talking on a fresh pipe.
                        let expected = attempts.get(&shard).copied().unwrap_or(0);
                        if slots[slot_idx].queue.contains(&shard) && attempt == expected {
                            stats.heartbeats += 1;
                            slots[slot_idx].announced = Some(shard);
                        } else {
                            fail_slot(
                                slot_idx,
                                &mut slots[slot_idx],
                                FailureKind::Protocol(ProtocolViolation::UnexpectedShard(shard)),
                                job_proto,
                                &specs,
                                &mut attempts,
                                &bin,
                                &tx,
                                &mut stats,
                                &mut quarantine,
                                policy,
                            );
                        }
                    }
                    WorkerEvent::Result(outcome) => {
                        let index = outcome.index;
                        let owned = slots[slot_idx].queue.contains(&index);
                        if owned && !outcomes.contains_key(&index) {
                            outcomes.insert(index, *outcome);
                            slots[slot_idx].queue.retain(|&i| i != index);
                            if slots[slot_idx].announced == Some(index) {
                                slots[slot_idx].announced = None;
                            }
                            slots[slot_idx].failures = 0;
                            slots[slot_idx].strikes = 0;
                        } else {
                            fail_slot(
                                slot_idx,
                                &mut slots[slot_idx],
                                FailureKind::Protocol(ProtocolViolation::UnexpectedShard(index)),
                                job_proto,
                                &specs,
                                &mut attempts,
                                &bin,
                                &tx,
                                &mut stats,
                                &mut quarantine,
                                policy,
                            );
                        }
                    }
                    WorkerEvent::Violation(cause) => {
                        fail_slot(
                            slot_idx,
                            &mut slots[slot_idx],
                            FailureKind::Protocol(cause),
                            job_proto,
                            &specs,
                            &mut attempts,
                            &bin,
                            &tx,
                            &mut stats,
                            &mut quarantine,
                            policy,
                        );
                    }
                    WorkerEvent::Eof => {
                        handle_eof(
                            slot_idx,
                            &mut slots[slot_idx],
                            job_proto,
                            &specs,
                            &mut attempts,
                            &bin,
                            &tx,
                            &mut stats,
                            &mut quarantine,
                            policy,
                        );
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            // We hold `tx`, so the channel can't disconnect; treat it
            // as a spurious wakeup if it somehow does.
            Err(mpsc::RecvTimeoutError::Disconnected) => {}
        }
        // Stall sweep: any live child silent past the deadline is dead
        // to us.
        for (slot_idx, slot) in slots.iter_mut().enumerate() {
            if slot.child.is_some() && slot.last_event.elapsed() > deadline {
                stats.stalls += 1;
                fail_slot(
                    slot_idx,
                    slot,
                    FailureKind::Stalled,
                    job_proto,
                    &specs,
                    &mut attempts,
                    &bin,
                    &tx,
                    &mut stats,
                    &mut quarantine,
                    policy,
                );
            }
        }
    }

    // Escalation floor: quarantined shards run in-process under the
    // job's resolved knobs — the parent cannot crash-loop, and the
    // shard function is the exact one the workers run, so the bytes
    // cannot differ.
    if !quarantine.is_empty() {
        let _transport = TransportPin::install(job_proto.transport);
        let _calendar = CalendarPin::install(job_proto.calendar);
        let _faults = FaultsPin::install(job_proto.faults);
        quarantine.sort_unstable();
        quarantine.dedup();
        for index in quarantine {
            let Some(spec) = specs.get(&index) else {
                continue;
            };
            if outcomes.contains_key(&index) {
                continue;
            }
            stats.quarantined += 1;
            let outcome = run_fleet_shard(
                job_proto.seed,
                &job_proto.config,
                spec.clone(),
                job_proto.telemetry,
                job_proto.checkpoint.as_ref(),
                false,
            );
            outcomes.insert(index, outcome);
        }
    }

    tel.add(Counter::WorkerRestarts, stats.respawns);
    tel.add(Counter::WorkerRetries, stats.retries);
    tel.add(Counter::WorkerQuarantines, stats.quarantined);
    Supervised {
        outcomes: outcomes.into_values().collect(),
        stats,
        snap: tel.take(),
    }
}

/// Which failure class a slot death belongs to (startup failures never
/// reach `fail_slot` — `spawn_slot` strikes and retries them in place).
enum FailureKind {
    /// Child still running but condemned: stall deadline blown.
    Stalled,
    /// Result stream violated the protocol.
    Protocol(ProtocolViolation),
    /// Child is gone; classify from its exit status.
    Exited(Option<i32>, String),
}

/// Spawn (or respawn) `slot`'s child with its remaining shards. On
/// startup failure the slot takes a strike and retries after backoff in
/// place; past the strike budget its whole stripe is quarantined.
#[allow(clippy::too_many_arguments)]
fn spawn_slot(
    slot_idx: usize,
    slot: &mut Slot,
    job_proto: &WorkerJob,
    specs: &BTreeMap<usize, ShardSpec>,
    attempts: &BTreeMap<usize, u32>,
    bin: &Path,
    tx: &mpsc::Sender<Tagged>,
    stats: &mut SupervisionStats,
    quarantine: &mut Vec<usize>,
) {
    loop {
        if slot.queue.is_empty() {
            slot.child = None;
            return;
        }
        let shards: Vec<ShardSpec> = slot
            .queue
            .iter()
            .filter_map(|i| specs.get(i))
            .map(|spec| ShardSpec {
                attempt: attempts.get(&spec.index).copied().unwrap_or(0),
                ..spec.clone()
            })
            .collect();
        let job = WorkerJob {
            seed: job_proto.seed,
            config: job_proto.config,
            telemetry: job_proto.telemetry,
            transport: job_proto.transport,
            calendar: job_proto.calendar,
            faults: job_proto.faults,
            worker_faults: job_proto.worker_faults,
            deadline_ms: job_proto.deadline_ms,
            shards,
            checkpoint: job_proto.checkpoint.clone(),
        };
        slot.generation += 1;
        slot.announced = None;
        slot.last_event = Instant::now();
        let startup = (|| -> Result<Child, WorkerError> {
            let mut child = Command::new(bin)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|source| WorkerError::Spawn {
                    child: slot_idx,
                    source,
                })?;
            let ship = child.stdin.take().map_or(
                Err(std::io::Error::other("no piped stdin")),
                |mut stdin| {
                    stdin
                        .write_all(&job.to_frame())
                        .and_then(|()| stdin.flush())
                },
            );
            if let Err(source) = ship {
                let _ = child.kill();
                let _ = child.wait();
                return Err(WorkerError::JobShip {
                    child: slot_idx,
                    source,
                });
            }
            Ok(child)
        })();
        match startup {
            Ok(mut child) => {
                if let Some(stdout) = child.stdout.take() {
                    let tx = tx.clone();
                    let generation = slot.generation;
                    std::thread::spawn(move || {
                        worker::read_worker_stream(stdout, |event| {
                            let _ = tx.send(Tagged {
                                slot: slot_idx,
                                generation,
                                event,
                            });
                        });
                    });
                    slot.child = Some(child);
                    return;
                }
                // No pipe to read: unusable child.
                let _ = child.kill();
                let _ = child.wait();
                record_failure(
                    WorkerError::Spawn {
                        child: slot_idx,
                        source: std::io::Error::other("no piped stdout"),
                    },
                    stats,
                );
            }
            Err(err) => record_failure(err, stats),
        }
        // Startup failed: strike, maybe quarantine, maybe retry after
        // backoff.
        slot.strikes += 1;
        slot.failures += 1;
        if slot.strikes >= CHILD_STRIKES {
            quarantine.extend(slot.queue.drain(..));
            slot.child = None;
            return;
        }
        backoff(slot.failures);
        stats.respawns += 1;
    }
}

/// Record one supervised failure (stderr note + history). The stderr
/// line keeps worker-mode diagnostics observable in harness runs
/// without touching stdout's protocol/report purity.
fn record_failure(err: WorkerError, stats: &mut SupervisionStats) {
    eprintln!("fleet supervisor: {err}; recovering");
    if matches!(err, WorkerError::Protocol { .. }) {
        stats.protocol_errors += 1;
    }
    stats.errors.push(err);
}

/// Capped exponential backoff before a respawn.
fn backoff(consecutive_failures: u32) {
    let exp = consecutive_failures.saturating_sub(1).min(8);
    let ms = (BACKOFF_BASE_MS << exp).min(BACKOFF_CAP_MS);
    std::thread::sleep(Duration::from_millis(ms));
}

/// A child's stdout reached EOF: a clean finish if its queue is empty
/// and it exited 0, a failure otherwise.
#[allow(clippy::too_many_arguments)]
fn handle_eof(
    slot_idx: usize,
    slot: &mut Slot,
    job_proto: &WorkerJob,
    specs: &BTreeMap<usize, ShardSpec>,
    attempts: &mut BTreeMap<usize, u32>,
    bin: &Path,
    tx: &mpsc::Sender<Tagged>,
    stats: &mut SupervisionStats,
    quarantine: &mut Vec<usize>,
    policy: SupervisorPolicy,
) {
    let status = match slot.child.take() {
        Some(mut child) => child.wait(),
        None => return,
    };
    let (code, rendered) = match status {
        Ok(s) => (s.code(), s.to_string()),
        Err(e) => (None, format!("wait failed: {e}")),
    };
    if code == Some(0) && slot.queue.is_empty() {
        return; // clean finish
    }
    let kind = if code == Some(0) {
        FailureKind::Protocol(ProtocolViolation::MissingResults {
            got: 0, // the remaining queue length tells the real story
            expected: slot.queue.len(),
        })
    } else {
        FailureKind::Exited(code, rendered)
    };
    fail_slot(
        slot_idx, slot, kind, job_proto, specs, attempts, bin, tx, stats, quarantine, policy,
    );
}

/// Condemn a slot's child: kill it, charge the in-flight shard's retry
/// budget (or strike a child that never got going), quarantine anything
/// over budget, and respawn the remainder after a capped backoff.
#[allow(clippy::too_many_arguments)]
fn fail_slot(
    slot_idx: usize,
    slot: &mut Slot,
    kind: FailureKind,
    job_proto: &WorkerJob,
    specs: &BTreeMap<usize, ShardSpec>,
    attempts: &mut BTreeMap<usize, u32>,
    bin: &Path,
    tx: &mpsc::Sender<Tagged>,
    stats: &mut SupervisionStats,
    quarantine: &mut Vec<usize>,
    policy: SupervisorPolicy,
) {
    // Make sure the child is gone and reaped; the respawn (if any)
    // bumps the generation so frames still draining from the dead
    // child's pipe are ignored.
    if let Some(mut child) = slot.child.take() {
        let _ = child.kill();
        let _ = child.wait();
    }
    let in_flight = slot.announced.take();
    let err = match kind {
        FailureKind::Stalled => WorkerError::Stalled {
            child: slot_idx,
            shard: in_flight,
            deadline_ms: policy.deadline_ms,
        },
        FailureKind::Protocol(cause) => WorkerError::Protocol {
            child: slot_idx,
            shard: in_flight,
            cause,
        },
        FailureKind::Exited(Some(code), _) => WorkerError::NonZeroExit {
            child: slot_idx,
            shard: in_flight,
            code,
        },
        FailureKind::Exited(None, status) => WorkerError::Crashed {
            child: slot_idx,
            shard: in_flight,
            status,
        },
    };
    record_failure(err, stats);
    slot.failures += 1;

    if let Some(shard) = in_flight {
        // The heartbeat told us exactly which shard the failure should
        // be charged to.
        let count = attempts.entry(shard).or_insert(0);
        *count += 1;
        stats.retries += 1;
        if *count > policy.retries {
            slot.queue.retain(|&i| i != shard);
            quarantine.push(shard);
        }
    } else {
        // Died before announcing anything: strike the child. Past the
        // budget, nothing about this stripe is salvageable by respawn.
        slot.strikes += 1;
        if slot.strikes >= CHILD_STRIKES {
            quarantine.extend(slot.queue.drain(..));
        }
    }

    if slot.queue.is_empty() {
        slot.child = None;
        return;
    }
    backoff(slot.failures);
    stats.respawns += 1;
    spawn_slot(
        slot_idx, slot, job_proto, specs, attempts, bin, tx, stats, quarantine,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_mirrors_the_fault_plane_knob() {
        assert_eq!(WorkerFaultSpec::parse(""), Some(WorkerFaultSpec::off()));
        let spec = WorkerFaultSpec::parse("crash=0.5, torn=0.25").expect("valid spec");
        assert!((spec.crash - 0.5).abs() < f64::EPSILON);
        assert!((spec.torn - 0.25).abs() < f64::EPSILON);
        assert!(spec.stall.abs() < f64::EPSILON);
        assert!(WorkerFaultSpec::parse("crash=1.5").is_none(), "rate > 1");
        assert!(WorkerFaultSpec::parse("flap=0.1").is_none(), "unknown key");
        assert!(WorkerFaultSpec::parse("crash").is_none(), "missing value");
    }

    #[test]
    fn decisions_are_keyed_and_attempt_sensitive() {
        let spec = WorkerFaultSpec {
            crash: 0.5,
            stall: 0.0,
            torn: 0.3,
            exit: 0.1,
        };
        for shard in 0..16usize {
            for attempt in 0..4u32 {
                let a = spec.decide(42, shard, attempt);
                let b = spec.decide(42, shard, attempt);
                assert_eq!(a, b, "same key, same fate");
            }
        }
        // Across shards and attempts the fates must actually vary —
        // otherwise a retry could never escape its sabotage.
        let fates: Vec<Option<InjectedFault>> =
            (0..64).map(|shard| spec.decide(7, shard, 0)).collect();
        assert!(fates.iter().any(Option::is_some), "some sabotage at 90%");
        assert!(fates.iter().any(Option::is_none), "some clean runs too");
        assert!(
            (0..8).any(|s| spec.decide(7, s, 0) != spec.decide(7, s, 1)),
            "attempts re-roll"
        );
    }

    #[test]
    fn off_spec_never_injects() {
        let spec = WorkerFaultSpec::off();
        assert!(!spec.enabled());
        for shard in 0..32 {
            assert_eq!(spec.decide(1, shard, 0), None);
        }
    }

    #[test]
    fn worker_errors_name_child_shard_and_cause() {
        let err = WorkerError::Protocol {
            child: 2,
            shard: Some(5),
            cause: ProtocolViolation::WrongKind(99),
        };
        let text = err.to_string();
        assert!(text.contains("worker 2"), "{text}");
        assert!(text.contains("shard 5"), "{text}");
        assert!(text.contains("kind 99"), "{text}");
        let stall = WorkerError::Stalled {
            child: 0,
            shard: None,
            deadline_ms: 1500,
        };
        assert!(stall.to_string().contains("1500 ms"));
    }
}
