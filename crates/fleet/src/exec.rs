//! Shard execution: drive one contiguous user range through the full
//! stack, optionally starting from a checkpoint and writing new ones.
//!
//! This is the hot half of the fleet plane (the planner/merger halves
//! live in [`crate::plan`] and [`crate::merge`]). One call to
//! [`run_fleet_shard`] owns one shard: it builds the seeded world and
//! the fixed endpoint pool exactly like every other shard, then streams
//! its user range into the report. With a [`CheckpointPolicy`] it also
//! serializes its partial state every `every_days` accumulated sim-days,
//! at a user boundary (the only point where no batched work is in
//! flight), so a killed process can resume mid-shard without replaying.

use crate::checkpoint::{self, CheckpointPolicy, ShardState};
use crate::config::{FleetConfig, SessionMix};
use crate::population::{synthesize, TravelerClass, UserId};
use crate::report::{FleetReport, JourneySample};
use crate::sink::{SessionKind, SessionRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roam_econ::{EsimOffer, Market};
use roam_measure::campaign::RecordTag;
use roam_measure::{resolve_timing, Endpoint, MeasureError, MeasureStatus, ResolverPlan, Service};
use roam_netsim::engine::flow_seed;
use roam_netsim::{Network, NodeId, TransferSpec, TransportKind};
use roam_telemetry::{Counter, Sink, TelemetryMode, TelemetrySnapshot};
use roam_world::World;
use std::time::Instant;

/// One shard's work order: its index, its user range, and (when
/// resuming) the partial state to continue from.
#[derive(Debug, Clone)]
pub(crate) struct ShardSpec {
    /// Shard index (stable across runs; names the checkpoint file).
    pub index: usize,
    /// First user id (inclusive).
    pub lo: u64,
    /// One past the last user id.
    pub hi: u64,
    /// Partial state to resume from, if a checkpoint exists.
    pub resume: Option<ShardState>,
    /// Execution attempt, counted from 0. Supervision metadata only: it
    /// keys the worker-fault injection draws (`ROAM_WORKER_FAULTS`) so a
    /// retried shard re-rolls its chaos, and it never reaches
    /// [`run_fleet_shard`]'s outputs — a shard's outcome is a pure
    /// function of `(seed, config, index, lo, hi, resume)`.
    pub attempt: u32,
}

/// What one shard hands back to the merger.
#[derive(Debug)]
pub(crate) struct ShardOutcome {
    /// Shard index, for merge ordering.
    pub index: usize,
    /// The shard's aggregates.
    pub report: FleetReport,
    /// The shard's telemetry.
    pub snap: TelemetrySnapshot,
    /// Wall-clock milliseconds this shard took.
    pub wall_ms: f64,
    /// `false` when the shard stopped early because the checkpoint
    /// policy's `halt_after` tripped (harness use only).
    pub completed: bool,
    /// Per-session export records, in session order (empty unless the
    /// run carries a sink — see [`crate::FleetRunner::sink`]).
    pub sessions: Vec<SessionRecord>,
}

/// Tally a successful probe's fault-plane outcome. Gated on the fault
/// plane being active so undisturbed runs keep an all-zero summary (and
/// therefore unchanged report bytes).
fn count_delivered(report: &mut FleetReport, net: &Network, status: MeasureStatus) {
    if !net.faults_enabled() {
        return;
    }
    if status == MeasureStatus::Failover {
        report.degraded.failover += 1;
    } else {
        report.degraded.ok += 1;
    }
}

/// Tally a failed probe. `NoTarget` is a scenario gap, not a fault, and
/// stays out of the summary just like in campaign records.
fn count_failed(report: &mut FleetReport, net: &Network, e: &MeasureError) {
    if matches!(e, MeasureError::NoTarget) || !net.faults_enabled() {
        return;
    }
    match e.status() {
        MeasureStatus::Timeout => report.degraded.timeout += 1,
        _ => report.degraded.unreachable += 1,
    }
}

/// The fixed per-country stage every shard builds identically: two eSIM
/// attachments (capturing the §4.1 provider alternation) plus their
/// precomputed probe targets and resolver plans — everything session-
/// invariant is resolved here once instead of once per session.
struct CountrySlot {
    endpoints: [Endpoint; 2],
    rtt_targets: [Option<NodeId>; 2],
    dns_plans: [ResolverPlan; 2],
}

/// One seller's shelf for a destination, preprocessed for the per-leg
/// purchase decision: offers sorted by value (per-GB price, catalogue
/// order breaking ties) so "cheapest plan covering the need" is a short
/// forward scan with no per-leg divisions, plus the precomputed
/// biggest-plan fallback.
struct OfferLane {
    /// `(data_gb, offer index)` sorted ascending by `(per_gb, index)`.
    by_value: Vec<(f64, usize)>,
    /// The biggest plan on the shelf (ties break on catalogue order).
    biggest: Option<usize>,
}

impl OfferLane {
    fn build(offers: &[EsimOffer], idxs: impl Iterator<Item = usize>) -> Self {
        let mut by_value: Vec<(f64, f64, usize)> = idxs
            .map(|i| (offers[i].per_gb(), offers[i].data_gb, i))
            .collect();
        by_value.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        let biggest = by_value
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.2.cmp(&a.2)))
            .map(|&(_, _, i)| i);
        OfferLane {
            by_value: by_value.into_iter().map(|(_, gb, i)| (gb, i)).collect(),
            biggest,
        }
    }

    /// The cheapest per-GB plan covering `need_gb`, else the biggest plan.
    fn pick(&self, need_gb: f64) -> Option<usize> {
        self.by_value
            .iter()
            .find(|&&(gb, _)| gb >= need_gb)
            .map(|&(_, i)| i)
            .or(self.biggest)
    }
}

/// Offer lanes for one destination, split by seller for the purchase
/// preference draw.
struct CountryOffers {
    airalo: OfferLane,
    all: OfferLane,
}

/// Pick an offer deterministically: prefer Airalo's shelf when the user
/// does (and it can cover the need), then the cheapest per-GB plan that
/// covers the need, falling back to the biggest plan on the shelf. Ties
/// break on catalogue order.
fn choose_offer<'m>(
    offers: &'m [EsimOffer],
    shelf: &CountryOffers,
    prefer_airalo: bool,
    need_gb: f64,
) -> Option<&'m EsimOffer> {
    if prefer_airalo {
        if let Some(i) = shelf.airalo.pick(need_gb) {
            return Some(&offers[i]);
        }
    }
    shelf.all.pick(need_gb).map(|i| &offers[i])
}

/// Append `v` in decimal without going through the `fmt` machinery —
/// label derivation is hot enough at population scale that `Display`'s
/// formatter setup shows up in profiles.
fn push_dec(buf: &mut String, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.push_str(std::str::from_utf8(&tmp[i..]).expect("decimal digits are ASCII"));
}

/// The export tag of a fleet endpoint — the same four context columns
/// every campaign record carries.
fn session_tag(ep: &Endpoint) -> RecordTag {
    RecordTag {
        country: ep.country,
        sim_type: ep.sim_type,
        arch: ep.att.arch,
        rat: ep.rat(),
    }
}

/// A metric-free session record; delivered sessions fill in their one
/// metric with struct-update syntax at the push site.
fn session_record(ep: &Endpoint, kind: SessionKind, status: MeasureStatus) -> SessionRecord {
    SessionRecord {
        tag: session_tag(ep),
        kind,
        rtt_ms: None,
        lookup_ms: None,
        mb: None,
        status,
    }
}

fn draw_kind(rng: &mut SmallRng, mix: SessionMix) -> SessionKind {
    let roll = rng.gen_range(0..mix.total());
    if roll < mix.rtt {
        SessionKind::Rtt
    } else if roll < mix.rtt + mix.dns {
        SessionKind::Dns
    } else {
        SessionKind::Transfer
    }
}

/// Drive one shard through the stack.
///
/// With `spec.resume` set, the world and endpoint pool are rebuilt from
/// scratch (cheap, deterministic), the report and telemetry are restored
/// wholesale from the checkpoint, and the user loop starts at
/// `next_uid` — because every per-user observable derives from the
/// user's own keyed RNG stream, the byte stream from there on is
/// exactly what the uninterrupted run would have produced.
///
/// With `ckpt` set, the shard serializes its partial state to
/// `shard-NNN.ckpt` atomically each time `every_days` sim-days
/// accumulate, always at a user boundary so the batched-transfer queue
/// is empty and the report is a clean prefix aggregate.
///
/// With `record_sessions` set, every measurement session additionally
/// lands in the outcome's [`SessionRecord`] buffer (delivered sessions
/// with their metric, failed sessions with status only; `NoTarget` is
/// a scenario gap and stays out, matching the degradation tallies).
pub(crate) fn run_fleet_shard(
    seed: u64,
    config: &FleetConfig,
    spec: ShardSpec,
    telemetry: TelemetryMode,
    ckpt: Option<&CheckpointPolicy>,
    record_sessions: bool,
) -> ShardOutcome {
    let started = Instant::now();
    let mut world = World::build(seed);
    world.net.set_telemetry_mode(telemetry);
    let market = Market::generate(seed);
    let countries = world.measured_countries();

    // Stage 1: the fixed endpoint pool, identical in every shard. Attach
    // first (mutable world), then resolve probe targets (immutable).
    let mut pool_eps: Vec<[Endpoint; 2]> = Vec::with_capacity(countries.len());
    for &country in &countries {
        pool_eps.push([world.attach_esim(country), world.attach_esim(country)]);
    }
    let pool: Vec<CountrySlot> = pool_eps
        .into_iter()
        .map(|endpoints| {
            let rtt_targets = [0, 1].map(|i| {
                world.internet.targets.nearest(
                    &world.net,
                    Service::Google,
                    endpoints[i].att.breakout_city,
                )
            });
            let dns_plans = [0, 1]
                .map(|i| ResolverPlan::new(&world.net, &endpoints[i], &world.internet.targets));
            CountrySlot {
                endpoints,
                rtt_targets,
                dns_plans,
            }
        })
        .collect();
    let shelves: Vec<CountryOffers> = countries
        .iter()
        .map(|&c| {
            let on_shelf: Vec<usize> = market
                .offers()
                .iter()
                .enumerate()
                .filter(|(_, o)| o.country == c)
                .map(|(i, _)| i)
                .collect();
            let airalo = OfferLane::build(
                market.offers(),
                on_shelf
                    .iter()
                    .copied()
                    .filter(|&i| market.offers()[i].provider == market.airalo()),
            );
            let all = OfferLane::build(market.offers(), on_shelf.into_iter());
            CountryOffers { airalo, all }
        })
        .collect();
    let country_index = |c: roam_geo::Country| {
        countries
            .iter()
            .position(|&x| x == c)
            .expect("legs only visit measured countries")
    };

    // Resume point: restore the prefix aggregates *after* the setup above
    // so the restored telemetry (which already contains the original
    // run's setup records) replaces this rebuild's, never duplicates it.
    let (start_uid, mut report) = match spec.resume {
        Some(state) => {
            debug_assert_eq!(
                state.index, spec.index,
                "resume state routed to wrong shard"
            );
            world.net.telemetry_mut().restore(state.telemetry);
            (state.next_uid, state.report)
        }
        None => (spec.lo, FleetReport::new(config.sample)),
    };

    // Stage 2: stream the users. No per-record buffering — every
    // observation lands in a sketch, a counter or the reservoir.
    // Transfers batch per user: their durations are discarded (see the
    // comment at the push site), so the specs accumulate and run through
    // the transport in one `transfer_ms_batch` call per user.
    let transport = TransportKind::current().transport();
    let mut pending_transfers: Vec<TransferSpec> = Vec::new();
    let mut transfer_out: Vec<f64> = Vec::new();
    // Checkpoint cadence: sim-days accumulated since the last write.
    // Resets to zero at each write, so a resumed shard naturally starts
    // a fresh accumulation window.
    let mut days_acc: u64 = 0;
    let mut checkpoints_written: u32 = 0;
    let mut completed = true;
    let mut sessions: Vec<SessionRecord> = Vec::new();
    // Reusable label buffer: every per-user / per-session key is built by
    // appending into this one allocation.
    let mut label = String::with_capacity(48);
    for uid in start_uid..spec.hi {
        let profile = synthesize(seed, UserId(uid), &countries, config.days);
        label.clear();
        label.push_str("fleet/act/");
        push_dec(&mut label, uid);
        let mut act = SmallRng::seed_from_u64(flow_seed(seed, &label));
        report.count_user(profile.class);
        world.net.telemetry_mut().add(Counter::FleetUsers, 1);
        let mut spend_micro = 0u128;
        for (li, leg) in profile.legs.iter().enumerate() {
            let ci = country_index(leg.country);
            let slot = &pool[ci];
            let prefer_airalo = act.gen_bool(0.6);
            let offer = choose_offer(
                market.offers(),
                &shelves[ci],
                prefer_airalo,
                profile.need_gb,
            )
            .expect("every measured country has offers");
            let price = market.price_on_day(offer, leg.arrival_day);
            spend_micro += (price * 1e6).round() as u128;
            report.purchases += 1;
            report.price_per_gb.observe(price / offer.data_gb);
            world.net.telemetry_mut().add(Counter::FleetPurchases, 1);
            let which = (uid % 2) as usize;
            let ep = &slot.endpoints[which];
            let target = slot.rtt_targets[which];
            // The per-session label only varies in its trailing session
            // index — build the prefix once per leg.
            label.clear();
            label.push_str("fleet/u");
            push_dec(&mut label, uid);
            label.push_str("/l");
            push_dec(&mut label, li as u64);
            label.push_str("/s");
            let prefix_len = label.len();
            for s in 0..leg.sessions {
                report.sessions += 1;
                world.net.telemetry_mut().add(Counter::FleetSessions, 1);
                label.truncate(prefix_len);
                push_dec(&mut label, u64::from(s));
                match draw_kind(&mut act, config.mix) {
                    SessionKind::Rtt => {
                        let Some(t) = target else {
                            report.lost_sessions += 1;
                            continue;
                        };
                        let mut probe = ep.probe(&mut world.net, &label);
                        match probe.rtt_checked(t) {
                            Ok(sample) => {
                                report.rtt_probes += 1;
                                report.rtt_ms.observe(sample.rtt_ms);
                                count_delivered(&mut report, &world.net, sample.status());
                                if record_sessions {
                                    sessions.push(SessionRecord {
                                        rtt_ms: Some(sample.rtt_ms),
                                        ..session_record(ep, SessionKind::Rtt, sample.status())
                                    });
                                }
                            }
                            Err(e) => {
                                report.lost_sessions += 1;
                                count_failed(&mut report, &world.net, &e);
                                if record_sessions && !matches!(e, MeasureError::NoTarget) {
                                    sessions.push(session_record(ep, SessionKind::Rtt, e.status()));
                                }
                            }
                        }
                    }
                    SessionKind::Dns => {
                        match resolve_timing(&mut world.net, ep, &slot.dns_plans[which], &label) {
                            Ok(r) => {
                                report.dns_lookups += 1;
                                report.dns_ms.observe(r.lookup_ms);
                                count_delivered(&mut report, &world.net, r.status);
                                if record_sessions {
                                    sessions.push(SessionRecord {
                                        lookup_ms: Some(r.lookup_ms),
                                        ..session_record(ep, SessionKind::Dns, r.status)
                                    });
                                }
                            }
                            Err(e) => {
                                report.lost_sessions += 1;
                                count_failed(&mut report, &world.net, &e);
                                if record_sessions && !matches!(e, MeasureError::NoTarget) {
                                    sessions.push(session_record(ep, SessionKind::Dns, e.status()));
                                }
                            }
                        }
                    }
                    SessionKind::Transfer => {
                        let mb = match profile.class {
                            TravelerClass::Tourist => act.gen_range(1.0..200.0),
                            TravelerClass::Business => act.gen_range(5.0..500.0),
                            TravelerClass::IotDevice => act.gen_range(0.05..1.0),
                        };
                        let Some(t) = target else {
                            report.lost_sessions += 1;
                            continue;
                        };
                        let mut probe = ep.probe(&mut world.net, &label);
                        let sample = match probe.rtt_checked(t) {
                            Ok(s) => s,
                            Err(e) => {
                                report.lost_sessions += 1;
                                count_failed(&mut report, &world.net, &e);
                                if record_sessions && !matches!(e, MeasureError::NoTarget) {
                                    sessions.push(session_record(
                                        ep,
                                        SessionKind::Transfer,
                                        e.status(),
                                    ));
                                }
                                continue;
                            }
                        };
                        let cqi = ep.channel.sample(probe.rng());
                        // The transfer runs through the selected transport
                        // to exercise it, but its *duration* is discarded:
                        // the backends agree only to sub-microsecond
                        // rounding, and the report must not depend on
                        // `ROAM_TRANSPORT`. The drawn size is the recorded
                        // observable — so the spec only queues here and
                        // the batch runs once per user.
                        world
                            .net
                            .telemetry_mut()
                            .add(Counter::TransferBytes, (mb * 1e6) as u64);
                        pending_transfers.push(TransferSpec {
                            bytes: mb * 1e6,
                            rtt_ms: sample.rtt_ms,
                            policy_rate_mbps: ep.effective_down_mbps(cqi),
                            loss: ep.loss,
                            setup_rtts: 1.0,
                            parallel: 1,
                        });
                        report.transfers += 1;
                        report.session_mb.observe(mb);
                        count_delivered(&mut report, &world.net, sample.status());
                        if record_sessions {
                            sessions.push(SessionRecord {
                                mb: Some(mb),
                                ..session_record(ep, SessionKind::Transfer, sample.status())
                            });
                        }
                    }
                }
            }
        }
        if !pending_transfers.is_empty() {
            transport.transfer_ms_batch(&pending_transfers, &mut transfer_out);
            pending_transfers.clear();
        }
        report.spend_micro_usd += spend_micro;
        label.clear();
        label.push_str("fleet/sample/");
        push_dec(&mut label, uid);
        report.journeys.offer(
            flow_seed(seed, &label),
            uid,
            JourneySample {
                uid,
                class: profile.class.label(),
                legs: profile.legs.len() as u32,
                first: profile.legs[0].country.alpha3(),
                spend_micro_usd: spend_micro,
            },
        );
        if let Some(policy) = ckpt {
            days_acc += u64::from(config.days);
            // Write at the cadence boundary, but not after the final user:
            // the shard's own result supersedes a final checkpoint.
            if days_acc >= policy.every_days && uid + 1 < spec.hi {
                days_acc = 0;
                let state = ShardState {
                    index: spec.index,
                    next_uid: uid + 1,
                    report: report.clone(),
                    telemetry: world.net.telemetry_mut().snapshot().clone(),
                };
                checkpoint::write_shard(&policy.dir, &state).expect("checkpoint shard write");
                checkpoints_written += 1;
                if policy.halt_after.is_some_and(|n| checkpoints_written >= n) {
                    completed = false;
                    break;
                }
            }
        }
    }
    let snap = world.net.take_telemetry();
    ShardOutcome {
        index: spec.index,
        report,
        snap,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        completed,
        sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_econ::Market;

    /// The pre-lane `choose_offer`, kept as the reference model: filter /
    /// `min_by` / `max_by` straight over the index lists.
    fn reference_choose<'m>(
        offers: &'m [EsimOffer],
        airalo: &[usize],
        all: &[usize],
        prefer_airalo: bool,
        need_gb: f64,
    ) -> Option<&'m EsimOffer> {
        let pick = |idxs: &[usize]| -> Option<usize> {
            let covering = idxs
                .iter()
                .filter(|&&i| offers[i].data_gb >= need_gb)
                .min_by(|&&a, &&b| {
                    offers[a]
                        .per_gb()
                        .total_cmp(&offers[b].per_gb())
                        .then(a.cmp(&b))
                });
            covering
                .or_else(|| {
                    idxs.iter().max_by(|&&a, &&b| {
                        offers[a]
                            .data_gb
                            .total_cmp(&offers[b].data_gb)
                            .then(b.cmp(&a))
                    })
                })
                .copied()
        };
        if prefer_airalo {
            if let Some(i) = pick(airalo) {
                return Some(&offers[i]);
            }
        }
        pick(all).map(|i| &offers[i])
    }

    #[test]
    fn offer_lanes_match_the_reference_scan() {
        let market = Market::generate(42);
        let offers = market.offers();
        for country in roam_geo::Country::MEASURED {
            let all_idx: Vec<usize> = offers
                .iter()
                .enumerate()
                .filter(|(_, o)| o.country == country)
                .map(|(i, _)| i)
                .collect();
            let airalo_idx: Vec<usize> = all_idx
                .iter()
                .copied()
                .filter(|&i| offers[i].provider == market.airalo())
                .collect();
            let shelf = CountryOffers {
                airalo: OfferLane::build(offers, airalo_idx.iter().copied()),
                all: OfferLane::build(offers, all_idx.iter().copied()),
            };
            // Sweep needs across and beyond every shelf size, both
            // preference branches.
            for tenth_gb in 0..400u32 {
                let need = f64::from(tenth_gb) / 10.0;
                for prefer in [false, true] {
                    let fast = choose_offer(offers, &shelf, prefer, need);
                    let slow = reference_choose(offers, &airalo_idx, &all_idx, prefer, need);
                    assert_eq!(
                        fast.map(|o| o as *const _),
                        slow.map(|o| o as *const _),
                        "{country:?} need={need} prefer={prefer}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_lane_yields_no_offer() {
        let market = Market::generate(7);
        let offers = market.offers();
        let shelf = CountryOffers {
            airalo: OfferLane::build(offers, std::iter::empty()),
            all: OfferLane::build(offers, std::iter::empty()),
        };
        assert!(choose_offer(offers, &shelf, true, 1.0).is_none());
        assert!(choose_offer(offers, &shelf, false, 1.0).is_none());
    }
}
