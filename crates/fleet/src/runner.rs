//! The fleet runner: plan the shards, execute them on a backend, merge
//! the outcomes.
//!
//! The runner is the thin orchestration layer over the split pipeline —
//! [`crate::plan`] (work orders), [`crate::exec`] (shard execution),
//! [`crate::merge`] (the fold) — and owns backend selection:
//!
//! * **In-process** (default): shards run on threads via
//!   [`run_shards`], `ROAM_PARALLEL` controlling the thread count.
//! * **Worker processes** (`ROAM_FLEET_WORKERS=N` /
//!   [`FleetRunner::workers`]): shards stripe across `N` child
//!   processes that stream partial state back over pipes
//!   ([`crate::worker`]).
//!
//! The determinism contract has three legs:
//!
//! 1. **Identical stages.** Every shard builds the same seeded
//!    [`roam_world::World`] and attaches the same fixed endpoint pool
//!    (two eSIMs per measured country, in country order) *before*
//!    touching any user, so the world RNG and per-country provider
//!    alternation are consumed identically no matter which user range
//!    the shard owns.
//! 2. **Per-user streams.** Everything about user `u` — profile,
//!    purchases, session mix, measurement flows — derives from
//!    `flow_seed(master, "fleet/…/u")`, never from execution order.
//! 3. **Exact aggregation.** Shard reports merge through integer
//!    counters, fixed-point sums and mergeable sketches
//!    ([`FleetReport::merge`]), so the fold is associative.
//!
//! Together these make [`FleetReport::render`] byte-identical across
//! `ROAM_PARALLEL` (threads), `ROAM_FLEET_WORKERS` (processes),
//! `ROAM_FLEET_SHARDS` (partitioning), `ROAM_TRANSPORT` and
//! `ROAM_CALENDAR` — and, with checkpointing on, across a kill and
//! resume: the per-user streams mean a shard's `next_uid` cursor plus
//! its mergeable aggregates are its *complete* state.

use crate::checkpoint::{self, CheckpointPolicy, Manifest, ResumeError, ShardState};
use crate::config::{env_parse, FleetConfig, SessionMix};
use crate::exec::run_fleet_shard;
use crate::merge::merge_outcomes;
use crate::plan;
use crate::report::FleetReport;
use crate::supervisor::{
    self, CalendarPin, FaultsPin, SupervisionStats, SupervisorPolicy, TransportPin, WorkerFaultSpec,
};
use crate::worker::WorkerJob;
use roam_codec::CodecError;
use roam_measure::{run_shards, Dataset, DegradationSummary, Exporter, RunMode, SharedSink};
use roam_netsim::{CalendarKind, FaultSpec, TransportKind};
use roam_telemetry::{TelemetryMode, TelemetryReport};
use std::path::PathBuf;

/// Default checkpoint cadence, accumulated sim-days per shard between
/// writes (`ROAM_CHECKPOINT_EVERY`). At the default 60-day calendar this
/// checkpoints roughly every 4 000 users per shard.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 250_000;

/// Wall-clock cost of one fleet shard — the only non-deterministic output
/// of a run, kept outside the byte-stable report.
#[derive(Debug, Clone)]
pub struct FleetShardTiming {
    /// Stable shard key (`"fleet/000"`…).
    pub key: String,
    /// Wall-clock milliseconds on its worker.
    pub wall_ms: f64,
}

/// Everything a fleet run returns.
pub struct FleetRun {
    /// The shard-merged population report (byte-stable).
    pub report: FleetReport,
    /// Telemetry merged in shard-key order. Note: unlike the report this
    /// *does* see the shard structure (`shards_merged`, per-shard events),
    /// so it is worker- and transport-invariant but not shard-count
    /// invariant.
    pub telemetry: TelemetryReport,
    /// Per-shard wall time, in merge order (not byte-stable).
    pub timings: Vec<FleetShardTiming>,
    /// Per-shard fault-plane outcome tallies, in merge order. Deterministic
    /// for a fixed shard count; the shard-count-invariant total lives in
    /// `report.degraded`.
    pub degraded: Vec<(String, DegradationSummary)>,
    /// `true` when the run stopped early because the checkpoint policy's
    /// `halt_after` tripped (kill-and-resume harnesses only). A halted
    /// run's report is a partial aggregate — resume from the checkpoint
    /// directory to finish it.
    pub halted: bool,
    /// What the supervision plane did (worker backend only): respawns,
    /// retries, quarantines and the typed failure history. All-zero for
    /// in-process runs and for worker runs that needed no recovery —
    /// and deliberately outside the byte-stable report either way.
    pub supervision: SupervisionStats,
}

/// A contradiction between [`FleetRunner`] builder knobs, detected by
/// [`FleetRunner::try_run`] before any shard executes.
///
/// Every variant is a *configuration* refusal (the analogue of
/// [`ResumeError`] for the builder): nothing has run, nothing was
/// written, and the fix is always to drop one of the two knobs named by
/// the variant. [`FleetRunner::run`] panics with the same message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetConfigError {
    /// [`FleetRunner::sink`] combined with [`FleetRunner::workers`]:
    /// session records never cross the worker-process pipe protocol
    /// (only mergeable aggregates do), so the sink would silently
    /// observe an empty stream.
    SinkWithWorkers {
        /// The configured worker-process count (> 0).
        workers: usize,
    },
    /// [`FleetRunner::sink`] combined with
    /// [`FleetRunner::checkpoint_dir`]: streamed rows are not part of
    /// the checkpoint plane, so a kill + resume would replay aggregates
    /// exactly while the sink silently lost every pre-kill row.
    SinkWithCheckpoint,
}

impl std::fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetConfigError::SinkWithWorkers { workers } => write!(
                f,
                "session sink requires the in-process backend (workers == 0); \
                 got workers == {workers}"
            ),
            FleetConfigError::SinkWithCheckpoint => write!(
                f,
                "session sink is incompatible with checkpointing: streamed rows \
                 are not replayed on resume"
            ),
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// Everything [`FleetRunner::try_run`] can refuse with, as a typed
/// value: configuration contradictions (detected before anything runs)
/// and checkpoint-plane I/O failures (detected before any shard
/// executes — the manifest is written up front). Worker failures are
/// *not* here: the supervisor recovers them (respawn, retry,
/// quarantine-to-in-process), so a supervised run that starts always
/// completes.
#[derive(Debug)]
pub enum FleetError {
    /// The builder knobs contradict each other; see [`FleetConfigError`].
    Config(FleetConfigError),
    /// Writing the run manifest into the checkpoint directory failed —
    /// the durable plane is sick, and running anyway would produce a
    /// run that silently cannot be resumed.
    Checkpoint {
        /// The checkpoint directory that refused the write.
        dir: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Config(err) => err.fmt(f),
            FleetError::Checkpoint { dir, source } => write!(
                f,
                "checkpoint manifest write into {} failed: {source}",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Config(err) => Some(err),
            FleetError::Checkpoint { source, .. } => Some(source),
        }
    }
}

impl From<FleetConfigError> for FleetError {
    fn from(err: FleetConfigError) -> Self {
        FleetError::Config(err)
    }
}

/// Builder for fleet runs, mirroring `CampaignRunner`: seed in,
/// builder-style knobs for population, partitioning, workers, transport,
/// checkpointing and telemetry. None of the knobs except
/// `users`/`days`/`mix`/`sample` can change the report's bytes.
///
/// ```no_run
/// use roam_fleet::FleetRunner;
///
/// let run = FleetRunner::new(42).users(100_000).shards(8).parallel(4).run();
/// print!("{}", run.report.render());
/// ```
#[derive(Clone)]
pub struct FleetRunner {
    seed: u64,
    config: FleetConfig,
    mode: RunMode,
    transport: Option<TransportKind>,
    faults: Option<FaultSpec>,
    telemetry: TelemetryMode,
    /// `> 0` → shards run in this many `fleet_worker` processes.
    workers: usize,
    worker_bin: Option<PathBuf>,
    /// Worker-fault injection spec override; `None` follows
    /// `ROAM_WORKER_FAULTS`.
    worker_faults: Option<WorkerFaultSpec>,
    /// Per-shard retry budget override; `None` follows
    /// `ROAM_WORKER_RETRIES`.
    worker_retries: Option<u32>,
    /// Worker stall deadline override (ms); `None` follows
    /// `ROAM_WORKER_DEADLINE_MS`.
    worker_deadline_ms: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: u64,
    halt_after: Option<u32>,
    /// Per-shard resume states, routed by [`plan::plan_shards`]. Only
    /// set by [`FleetRunner::resume`].
    resume: Option<Vec<Option<ShardState>>>,
    /// Per-session export sink (see [`FleetRunner::sink`]).
    sink: Option<SharedSink>,
}

impl std::fmt::Debug for FleetRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRunner")
            .field("seed", &self.seed)
            .field("config", &self.config)
            .field("mode", &self.mode)
            .field("transport", &self.transport)
            .field("faults", &self.faults)
            .field("telemetry", &self.telemetry)
            .field("workers", &self.workers)
            .field("worker_bin", &self.worker_bin)
            .field("worker_faults", &self.worker_faults)
            .field("worker_retries", &self.worker_retries)
            .field("worker_deadline_ms", &self.worker_deadline_ms)
            .field("checkpoint_dir", &self.checkpoint_dir)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("halt_after", &self.halt_after)
            .field("resume", &self.resume)
            .field("sink", &self.sink.as_ref().map(|_| "…"))
            .finish()
    }
}

impl FleetRunner {
    /// A sequential, default-sized, telemetry-off runner for `seed`, with
    /// the transport left to `ROAM_TRANSPORT`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FleetRunner {
            seed,
            config: FleetConfig::default(),
            mode: RunMode::Sequential,
            transport: None,
            faults: None,
            telemetry: TelemetryMode::Off,
            workers: 0,
            worker_bin: None,
            worker_faults: None,
            worker_retries: None,
            worker_deadline_ms: None,
            checkpoint_dir: None,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            halt_after: None,
            resume: None,
            sink: None,
        }
    }

    /// A runner configured from the environment: population knobs from
    /// `ROAM_FLEET_*`, threads from `ROAM_PARALLEL`, worker processes
    /// from `ROAM_FLEET_WORKERS`, checkpointing from
    /// `ROAM_CHECKPOINT_DIR` / `ROAM_CHECKPOINT_EVERY`, telemetry from
    /// `ROAM_TELEMETRY`; the transport resolves per probe from
    /// `ROAM_TRANSPORT`.
    #[must_use]
    pub fn from_env(seed: u64) -> Self {
        FleetRunner {
            config: FleetConfig::from_env(),
            mode: RunMode::from_env(),
            telemetry: TelemetryMode::from_env(),
            workers: env_parse("ROAM_FLEET_WORKERS").unwrap_or(0),
            worker_retries: env_parse("ROAM_WORKER_RETRIES"),
            worker_deadline_ms: env_parse("ROAM_WORKER_DEADLINE_MS"),
            checkpoint_dir: std::env::var("ROAM_CHECKPOINT_DIR")
                .ok()
                .filter(|s| !s.trim().is_empty())
                .map(PathBuf::from),
            checkpoint_every: env_parse("ROAM_CHECKPOINT_EVERY")
                .unwrap_or(DEFAULT_CHECKPOINT_EVERY),
            halt_after: env_parse("ROAM_CHECKPOINT_HALT_AFTER"),
            ..FleetRunner::new(seed)
        }
    }

    /// Rebuild a runner from a checkpoint directory, validating before
    /// anything runs: the manifest must decode, speak this binary's
    /// checkpoint version, and carry a world/campaign fingerprint that
    /// this binary reproduces from the manifest's own knobs. Shard files
    /// are loaded and range-checked here too — `run()` afterwards cannot
    /// fail, it just finishes the remaining user ranges.
    ///
    /// Execution-shape knobs (threads, worker processes, transport) are
    /// re-read from the environment — they cannot change the bytes. The
    /// fault schedule is *not*: the resolved spec stored in the manifest
    /// is pinned, so the resumed half replays the original schedule even
    /// if `ROAM_FAULTS` changed in between.
    ///
    /// # Errors
    /// See [`ResumeError`] — every variant is a refusal, never a silent
    /// restart.
    pub fn resume(dir: impl Into<PathBuf>) -> Result<FleetRunner, ResumeError> {
        let dir = dir.into();
        let manifest = checkpoint::load_manifest(&dir)?;
        let computed = checkpoint::run_fingerprint(
            manifest.seed,
            &manifest.config,
            manifest.telemetry,
            &manifest.faults,
        );
        if computed != manifest.fingerprint {
            return Err(ResumeError::FingerprintMismatch {
                stored: manifest.fingerprint,
                computed,
            });
        }
        let users = manifest.config.users.max(1);
        if plan::effective_shards(users, manifest.config.shards) != manifest.shards {
            return Err(ResumeError::Corrupt(
                dir.join(checkpoint::MANIFEST_FILE),
                CodecError::BadValue("shard count"),
            ));
        }
        let mut states = Vec::with_capacity(manifest.shards);
        for i in 0..manifest.shards {
            let state = checkpoint::load_shard(&dir, i)?;
            if let Some(s) = &state {
                let (lo, hi) = plan::shard_range(users, i, manifest.shards);
                if s.next_uid < lo || s.next_uid > hi {
                    return Err(ResumeError::Corrupt(
                        dir.join(checkpoint::shard_file(i)),
                        CodecError::BadValue("next_uid out of range"),
                    ));
                }
            }
            states.push(state);
        }
        Ok(FleetRunner {
            config: manifest.config,
            mode: RunMode::from_env(),
            faults: Some(manifest.faults),
            telemetry: manifest.telemetry,
            workers: env_parse("ROAM_FLEET_WORKERS").unwrap_or(0),
            worker_retries: env_parse("ROAM_WORKER_RETRIES"),
            worker_deadline_ms: env_parse("ROAM_WORKER_DEADLINE_MS"),
            checkpoint_dir: Some(dir),
            checkpoint_every: manifest.every.max(1),
            resume: Some(states),
            ..FleetRunner::new(manifest.seed)
        })
    }

    /// Population size.
    #[must_use]
    pub fn users(mut self, users: u64) -> Self {
        self.config.users = users.max(1);
        self
    }

    /// Number of shards the population splits into.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards.max(1);
        self
    }

    /// Calendar window, days.
    #[must_use]
    pub fn days(mut self, days: u32) -> Self {
        self.config.days = days.max(1);
        self
    }

    /// Journey-sample capacity.
    #[must_use]
    pub fn sample(mut self, sample: usize) -> Self {
        self.config.sample = sample;
        self
    }

    /// Measurement mix per session.
    #[must_use]
    pub fn mix(mut self, mix: SessionMix) -> Self {
        self.config.mix = mix;
        self
    }

    /// Replace the whole config at once.
    #[must_use]
    pub fn config(mut self, config: FleetConfig) -> Self {
        self.config = config;
        self
    }

    /// Spread shards over `workers` threads (`<= 1` means sequential).
    /// Orthogonal to [`FleetRunner::workers`]; with worker processes
    /// active each process runs its stripe sequentially.
    #[must_use]
    pub fn parallel(mut self, workers: usize) -> Self {
        self.mode = if workers <= 1 {
            RunMode::Sequential
        } else {
            RunMode::Parallel(workers)
        };
        self
    }

    /// Set the shard execution mode directly.
    #[must_use]
    pub fn run_mode(mut self, mode: RunMode) -> Self {
        self.mode = mode;
        self
    }

    /// Run shards in `n` worker *processes* instead of in-process
    /// threads (`0` restores the in-process backend). The report bytes
    /// are identical either way; worker mode buys memory isolation and
    /// kill-tolerance (with checkpointing, a dead worker loses at most
    /// one cadence window).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Explicit path to the `fleet_worker` binary, for harnesses that
    /// know exactly which build to run (otherwise discovery tries
    /// `ROAM_FLEET_WORKER_BIN`, then siblings of the current
    /// executable).
    #[must_use]
    pub fn worker_bin(mut self, path: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(path.into());
        self
    }

    /// Pin the worker-fault injection spec for the run, overriding
    /// `ROAM_WORKER_FAULTS`. Injection sabotages worker *executions*
    /// (crash, stall, torn frame, nonzero exit); the supervisor
    /// recovers every one, so the report bytes cannot change — that
    /// invariant is exactly what the chaos harness exists to pin.
    #[must_use]
    pub fn worker_faults(mut self, spec: WorkerFaultSpec) -> Self {
        self.worker_faults = Some(spec);
        self
    }

    /// Per-shard retry budget before a shard is quarantined to
    /// in-process execution (`ROAM_WORKER_RETRIES`).
    #[must_use]
    pub fn worker_retries(mut self, retries: u32) -> Self {
        self.worker_retries = Some(retries);
        self
    }

    /// Worker stall deadline, wall milliseconds with no frame from the
    /// child before the supervisor declares it stalled and respawns it
    /// (`ROAM_WORKER_DEADLINE_MS`). Must exceed the longest single
    /// shard, since the worker only heartbeats *between* shards.
    #[must_use]
    pub fn worker_deadline_ms(mut self, ms: u64) -> Self {
        self.worker_deadline_ms = Some(ms.max(1));
        self
    }

    /// Write checkpoints into `dir` as the run progresses (and the run
    /// manifest up front).
    #[must_use]
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Checkpoint cadence: accumulated sim-days per shard between
    /// writes.
    #[must_use]
    pub fn checkpoint_every(mut self, sim_days: u64) -> Self {
        self.checkpoint_every = sim_days.max(1);
        self
    }

    /// Harness knob: stop each shard after `n` checkpoint writes, as a
    /// deterministic stand-in for a mid-run SIGKILL. The returned run is
    /// marked [`FleetRun::halted`].
    #[must_use]
    pub fn halt_after(mut self, n: u32) -> Self {
        self.halt_after = Some(n);
        self
    }

    /// Pin the transport backend for the run (restored afterwards).
    #[must_use]
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = Some(kind);
        self
    }

    /// Pin the fault schedule for the run, overriding `ROAM_FAULTS`
    /// (restored afterwards). Every shard's world resolves the same spec,
    /// so fault windows are identical across shard counts.
    #[must_use]
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Select what the telemetry plane records.
    #[must_use]
    pub fn telemetry(mut self, mode: TelemetryMode) -> Self {
        self.telemetry = mode;
        self
    }

    /// Stream one [`Dataset::Sessions`] row per measurement session
    /// into `sink`, in shard-index order after the shards finish (rows
    /// within a shard keep session order, so the stream is identical
    /// across thread counts). The report bytes are unaffected.
    ///
    /// In-process backend only: `run()` asserts `workers == 0` and no
    /// checkpoint directory, since records cross neither process
    /// boundaries nor checkpoint files.
    #[must_use]
    pub fn sink(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The configured population size (used by smoke tooling to report
    /// users/sec without re-reading the environment).
    #[must_use]
    pub fn population(&self) -> u64 {
        self.config.users
    }

    /// Check the builder knobs for contradictions without running
    /// anything — the validation [`FleetRunner::try_run`] performs.
    ///
    /// # Errors
    /// See [`FleetConfigError`]; every variant names the two knobs that
    /// conflict.
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.sink.is_some() {
            if self.workers > 0 {
                return Err(FleetConfigError::SinkWithWorkers {
                    workers: self.workers,
                });
            }
            if self.checkpoint_dir.is_some() {
                return Err(FleetConfigError::SinkWithCheckpoint);
            }
        }
        Ok(())
    }

    /// Run the fleet: plan the shard ranges, execute them on the selected
    /// backend, fold reports and telemetry in shard order.
    ///
    /// Panics on a contradictory configuration or a sick checkpoint
    /// directory — use [`FleetRunner::try_run`] to get the refusal as a
    /// typed [`FleetError`] instead.
    #[must_use]
    pub fn run(&self) -> FleetRun {
        match self.try_run() {
            Ok(run) => run,
            Err(err) => panic!("{err}"),
        }
    }

    /// Run the fleet, refusing contradictory configurations and
    /// checkpoint-plane I/O failures with a typed [`FleetError`] instead
    /// of a panic. Services embedding the runner (roam-service,
    /// long-running agents) use this so a bad knob combination or a sick
    /// durable sink surfaces as a recoverable error before any shard
    /// executes.
    ///
    /// Worker failures never surface here: with `workers > 0` the
    /// [`crate::supervisor`] recovers crashes, stalls, nonzero exits and
    /// protocol violations by respawn + deterministic retry, falling
    /// back to in-process execution for shards past their retry budget.
    /// What the supervisor did is reported in [`FleetRun::supervision`].
    ///
    /// # Errors
    /// See [`FleetError`].
    pub fn try_run(&self) -> Result<FleetRun, FleetError> {
        self.validate()?;
        let users = self.config.users.max(1);
        let shards = plan::effective_shards(users, self.config.shards);
        // Resolve every output-relevant knob once, up front: the resolved
        // values go into worker jobs and the checkpoint manifest, so a
        // resumed or worker-run fleet can never see different ones.
        let resolved_transport = self.transport.unwrap_or_else(TransportKind::current);
        let resolved_calendar = CalendarKind::current();
        let resolved_faults = self.faults.unwrap_or_else(FaultSpec::current);
        let policy = self.checkpoint_dir.as_ref().map(|dir| CheckpointPolicy {
            dir: dir.clone(),
            every_days: self.checkpoint_every.max(1),
            halt_after: self.halt_after,
        });
        if let Some(policy) = &policy {
            let manifest = Manifest {
                seed: self.seed,
                fingerprint: checkpoint::run_fingerprint(
                    self.seed,
                    &self.config,
                    self.telemetry,
                    &resolved_faults,
                ),
                shards,
                every: policy.every_days,
                config: self.config,
                telemetry: self.telemetry,
                faults: resolved_faults,
            };
            checkpoint::write_manifest(&policy.dir, &manifest).map_err(|source| {
                FleetError::Checkpoint {
                    dir: policy.dir.clone(),
                    source,
                }
            })?;
        }
        let plans = plan::plan_shards(users, shards, self.resume.clone());
        if self.workers > 0 {
            let job = WorkerJob {
                seed: self.seed,
                config: self.config,
                telemetry: self.telemetry,
                transport: resolved_transport,
                calendar: resolved_calendar,
                faults: resolved_faults,
                worker_faults: self.worker_faults.unwrap_or_else(WorkerFaultSpec::current),
                deadline_ms: self
                    .worker_deadline_ms
                    .unwrap_or_else(|| SupervisorPolicy::from_env().deadline_ms)
                    .max(1),
                shards: Vec::new(),
                checkpoint: policy,
            };
            let supervisor_policy = SupervisorPolicy {
                retries: self
                    .worker_retries
                    .unwrap_or_else(|| SupervisorPolicy::from_env().retries),
                deadline_ms: job.deadline_ms,
            };
            let supervised = supervisor::supervise(
                &job,
                plans,
                self.workers,
                self.worker_bin.as_ref(),
                supervisor_policy,
            );
            let mut run = merge_outcomes(self.config.sample, self.telemetry, supervised.outcomes);
            // Fold the supervisor's own counters in only when recovery
            // actually happened: a clean worker run must stay
            // telemetry-byte-identical to an in-process run (the
            // worker_mode tests pin exactly that).
            if supervised.stats.recovered() {
                run.telemetry.absorb(supervised.snap);
            }
            run.supervision = supervised.stats;
            return Ok(run);
        }
        let outcomes = {
            // Pin the transport and calendar for the whole run even when
            // they come from the environment: `TransportKind::current()`
            // runs once per probe and `CalendarKind::current()` once per
            // transfer, and with no override installed each call is an
            // `env::var` lookup — pure overhead at population scale.
            // Snapshotting the resolved kind into the override turns both
            // into one atomic load, without changing which backend runs
            // (both knobs are output-invariant).
            let _pin = TransportPin::install(resolved_transport);
            let _calendar_pin = CalendarPin::install(resolved_calendar);
            let _fault_pin = self.faults.map(FaultsPin::install);
            run_shards(self.mode, shards, |i| {
                run_fleet_shard(
                    self.seed,
                    &self.config,
                    plans[i].clone(),
                    self.telemetry,
                    policy.as_ref(),
                    self.sink.is_some(),
                )
            })
        };
        if let Some(sink) = &self.sink {
            // Stream in shard-index order (sessions within a shard are
            // already in session order), locking once for the whole walk
            // so rows never interleave with another exporter's.
            let mut outcomes = outcomes;
            outcomes.sort_by_key(|o| o.index);
            let mut sink = sink.lock().expect("fleet sink poisoned");
            for outcome in &mut outcomes {
                crate::sink::SessionRows(&outcome.sessions)
                    .export_rows(Dataset::Sessions, &mut *sink);
                outcome.sessions = Vec::new();
            }
            drop(sink);
            return Ok(merge_outcomes(self.config.sample, self.telemetry, outcomes));
        }
        Ok(merge_outcomes(self.config.sample, self.telemetry, outcomes))
    }
}
