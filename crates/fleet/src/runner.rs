//! The fleet runner: partition the population, drive every subscriber
//! through the full stack, merge the shards.
//!
//! The determinism contract has three legs:
//!
//! 1. **Identical stages.** Every shard builds the same seeded
//!    [`World`] and attaches the same fixed endpoint pool (two eSIMs per
//!    measured country, in country order) *before* touching any user, so
//!    the world RNG and per-country provider alternation are consumed
//!    identically no matter which user range the shard owns.
//! 2. **Per-user streams.** Everything about user `u` — profile,
//!    purchases, session mix, measurement flows — derives from
//!    `flow_seed(master, "fleet/…/u")`, never from execution order.
//! 3. **Exact aggregation.** Shard reports merge through integer
//!    counters, fixed-point sums and mergeable sketches
//!    ([`FleetReport::merge`]), so the fold is associative.
//!
//! Together these make [`FleetReport::render`] byte-identical across
//! `ROAM_PARALLEL` (worker count), `ROAM_FLEET_SHARDS` (partitioning)
//! and `ROAM_TRANSPORT` (only transport-independent observables are
//! recorded: packet-walk RTTs, resolver lookups, drawn workload sizes).

use crate::config::{FleetConfig, SessionMix};
use crate::population::{synthesize, TravelerClass, UserId};
use crate::report::{FleetReport, JourneySample};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roam_econ::{EsimOffer, Market};
use roam_geo::Country;
use roam_measure::{
    resolve_timing, run_shards, DegradationSummary, Endpoint, MeasureError, MeasureStatus,
    ResolverPlan, RunMode, Service,
};
use roam_netsim::engine::flow_seed;
use roam_netsim::{CalendarKind, FaultSpec, Network, NodeId, TransferSpec, TransportKind};
use roam_telemetry::{merge_shards, Counter, Sink, TelemetryMode, TelemetryReport};
use roam_world::World;
use std::time::Instant;

/// Wall-clock cost of one fleet shard — the only non-deterministic output
/// of a run, kept outside the byte-stable report.
#[derive(Debug, Clone)]
pub struct FleetShardTiming {
    /// Stable shard key (`"fleet/000"`…).
    pub key: String,
    /// Wall-clock milliseconds on its worker.
    pub wall_ms: f64,
}

/// Everything a fleet run returns.
pub struct FleetRun {
    /// The shard-merged population report (byte-stable).
    pub report: FleetReport,
    /// Telemetry merged in shard-key order. Note: unlike the report this
    /// *does* see the shard structure (`shards_merged`, per-shard events),
    /// so it is worker- and transport-invariant but not shard-count
    /// invariant.
    pub telemetry: TelemetryReport,
    /// Per-shard wall time, in merge order (not byte-stable).
    pub timings: Vec<FleetShardTiming>,
    /// Per-shard fault-plane outcome tallies, in merge order. Deterministic
    /// for a fixed shard count; the shard-count-invariant total lives in
    /// `report.degraded`.
    pub degraded: Vec<(String, DegradationSummary)>,
}

/// Builder for fleet runs, mirroring `CampaignRunner`: seed in,
/// builder-style knobs for population, partitioning, workers, transport
/// and telemetry. None of the knobs except `users`/`days`/`mix`/`sample`
/// can change the report's bytes.
///
/// ```no_run
/// use roam_fleet::FleetRunner;
///
/// let run = FleetRunner::new(42).users(100_000).shards(8).parallel(4).run();
/// print!("{}", run.report.render());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FleetRunner {
    seed: u64,
    config: FleetConfig,
    mode: RunMode,
    transport: Option<TransportKind>,
    faults: Option<FaultSpec>,
    telemetry: TelemetryMode,
}

impl FleetRunner {
    /// A sequential, default-sized, telemetry-off runner for `seed`, with
    /// the transport left to `ROAM_TRANSPORT`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FleetRunner {
            seed,
            config: FleetConfig::default(),
            mode: RunMode::Sequential,
            transport: None,
            faults: None,
            telemetry: TelemetryMode::Off,
        }
    }

    /// A runner configured from the environment: population knobs from
    /// `ROAM_FLEET_*`, workers from `ROAM_PARALLEL`, telemetry from
    /// `ROAM_TELEMETRY`; the transport resolves per probe from
    /// `ROAM_TRANSPORT`.
    #[must_use]
    pub fn from_env(seed: u64) -> Self {
        FleetRunner {
            config: FleetConfig::from_env(),
            mode: RunMode::from_env(),
            telemetry: TelemetryMode::from_env(),
            ..FleetRunner::new(seed)
        }
    }

    /// Population size.
    #[must_use]
    pub fn users(mut self, users: u64) -> Self {
        self.config.users = users.max(1);
        self
    }

    /// Number of shards the population splits into.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards.max(1);
        self
    }

    /// Calendar window, days.
    #[must_use]
    pub fn days(mut self, days: u32) -> Self {
        self.config.days = days.max(1);
        self
    }

    /// Journey-sample capacity.
    #[must_use]
    pub fn sample(mut self, sample: usize) -> Self {
        self.config.sample = sample;
        self
    }

    /// Measurement mix per session.
    #[must_use]
    pub fn mix(mut self, mix: SessionMix) -> Self {
        self.config.mix = mix;
        self
    }

    /// Replace the whole config at once.
    #[must_use]
    pub fn config(mut self, config: FleetConfig) -> Self {
        self.config = config;
        self
    }

    /// Spread shards over `workers` threads (`<= 1` means sequential).
    #[must_use]
    pub fn parallel(mut self, workers: usize) -> Self {
        self.mode = if workers <= 1 {
            RunMode::Sequential
        } else {
            RunMode::Parallel(workers)
        };
        self
    }

    /// Set the shard execution mode directly.
    #[must_use]
    pub fn run_mode(mut self, mode: RunMode) -> Self {
        self.mode = mode;
        self
    }

    /// Pin the transport backend for the run (restored afterwards).
    #[must_use]
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = Some(kind);
        self
    }

    /// Pin the fault schedule for the run, overriding `ROAM_FAULTS`
    /// (restored afterwards). Every shard's world resolves the same spec,
    /// so fault windows are identical across shard counts.
    #[must_use]
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Select what the telemetry plane records.
    #[must_use]
    pub fn telemetry(mut self, mode: TelemetryMode) -> Self {
        self.telemetry = mode;
        self
    }

    /// The configured population size (used by smoke tooling to report
    /// users/sec without re-reading the environment).
    #[must_use]
    pub fn population(&self) -> u64 {
        self.config.users
    }

    /// Run the fleet: shard the id range contiguously, drive each shard,
    /// fold reports and telemetry in shard order.
    #[must_use]
    pub fn run(&self) -> FleetRun {
        // Pin the transport and calendar for the whole run even when they
        // come from the environment: `TransportKind::current()` runs once
        // per probe and `CalendarKind::current()` once per transfer, and
        // with no override installed each call is an `env::var` lookup —
        // pure overhead at population scale. Snapshotting the resolved
        // kind into the override turns both into one atomic load, without
        // changing which backend runs (both knobs are output-invariant).
        let _pin = TransportPin(Some(TransportKind::override_transport(Some(
            self.transport.unwrap_or_else(TransportKind::current),
        ))));
        let _calendar_pin = CalendarPin(Some(CalendarKind::override_calendar(Some(
            CalendarKind::current(),
        ))));
        let _fault_pin = FaultsPin(self.faults.map(|s| FaultSpec::override_faults(Some(s))));
        let users = self.config.users.max(1);
        // Never more shards than users — empty shards would be harmless
        // but wasteful (each builds a world).
        let shards = (self.config.shards.max(1) as u64).min(users) as usize;
        let results = run_shards(self.mode, shards, |i| {
            let lo = users * i as u64 / shards as u64;
            let hi = users * (i as u64 + 1) / shards as u64;
            run_fleet_shard(self.seed, &self.config, lo..hi, self.telemetry)
        });
        let mut report = FleetReport::new(self.config.sample);
        let mut snaps = Vec::with_capacity(shards);
        let mut timings = Vec::with_capacity(shards);
        let mut degraded = Vec::with_capacity(shards);
        for (i, (shard_report, snap, wall_ms)) in results.into_iter().enumerate() {
            let key = format!("fleet/{i:03}");
            report.merge(&shard_report);
            snaps.push((key.clone(), snap));
            degraded.push((key.clone(), shard_report.degraded));
            timings.push(FleetShardTiming { key, wall_ms });
        }
        FleetRun {
            report,
            telemetry: merge_shards(self.telemetry, snaps),
            timings,
            degraded,
        }
    }
}

/// Restores the previous process-wide transport override when a pinned
/// run finishes (even on unwind).
struct TransportPin(Option<Option<TransportKind>>);

impl Drop for TransportPin {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            TransportKind::override_transport(prev);
        }
    }
}

/// Restores the previous process-wide calendar override when a pinned
/// run finishes (even on unwind).
struct CalendarPin(Option<Option<CalendarKind>>);

impl Drop for CalendarPin {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            CalendarKind::override_calendar(prev);
        }
    }
}

/// Restores the previous process-wide fault-spec override when a pinned
/// run finishes (even on unwind).
struct FaultsPin(Option<Option<FaultSpec>>);

impl Drop for FaultsPin {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            FaultSpec::override_faults(prev);
        }
    }
}

/// Tally a successful probe's fault-plane outcome. Gated on the fault
/// plane being active so undisturbed runs keep an all-zero summary (and
/// therefore unchanged report bytes).
fn count_delivered(report: &mut FleetReport, net: &Network, status: MeasureStatus) {
    if !net.faults_enabled() {
        return;
    }
    if status == MeasureStatus::Failover {
        report.degraded.failover += 1;
    } else {
        report.degraded.ok += 1;
    }
}

/// Tally a failed probe. `NoTarget` is a scenario gap, not a fault, and
/// stays out of the summary just like in campaign records.
fn count_failed(report: &mut FleetReport, net: &Network, e: &MeasureError) {
    if matches!(e, MeasureError::NoTarget) || !net.faults_enabled() {
        return;
    }
    match e.status() {
        MeasureStatus::Timeout => report.degraded.timeout += 1,
        _ => report.degraded.unreachable += 1,
    }
}

/// The fixed per-country stage every shard builds identically: two eSIM
/// attachments (capturing the §4.1 provider alternation) plus their
/// precomputed probe targets and resolver plans — everything session-
/// invariant is resolved here once instead of once per session.
struct CountrySlot {
    endpoints: [Endpoint; 2],
    rtt_targets: [Option<NodeId>; 2],
    dns_plans: [ResolverPlan; 2],
}

/// One seller's shelf for a destination, preprocessed for the per-leg
/// purchase decision: offers sorted by value (per-GB price, catalogue
/// order breaking ties) so "cheapest plan covering the need" is a short
/// forward scan with no per-leg divisions, plus the precomputed
/// biggest-plan fallback.
struct OfferLane {
    /// `(data_gb, offer index)` sorted ascending by `(per_gb, index)`.
    by_value: Vec<(f64, usize)>,
    /// The biggest plan on the shelf (ties break on catalogue order).
    biggest: Option<usize>,
}

impl OfferLane {
    fn build(offers: &[EsimOffer], idxs: impl Iterator<Item = usize>) -> Self {
        let mut by_value: Vec<(f64, f64, usize)> = idxs
            .map(|i| (offers[i].per_gb(), offers[i].data_gb, i))
            .collect();
        by_value.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        let biggest = by_value
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.2.cmp(&a.2)))
            .map(|&(_, _, i)| i);
        OfferLane {
            by_value: by_value.into_iter().map(|(_, gb, i)| (gb, i)).collect(),
            biggest,
        }
    }

    /// The cheapest per-GB plan covering `need_gb`, else the biggest plan.
    fn pick(&self, need_gb: f64) -> Option<usize> {
        self.by_value
            .iter()
            .find(|&&(gb, _)| gb >= need_gb)
            .map(|&(_, i)| i)
            .or(self.biggest)
    }
}

/// Offer lanes for one destination, split by seller for the purchase
/// preference draw.
struct CountryOffers {
    airalo: OfferLane,
    all: OfferLane,
}

/// Pick an offer deterministically: prefer Airalo's shelf when the user
/// does (and it can cover the need), then the cheapest per-GB plan that
/// covers the need, falling back to the biggest plan on the shelf. Ties
/// break on catalogue order.
fn choose_offer<'m>(
    offers: &'m [EsimOffer],
    shelf: &CountryOffers,
    prefer_airalo: bool,
    need_gb: f64,
) -> Option<&'m EsimOffer> {
    if prefer_airalo {
        if let Some(i) = shelf.airalo.pick(need_gb) {
            return Some(&offers[i]);
        }
    }
    shelf.all.pick(need_gb).map(|i| &offers[i])
}

/// Append `v` in decimal without going through the `fmt` machinery —
/// label derivation is hot enough at population scale that `Display`'s
/// formatter setup shows up in profiles.
fn push_dec(buf: &mut String, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.push_str(std::str::from_utf8(&tmp[i..]).expect("decimal digits are ASCII"));
}

/// What one session does, drawn from the user's activity stream.
enum SessionKind {
    Rtt,
    Dns,
    Transfer,
}

fn draw_kind(rng: &mut SmallRng, mix: SessionMix) -> SessionKind {
    let roll = rng.gen_range(0..mix.total());
    if roll < mix.rtt {
        SessionKind::Rtt
    } else if roll < mix.rtt + mix.dns {
        SessionKind::Dns
    } else {
        SessionKind::Transfer
    }
}

/// Drive one contiguous user range through the stack. Returns the shard's
/// report, its telemetry snapshot, and its wall-clock milliseconds.
fn run_fleet_shard(
    seed: u64,
    config: &FleetConfig,
    range: std::ops::Range<u64>,
    telemetry: TelemetryMode,
) -> (FleetReport, roam_telemetry::TelemetrySnapshot, f64) {
    let started = Instant::now();
    let mut world = World::build(seed);
    world.net.set_telemetry_mode(telemetry);
    let market = Market::generate(seed);
    let countries = world.measured_countries();

    // Stage 1: the fixed endpoint pool, identical in every shard. Attach
    // first (mutable world), then resolve probe targets (immutable).
    let mut pool_eps: Vec<[Endpoint; 2]> = Vec::with_capacity(countries.len());
    for &country in &countries {
        pool_eps.push([world.attach_esim(country), world.attach_esim(country)]);
    }
    let pool: Vec<CountrySlot> = pool_eps
        .into_iter()
        .map(|endpoints| {
            let rtt_targets = [0, 1].map(|i| {
                world.internet.targets.nearest(
                    &world.net,
                    Service::Google,
                    endpoints[i].att.breakout_city,
                )
            });
            let dns_plans = [0, 1]
                .map(|i| ResolverPlan::new(&world.net, &endpoints[i], &world.internet.targets));
            CountrySlot {
                endpoints,
                rtt_targets,
                dns_plans,
            }
        })
        .collect();
    let shelves: Vec<CountryOffers> = countries
        .iter()
        .map(|&c| {
            let on_shelf: Vec<usize> = market
                .offers()
                .iter()
                .enumerate()
                .filter(|(_, o)| o.country == c)
                .map(|(i, _)| i)
                .collect();
            let airalo = OfferLane::build(
                market.offers(),
                on_shelf
                    .iter()
                    .copied()
                    .filter(|&i| market.offers()[i].provider == market.airalo()),
            );
            let all = OfferLane::build(market.offers(), on_shelf.into_iter());
            CountryOffers { airalo, all }
        })
        .collect();
    let country_index = |c: Country| {
        countries
            .iter()
            .position(|&x| x == c)
            .expect("legs only visit measured countries")
    };

    // Stage 2: stream the users. No per-record buffering — every
    // observation lands in a sketch, a counter or the reservoir.
    // Transfers batch per user: their durations are discarded (see the
    // comment at the push site), so the specs accumulate and run through
    // the transport in one `transfer_ms_batch` call per user.
    let transport = TransportKind::current().transport();
    let mut pending_transfers: Vec<TransferSpec> = Vec::new();
    let mut transfer_out: Vec<f64> = Vec::new();
    let mut report = FleetReport::new(config.sample);
    // Reusable label buffer: every per-user / per-session key is built by
    // appending into this one allocation.
    let mut label = String::with_capacity(48);
    for uid in range {
        let profile = synthesize(seed, UserId(uid), &countries, config.days);
        label.clear();
        label.push_str("fleet/act/");
        push_dec(&mut label, uid);
        let mut act = SmallRng::seed_from_u64(flow_seed(seed, &label));
        report.count_user(profile.class);
        world.net.telemetry_mut().add(Counter::FleetUsers, 1);
        let mut spend_micro = 0u128;
        for (li, leg) in profile.legs.iter().enumerate() {
            let ci = country_index(leg.country);
            let slot = &pool[ci];
            let prefer_airalo = act.gen_bool(0.6);
            let offer = choose_offer(
                market.offers(),
                &shelves[ci],
                prefer_airalo,
                profile.need_gb,
            )
            .expect("every measured country has offers");
            let price = market.price_on_day(offer, leg.arrival_day);
            spend_micro += (price * 1e6).round() as u128;
            report.purchases += 1;
            report.price_per_gb.observe(price / offer.data_gb);
            world.net.telemetry_mut().add(Counter::FleetPurchases, 1);
            let which = (uid % 2) as usize;
            let ep = &slot.endpoints[which];
            let target = slot.rtt_targets[which];
            // The per-session label only varies in its trailing session
            // index — build the prefix once per leg.
            label.clear();
            label.push_str("fleet/u");
            push_dec(&mut label, uid);
            label.push_str("/l");
            push_dec(&mut label, li as u64);
            label.push_str("/s");
            let prefix_len = label.len();
            for s in 0..leg.sessions {
                report.sessions += 1;
                world.net.telemetry_mut().add(Counter::FleetSessions, 1);
                label.truncate(prefix_len);
                push_dec(&mut label, u64::from(s));
                match draw_kind(&mut act, config.mix) {
                    SessionKind::Rtt => {
                        let Some(t) = target else {
                            report.lost_sessions += 1;
                            continue;
                        };
                        let mut probe = ep.probe(&mut world.net, &label);
                        match probe.rtt_checked(t) {
                            Ok(sample) => {
                                report.rtt_probes += 1;
                                report.rtt_ms.observe(sample.rtt_ms);
                                count_delivered(&mut report, &world.net, sample.status());
                            }
                            Err(e) => {
                                report.lost_sessions += 1;
                                count_failed(&mut report, &world.net, &e);
                            }
                        }
                    }
                    SessionKind::Dns => {
                        match resolve_timing(&mut world.net, ep, &slot.dns_plans[which], &label) {
                            Ok(r) => {
                                report.dns_lookups += 1;
                                report.dns_ms.observe(r.lookup_ms);
                                count_delivered(&mut report, &world.net, r.status);
                            }
                            Err(e) => {
                                report.lost_sessions += 1;
                                count_failed(&mut report, &world.net, &e);
                            }
                        }
                    }
                    SessionKind::Transfer => {
                        let mb = match profile.class {
                            TravelerClass::Tourist => act.gen_range(1.0..200.0),
                            TravelerClass::Business => act.gen_range(5.0..500.0),
                            TravelerClass::IotDevice => act.gen_range(0.05..1.0),
                        };
                        let Some(t) = target else {
                            report.lost_sessions += 1;
                            continue;
                        };
                        let mut probe = ep.probe(&mut world.net, &label);
                        let sample = match probe.rtt_checked(t) {
                            Ok(s) => s,
                            Err(e) => {
                                report.lost_sessions += 1;
                                count_failed(&mut report, &world.net, &e);
                                continue;
                            }
                        };
                        let cqi = ep.channel.sample(probe.rng());
                        // The transfer runs through the selected transport
                        // to exercise it, but its *duration* is discarded:
                        // the backends agree only to sub-microsecond
                        // rounding, and the report must not depend on
                        // `ROAM_TRANSPORT`. The drawn size is the recorded
                        // observable — so the spec only queues here and
                        // the batch runs once per user.
                        world
                            .net
                            .telemetry_mut()
                            .add(Counter::TransferBytes, (mb * 1e6) as u64);
                        pending_transfers.push(TransferSpec {
                            bytes: mb * 1e6,
                            rtt_ms: sample.rtt_ms,
                            policy_rate_mbps: ep.effective_down_mbps(cqi),
                            loss: ep.loss,
                            setup_rtts: 1.0,
                            parallel: 1,
                        });
                        report.transfers += 1;
                        report.session_mb.observe(mb);
                        count_delivered(&mut report, &world.net, sample.status());
                    }
                }
            }
        }
        if !pending_transfers.is_empty() {
            transport.transfer_ms_batch(&pending_transfers, &mut transfer_out);
            pending_transfers.clear();
        }
        report.spend_micro_usd += spend_micro;
        label.clear();
        label.push_str("fleet/sample/");
        push_dec(&mut label, uid);
        report.journeys.offer(
            flow_seed(seed, &label),
            uid,
            JourneySample {
                uid,
                class: profile.class.label(),
                legs: profile.legs.len() as u32,
                first: profile.legs[0].country.alpha3(),
                spend_micro_usd: spend_micro,
            },
        );
    }
    let snap = world.net.take_telemetry();
    (report, snap, started.elapsed().as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-lane `choose_offer`, kept as the reference model: filter /
    /// `min_by` / `max_by` straight over the index lists.
    fn reference_choose<'m>(
        offers: &'m [EsimOffer],
        airalo: &[usize],
        all: &[usize],
        prefer_airalo: bool,
        need_gb: f64,
    ) -> Option<&'m EsimOffer> {
        let pick = |idxs: &[usize]| -> Option<usize> {
            let covering = idxs
                .iter()
                .filter(|&&i| offers[i].data_gb >= need_gb)
                .min_by(|&&a, &&b| {
                    offers[a]
                        .per_gb()
                        .total_cmp(&offers[b].per_gb())
                        .then(a.cmp(&b))
                });
            covering
                .or_else(|| {
                    idxs.iter().max_by(|&&a, &&b| {
                        offers[a]
                            .data_gb
                            .total_cmp(&offers[b].data_gb)
                            .then(b.cmp(&a))
                    })
                })
                .copied()
        };
        if prefer_airalo {
            if let Some(i) = pick(airalo) {
                return Some(&offers[i]);
            }
        }
        pick(all).map(|i| &offers[i])
    }

    #[test]
    fn offer_lanes_match_the_reference_scan() {
        let market = Market::generate(42);
        let offers = market.offers();
        for country in roam_geo::Country::MEASURED {
            let all_idx: Vec<usize> = offers
                .iter()
                .enumerate()
                .filter(|(_, o)| o.country == country)
                .map(|(i, _)| i)
                .collect();
            let airalo_idx: Vec<usize> = all_idx
                .iter()
                .copied()
                .filter(|&i| offers[i].provider == market.airalo())
                .collect();
            let shelf = CountryOffers {
                airalo: OfferLane::build(offers, airalo_idx.iter().copied()),
                all: OfferLane::build(offers, all_idx.iter().copied()),
            };
            // Sweep needs across and beyond every shelf size, both
            // preference branches.
            for tenth_gb in 0..400u32 {
                let need = f64::from(tenth_gb) / 10.0;
                for prefer in [false, true] {
                    let fast = choose_offer(offers, &shelf, prefer, need);
                    let slow = reference_choose(offers, &airalo_idx, &all_idx, prefer, need);
                    assert_eq!(
                        fast.map(|o| o as *const _),
                        slow.map(|o| o as *const _),
                        "{country:?} need={need} prefer={prefer}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_lane_yields_no_offer() {
        let market = Market::generate(7);
        let offers = market.offers();
        let shelf = CountryOffers {
            airalo: OfferLane::build(offers, std::iter::empty()),
            all: OfferLane::build(offers, std::iter::empty()),
        };
        assert!(choose_offer(offers, &shelf, true, 1.0).is_none());
        assert!(choose_offer(offers, &shelf, false, 1.0).is_none());
    }
}
