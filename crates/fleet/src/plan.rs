//! The planner: turn a population and a shard count into work orders.
//!
//! Partitioning is the first leg of the determinism contract — user `u`
//! always lands in the same shard for a given `(users, shards)` pair, so
//! checkpoint files and resume states can be routed by shard index alone.
//! The same contiguous split (`lo = users·i/n`) has been used since the
//! fleet plane's first version; the planner only centralizes it and
//! attaches resume states.

use crate::checkpoint::ShardState;
use crate::exec::ShardSpec;

/// Compute the effective shard count: never more shards than users —
/// empty shards would be harmless but wasteful (each builds a world).
#[must_use]
pub(crate) fn effective_shards(users: u64, shards: usize) -> usize {
    (shards.max(1) as u64).min(users.max(1)) as usize
}

/// The contiguous user range of shard `i` of `n`.
#[must_use]
pub(crate) fn shard_range(users: u64, i: usize, n: usize) -> (u64, u64) {
    let lo = users * i as u64 / n as u64;
    let hi = users * (i as u64 + 1) / n as u64;
    (lo, hi)
}

/// Build every shard's work order, routing resume states (if any) to
/// their shards by index.
#[must_use]
pub(crate) fn plan_shards(
    users: u64,
    shards: usize,
    mut resume: Option<Vec<Option<ShardState>>>,
) -> Vec<ShardSpec> {
    let n = effective_shards(users, shards);
    (0..n)
        .map(|i| {
            let (lo, hi) = shard_range(users, i, n);
            ShardSpec {
                index: i,
                lo,
                hi,
                resume: resume
                    .as_mut()
                    .and_then(|states| states.get_mut(i).and_then(std::option::Option::take)),
                attempt: 0,
            }
        })
        .collect()
}

/// Stripe shard indices across `workers` processes round-robin, so a
/// slow shard doesn't serialize behind its neighbours on one worker.
/// Empty stripes are dropped (more workers than shards).
#[must_use]
pub(crate) fn stripe(shards: usize, workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1).min(shards.max(1));
    let mut stripes = vec![Vec::new(); workers];
    for i in 0..shards {
        stripes[i % workers].push(i);
    }
    stripes.retain(|s| !s.is_empty());
    stripes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_population_exactly() {
        for users in [1u64, 2, 9, 10_000, 100_001] {
            for shards in [1usize, 2, 3, 4, 7, 64] {
                let plans = plan_shards(users, shards, None);
                assert_eq!(plans[0].lo, 0);
                assert_eq!(plans.last().expect("non-empty").hi, users);
                for w in plans.windows(2) {
                    assert_eq!(w[0].hi, w[1].lo, "contiguous, no gap or overlap");
                }
                assert!(plans.iter().all(|p| p.lo < p.hi), "no empty shards");
            }
        }
    }

    #[test]
    fn striping_is_round_robin_and_total() {
        assert_eq!(stripe(5, 2), vec![vec![0, 2, 4], vec![1, 3]]);
        assert_eq!(stripe(2, 8), vec![vec![0], vec![1]]);
        let all: Vec<usize> = stripe(9, 4).into_iter().flatten().collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn resume_states_route_by_index() {
        let state = |i: usize| {
            Some(crate::checkpoint::ShardState {
                index: i,
                next_uid: 5,
                report: crate::report::FleetReport::new(4),
                telemetry: roam_telemetry::TelemetrySnapshot::default(),
            })
        };
        let plans = plan_shards(10, 2, Some(vec![None, state(1)]));
        assert!(plans[0].resume.is_none());
        assert_eq!(plans[1].resume.as_ref().expect("routed").index, 1);
    }
}
