//! Deterministic subscriber synthesis.
//!
//! Each user is a pure function of `(master seed, user id)`: the profile
//! is drawn from an RNG stream seeded with
//! `flow_seed(master, "fleet/user/<id>")`, the same derivation the
//! measurement flows use. No user ever touches another user's stream, so
//! any partition of the id range synthesizes exactly the same population —
//! the first half of the fleet determinism contract.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roam_geo::Country;
use roam_netsim::engine::flow_seed;

/// A subscriber's stable identity within a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u64);

/// The traveller archetypes the related work observes at population scale:
/// leisure roamers, frequent business travellers, and the stationary
/// cellular-IoT fleet of "Where Things Roam".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TravelerClass {
    /// Leisure trip: 1–2 destinations, casual data needs.
    Tourist,
    /// Frequent flyer: 2–4 destinations, heavier data needs.
    Business,
    /// Deployed device: one destination, tiny but chatty sessions.
    IotDevice,
}

impl TravelerClass {
    /// Stable label used in report rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TravelerClass::Tourist => "tourist",
            TravelerClass::Business => "business",
            TravelerClass::IotDevice => "iot",
        }
    }
}

/// One leg of an itinerary: a destination and how long the user stays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Leg {
    /// Destination country (always one of the measured set, so every leg
    /// has a calibrated arrangement to attach through).
    pub country: Country,
    /// Day (within the run's window) the user lands and buys a plan.
    pub arrival_day: u32,
    /// Data sessions the user churns through on this leg.
    pub sessions: u32,
}

/// A fully-synthesized subscriber: identity, class, data appetite and
/// itinerary.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Identity.
    pub id: UserId,
    /// Traveller archetype.
    pub class: TravelerClass,
    /// Data the user wants covered per leg, GB (drives offer selection).
    pub need_gb: f64,
    /// The itinerary, in travel order.
    pub legs: Vec<Leg>,
}

/// The per-user RNG stream: everything about user `id` is drawn from here
/// and nowhere else.
#[must_use]
pub fn user_rng(master: u64, id: UserId) -> SmallRng {
    // The key is `fleet/user/<id>`; building it on the stack without the
    // `fmt` machinery matters when this runs once per synthesized user.
    const PREFIX: &[u8] = b"fleet/user/";
    let mut buf = [0u8; PREFIX.len() + 20];
    buf[..PREFIX.len()].copy_from_slice(PREFIX);
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut v = id.0;
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    let n = digits.len() - i;
    buf[PREFIX.len()..PREFIX.len() + n].copy_from_slice(&digits[i..]);
    let key = std::str::from_utf8(&buf[..PREFIX.len() + n]).expect("decimal digits are ASCII");
    SmallRng::seed_from_u64(flow_seed(master, key))
}

/// Draw a destination: rank-weighted over `countries` with weight
/// `1/(1+rank)`, a Zipf-flavoured skew — a few hotspot destinations carry
/// most of the fleet, the tail stays populated.
fn draw_destination(rng: &mut SmallRng, countries: &[Country]) -> Country {
    let total: f64 = (0..countries.len()).map(|r| 1.0 / (1 + r) as f64).sum();
    let mut roll = rng.gen_range(0.0..total);
    for (rank, &c) in countries.iter().enumerate() {
        roll -= 1.0 / (1 + rank) as f64;
        if roll <= 0.0 {
            return c;
        }
    }
    countries[countries.len() - 1]
}

/// Synthesize user `id` against the measured-country list (the possible
/// destinations) and the run's day window.
#[must_use]
pub fn synthesize(master: u64, id: UserId, countries: &[Country], days: u32) -> UserProfile {
    assert!(!countries.is_empty(), "no destinations to travel to");
    let mut rng = user_rng(master, id);
    let class = match rng.gen_range(0u32..100) {
        0..=69 => TravelerClass::Tourist,
        70..=94 => TravelerClass::Business,
        _ => TravelerClass::IotDevice,
    };
    let (leg_range, sessions_range, need_gb) = match class {
        TravelerClass::Tourist => (1..=2u32, 2..=4u32, rng.gen_range(1.0..8.0)),
        TravelerClass::Business => (2..=4u32, 3..=6u32, rng.gen_range(3.0..20.0)),
        // IoT: one deployment, many tiny sessions, sub-GB appetite.
        TravelerClass::IotDevice => (1..=1u32, 6..=10u32, rng.gen_range(0.05..0.5)),
    };
    let leg_count = rng.gen_range(leg_range);
    let mut day = rng.gen_range(0..days.max(1));
    let mut legs = Vec::with_capacity(leg_count as usize);
    for _ in 0..leg_count {
        let country = draw_destination(&mut rng, countries);
        let sessions = rng.gen_range(sessions_range.clone());
        legs.push(Leg {
            country,
            arrival_day: day,
            sessions,
        });
        // Next leg starts after a stay of 1–14 days, wrapped into the
        // window so every price lookup stays inside the run's calendar.
        day = (day + rng.gen_range(1..=14)) % days.max(1);
    }
    UserProfile {
        id,
        class,
        need_gb,
        legs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn countries() -> Vec<Country> {
        Country::MEASURED.to_vec()
    }

    #[test]
    fn synthesis_is_a_pure_function_of_seed_and_id() {
        let cs = countries();
        let a = synthesize(42, UserId(7), &cs, 60);
        let b = synthesize(42, UserId(7), &cs, 60);
        assert_eq!(a, b);
        // Different users get different streams…
        let c = synthesize(42, UserId(8), &cs, 60);
        assert_ne!(a, c);
        // …and different masters reshuffle everyone.
        let d = synthesize(43, UserId(7), &cs, 60);
        assert_ne!(a, d);
    }

    #[test]
    fn classes_follow_the_70_25_5_split() {
        let cs = countries();
        let mut counts = [0u32; 3];
        for id in 0..4000 {
            let p = synthesize(1, UserId(id), &cs, 60);
            counts[match p.class {
                TravelerClass::Tourist => 0,
                TravelerClass::Business => 1,
                TravelerClass::IotDevice => 2,
            }] += 1;
        }
        let frac = |n: u32| f64::from(n) / 4000.0;
        assert!((frac(counts[0]) - 0.70).abs() < 0.05, "tourists {counts:?}");
        assert!((frac(counts[1]) - 0.25).abs() < 0.05, "business {counts:?}");
        assert!((frac(counts[2]) - 0.05).abs() < 0.03, "iot {counts:?}");
    }

    #[test]
    fn itineraries_stay_inside_the_window_and_destination_set() {
        let cs = countries();
        for id in 0..500 {
            let p = synthesize(9, UserId(id), &cs, 30);
            assert!(!p.legs.is_empty());
            assert!(p.legs.len() <= 4);
            for leg in &p.legs {
                assert!(leg.arrival_day < 30);
                assert!(cs.contains(&leg.country));
                assert!(leg.sessions >= 1);
            }
            assert!(p.need_gb > 0.0);
        }
    }

    #[test]
    fn destinations_are_rank_skewed() {
        let cs = countries();
        let mut first = 0u32;
        let n = 3000u32;
        for id in 0..n {
            let p = synthesize(5, UserId(u64::from(id)), &cs, 60);
            first += u32::from(p.legs[0].country == cs[0]);
        }
        // Rank-0 weight is 1/H(24) ≈ 26% of draws; uniform would be ~4%.
        let frac = f64::from(first) / f64::from(n);
        assert!(frac > 0.15, "rank-0 destination underrepresented: {frac}");
    }
}
