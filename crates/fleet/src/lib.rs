//! roam-fleet: population-scale deterministic workload generation.
//!
//! The measurement crates replay the paper's *campaigns* — a few hundred
//! carefully-planned tests. This crate asks the scaling question behind
//! the Airalo ecosystem instead: what does the marketplace + IPX stack
//! look like under a whole *population* of roamers? It synthesizes
//! 10⁴–10⁷ subscribers, gives each an itinerary, walks every leg through
//! a marketplace purchase ([`roam_econ`]) and a churn of eSIM
//! measurement sessions ([`roam_measure`]), and streams every observable
//! into mergeable sketches ([`roam_stats::stream`]) so memory stays
//! O(shards × sketch) no matter the population.
//!
//! The module split mirrors the pipeline:
//!
//! | module         | role                                                |
//! |----------------|-----------------------------------------------------|
//! | [`batch`]      | cohort batches: arbitrary uid ranges for roam-service |
//! | [`config`]     | sizing knobs + `ROAM_FLEET_*` environment parsing   |
//! | [`population`] | per-user deterministic synthesis (class, itinerary) |
//! | `plan`         | shard work orders + worker striping                 |
//! | `exec`         | shard execution, checkpoint cadence, resume         |
//! | [`worker`]     | multi-process backend (job/result frames on pipes)  |
//! | [`supervisor`] | worker crash recovery, retry/quarantine, chaos plane |
//! | `merge`        | the shard-order fold into one run                   |
//! | [`checkpoint`] | durable partial state: manifest + shard files       |
//! | [`runner`]     | the builder orchestrating all of the above          |
//! | [`report`]     | exactly-mergeable aggregates + stable render        |
//! | [`sink`]       | per-session records for the `Dataset::Sessions` export |
//!
//! # Determinism
//!
//! [`FleetReport::render`] is byte-identical across `ROAM_PARALLEL`
//! (worker threads), `ROAM_FLEET_WORKERS` (worker processes),
//! `ROAM_FLEET_SHARDS` (population partitioning), `ROAM_TRANSPORT`
//! (closed-form vs event-engine backend) and a kill-and-resume through
//! `ROAM_CHECKPOINT_DIR`. See the module docs on [`runner`] for the
//! three-part contract, and `tests/fleet_determinism.rs` /
//! `crates/fleet/tests/checkpoint_resume.rs` for the pins.

pub mod batch;
pub mod checkpoint;
pub mod config;
mod exec;
mod merge;
mod plan;
pub mod population;
pub mod report;
pub mod runner;
pub mod sink;
pub mod supervisor;
pub mod worker;

pub use batch::{BatchRun, UserBatch};
pub use checkpoint::{Manifest, ResumeError, ShardState, CKPT_VERSION};
pub use config::{FleetConfig, SessionMix};
pub use population::{synthesize, user_rng, Leg, TravelerClass, UserId, UserProfile};
pub use report::{FleetReport, JourneySample};
pub use runner::{
    FleetConfigError, FleetError, FleetRun, FleetRunner, FleetShardTiming, DEFAULT_CHECKPOINT_EVERY,
};
pub use sink::{SessionKind, SessionRecord, SessionRows};
pub use supervisor::{
    InjectedFault, ProtocolViolation, SupervisionStats, SupervisorPolicy, WorkerError,
    WorkerFaultSpec, DEFAULT_WORKER_DEADLINE_MS, DEFAULT_WORKER_RETRIES,
};
