//! Fleet sizing and workload-mix knobs.

/// Relative weights of the three measurement kinds a fleet session can
/// run: RTT probes, DNS lookups and bulk transfers. Parsed from
/// `ROAM_FLEET_MIX` as `rtt:dns:transfer` (e.g. `2:1:1`).
///
/// Only the *ratio* matters; a zero weight disables that kind. All-zero
/// mixes are rejected at parse time and by [`SessionMix::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionMix {
    /// Weight of RTT probes.
    pub rtt: u32,
    /// Weight of DNS lookups.
    pub dns: u32,
    /// Weight of bulk transfers.
    pub transfer: u32,
}

impl Default for SessionMix {
    fn default() -> Self {
        SessionMix {
            rtt: 2,
            dns: 1,
            transfer: 1,
        }
    }
}

impl SessionMix {
    /// A mix with the given weights.
    ///
    /// # Panics
    /// When every weight is zero — a session must do *something*.
    #[must_use]
    pub fn new(rtt: u32, dns: u32, transfer: u32) -> Self {
        assert!(rtt + dns + transfer > 0, "all-zero session mix");
        SessionMix { rtt, dns, transfer }
    }

    /// Total weight.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.rtt + self.dns + self.transfer
    }

    /// Parse `rtt:dns:transfer`; `None` for malformed or all-zero input.
    #[must_use]
    pub fn parse(s: &str) -> Option<SessionMix> {
        let mut parts = s.trim().split(':');
        let rtt = parts.next()?.trim().parse().ok()?;
        let dns = parts.next()?.trim().parse().ok()?;
        let transfer = parts.next()?.trim().parse().ok()?;
        if parts.next().is_some() || rtt + dns + transfer == 0 {
            return None;
        }
        Some(SessionMix { rtt, dns, transfer })
    }
}

/// Everything that sizes a fleet run. All fields have environment
/// counterparts (`ROAM_FLEET_*`) read by [`FleetConfig::from_env`]; none
/// of them can change the per-user byte stream, only how many users run,
/// how they are partitioned, and what the report samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Synthetic subscribers to simulate (`ROAM_FLEET_USERS`).
    pub users: u64,
    /// Shards the population is split into (`ROAM_FLEET_SHARDS`). The
    /// report is byte-identical for every value ≥ 1.
    pub shards: usize,
    /// Calendar window the itineraries play out over, days
    /// (`ROAM_FLEET_DAYS`). Purchase prices drift across this window.
    pub days: u32,
    /// Capacity of the deterministic journey sample in the report
    /// (`ROAM_FLEET_SAMPLE`).
    pub sample: usize,
    /// Measurement mix per session (`ROAM_FLEET_MIX`, `rtt:dns:transfer`).
    pub mix: SessionMix,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            users: 10_000,
            shards: 4,
            days: 60,
            sample: 16,
            mix: SessionMix::default(),
        }
    }
}

/// Parse an environment variable, treating absent/malformed as `None`
/// (shared by the `ROAM_FLEET_*` and checkpoint/worker knobs).
pub(crate) fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok()?.trim().parse().ok()
}

impl FleetConfig {
    /// Defaults overridden by whichever `ROAM_FLEET_*` variables are set:
    /// `USERS`, `SHARDS`, `DAYS`, `SAMPLE` (integers) and `MIX`
    /// (`rtt:dns:transfer`). Malformed values fall back to the default.
    #[must_use]
    pub fn from_env() -> Self {
        let d = FleetConfig::default();
        FleetConfig {
            users: env_parse("ROAM_FLEET_USERS").unwrap_or(d.users).max(1),
            shards: env_parse("ROAM_FLEET_SHARDS").unwrap_or(d.shards).max(1),
            days: env_parse("ROAM_FLEET_DAYS").unwrap_or(d.days).max(1),
            sample: env_parse("ROAM_FLEET_SAMPLE").unwrap_or(d.sample),
            mix: std::env::var("ROAM_FLEET_MIX")
                .ok()
                .and_then(|s| SessionMix::parse(&s))
                .unwrap_or(d.mix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parses_and_rejects() {
        assert_eq!(SessionMix::parse("2:1:1"), Some(SessionMix::default()));
        assert_eq!(SessionMix::parse(" 0:3:5 "), Some(SessionMix::new(0, 3, 5)));
        assert_eq!(SessionMix::parse("0:0:0"), None, "all-zero is no mix");
        assert_eq!(SessionMix::parse("1:2"), None);
        assert_eq!(SessionMix::parse("1:2:3:4"), None);
        assert_eq!(SessionMix::parse("a:b:c"), None);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_mix_panics() {
        let _ = SessionMix::new(0, 0, 0);
    }

    #[test]
    fn defaults_are_sane() {
        let c = FleetConfig::default();
        assert_eq!(c.users, 10_000);
        assert!(c.shards >= 1 && c.days >= 1);
        assert_eq!(c.mix.total(), 4);
    }
}
