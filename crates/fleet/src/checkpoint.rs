//! Checkpoint files: durable partial state for killed-and-resumed runs.
//!
//! A checkpointed fleet run leaves two kinds of files in its directory
//! (`ROAM_CHECKPOINT_DIR`), both sealed [`roam_codec`] frames:
//!
//! | file            | frame kind        | contents                          |
//! |-----------------|-------------------|-----------------------------------|
//! | `manifest.ckpt` | [`KIND_MANIFEST`] | run identity: seed, sizing, mode, |
//! |                 |                   | resolved faults, fingerprint      |
//! | `shard-NNN.ckpt`| [`KIND_SHARD`]    | one shard's partial state: next   |
//! |                 |                   | user id, report, telemetry        |
//!
//! The same kind registry also covers the frames that never touch disk:
//! [`KIND_JOB`] (parent → worker stdin), [`KIND_RESULT`] and
//! [`KIND_HEARTBEAT`] (worker stdout → parent, see
//! [`supervisor`](crate::supervisor)), and [`KIND_AGENT`]
//! (`roam-service`'s `agent.ckpt`).
//!
//! The **fingerprint** is the stale-checkpoint tripwire: a hash over the
//! seeded world, the generated market, and every knob that can reach the
//! report bytes. [`FleetRunner::resume`](crate::FleetRunner::resume)
//! recomputes it from the manifest's knobs against the *current* binary
//! and refuses loudly ([`ResumeError::FingerprintMismatch`]) when world
//! or market generation has drifted since the checkpoint was written —
//! resuming such a run would splice incompatible partial states.
//!
//! Writes are atomic (temp file + rename), so a kill mid-write leaves
//! the previous checkpoint intact, never a torn frame. Because every
//! per-user observable derives from the user's own keyed RNG stream, the
//! `next_uid` cursor plus the mergeable aggregates *are* the whole shard
//! state — resuming replays nothing and re-derives nothing.

use crate::config::{FleetConfig, SessionMix};
use crate::report::FleetReport;
use roam_codec::{hash64, CodecError, Decoder, Encoder, Frame};
use roam_econ::Market;
use roam_netsim::FaultSpec;
use roam_telemetry::{TelemetryMode, TelemetrySnapshot};
use roam_world::World;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Checkpoint payload format version, carried in every sealed frame. Bump
/// on any incompatible layout change; resume refuses other versions with
/// [`ResumeError::VersionMismatch`].
pub const CKPT_VERSION: u16 = 1;

/// Frame kind of `manifest.ckpt`.
pub const KIND_MANIFEST: u16 = 1;
/// Frame kind of `shard-NNN.ckpt`.
pub const KIND_SHARD: u16 = 2;
/// Frame kind of a worker job (parent → worker stdin).
pub const KIND_JOB: u16 = 3;
/// Frame kind of a shard result (worker stdout → parent).
pub const KIND_RESULT: u16 = 4;
/// Frame kind of a service agent's checkpoint (`roam-service`). The kind
/// lives in this registry so every checkpoint-plane frame kind is
/// declared in one place.
pub const KIND_AGENT: u16 = 5;
/// Frame kind of a worker liveness heartbeat (worker stdout → parent):
/// emitted before each shard so the supervisor can tell a long shard
/// from a stalled worker and knows which shard an in-flight death
/// should be charged to.
pub const KIND_HEARTBEAT: u16 = 6;

/// File name of the run manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.ckpt";

/// File name of shard `index`'s checkpoint inside the directory.
#[must_use]
pub fn shard_file(index: usize) -> String {
    format!("shard-{index:03}.ckpt")
}

/// Field tags for the manifest payload.
mod manifest_tag {
    pub const SEED: u32 = 1;
    pub const FINGERPRINT: u32 = 2;
    pub const SHARDS: u32 = 3;
    pub const EVERY: u32 = 4;
    pub const CONFIG: u32 = 5;
    pub const TELEMETRY: u32 = 6;
    pub const FAULTS: u32 = 7;
}

/// Field tags for a [`FleetConfig`] section (manifest and worker jobs).
mod config_tag {
    pub const USERS: u32 = 1;
    pub const SHARDS: u32 = 2;
    pub const DAYS: u32 = 3;
    pub const SAMPLE: u32 = 4;
    pub const MIX_RTT: u32 = 5;
    pub const MIX_DNS: u32 = 6;
    pub const MIX_TRANSFER: u32 = 7;
}

/// Field tags for a shard-state payload.
mod shard_tag {
    pub const INDEX: u32 = 1;
    pub const NEXT_UID: u32 = 2;
    pub const REPORT: u32 = 3;
    pub const TELEMETRY: u32 = 4;
}

/// Why a checkpoint directory could not be resumed. Every variant is a
/// *refusal*: resume never silently starts over or splices mismatched
/// state.
#[derive(Debug)]
pub enum ResumeError {
    /// The directory has no readable manifest — either the path is wrong
    /// or the run died before its first checkpoint.
    MissingManifest(PathBuf),
    /// Reading a checkpoint file failed below the codec layer.
    Io(PathBuf, std::io::Error),
    /// A file's frame or payload failed to decode (truncation, hash
    /// mismatch, missing fields, out-of-range values).
    Corrupt(PathBuf, CodecError),
    /// The checkpoint was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u16,
        /// Version this binary speaks.
        supported: u16,
    },
    /// The manifest's world/campaign fingerprint does not match what this
    /// binary generates from the manifest's own knobs: world, market or
    /// knob semantics drifted since the checkpoint was written.
    FingerprintMismatch {
        /// Fingerprint stored in the manifest.
        stored: u64,
        /// Fingerprint recomputed by this binary.
        computed: u64,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::MissingManifest(dir) => {
                write!(f, "no checkpoint manifest in {}", dir.display())
            }
            ResumeError::Io(path, e) => write!(f, "reading {}: {e}", path.display()),
            ResumeError::Corrupt(path, e) => {
                write!(f, "corrupt checkpoint {}: {e}", path.display())
            }
            ResumeError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint format v{found} is not resumable by this binary (v{supported})"
            ),
            ResumeError::FingerprintMismatch { stored, computed } => write!(
                f,
                "stale checkpoint: stored fingerprint {stored:#018x} != computed {computed:#018x} \
                 (world or campaign drifted since the checkpoint was written)"
            ),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::Io(_, e) => Some(e),
            ResumeError::Corrupt(_, e) => Some(e),
            _ => None,
        }
    }
}

/// Stable discriminant for a [`TelemetryMode`] on the wire.
#[must_use]
pub(crate) fn telemetry_to_wire(mode: TelemetryMode) -> u64 {
    match mode {
        TelemetryMode::Off => 0,
        TelemetryMode::Summary => 1,
        TelemetryMode::Jsonl => 2,
    }
}

pub(crate) fn telemetry_from_wire(v: u64) -> Result<TelemetryMode, CodecError> {
    match v {
        0 => Ok(TelemetryMode::Off),
        1 => Ok(TelemetryMode::Summary),
        2 => Ok(TelemetryMode::Jsonl),
        _ => Err(CodecError::BadValue("telemetry mode")),
    }
}

/// Encode a [`FleetConfig`] as a section payload. Fixed tags, one field
/// per knob; the mix is flattened into its three weights.
pub(crate) fn encode_config(e: &mut Encoder, config: &FleetConfig) {
    e.u64(config_tag::USERS, config.users);
    e.u64(config_tag::SHARDS, config.shards as u64);
    e.u64(config_tag::DAYS, u64::from(config.days));
    e.u64(config_tag::SAMPLE, config.sample as u64);
    e.u64(config_tag::MIX_RTT, u64::from(config.mix.rtt));
    e.u64(config_tag::MIX_DNS, u64::from(config.mix.dns));
    e.u64(config_tag::MIX_TRANSFER, u64::from(config.mix.transfer));
}

pub(crate) fn decode_config(d: &mut Decoder<'_>) -> Result<FleetConfig, CodecError> {
    let mut c = FleetConfig::default();
    let (mut rtt, mut dns, mut transfer) = (c.mix.rtt, c.mix.dns, c.mix.transfer);
    while let Some((tag, v)) = d.next_field()? {
        match tag {
            config_tag::USERS => c.users = v.as_u64(tag)?.max(1),
            config_tag::SHARDS => {
                c.shards = usize::try_from(v.as_u64(tag)?)
                    .map_err(|_| CodecError::BadValue("shards"))?
                    .max(1);
            }
            config_tag::DAYS => {
                c.days = u32::try_from(v.as_u64(tag)?)
                    .map_err(|_| CodecError::BadValue("days"))?
                    .max(1);
            }
            config_tag::SAMPLE => {
                c.sample =
                    usize::try_from(v.as_u64(tag)?).map_err(|_| CodecError::BadValue("sample"))?;
            }
            config_tag::MIX_RTT => {
                rtt = u32::try_from(v.as_u64(tag)?).map_err(|_| CodecError::BadValue("mix"))?;
            }
            config_tag::MIX_DNS => {
                dns = u32::try_from(v.as_u64(tag)?).map_err(|_| CodecError::BadValue("mix"))?;
            }
            config_tag::MIX_TRANSFER => {
                transfer =
                    u32::try_from(v.as_u64(tag)?).map_err(|_| CodecError::BadValue("mix"))?;
            }
            _ => {}
        }
    }
    if rtt + dns + transfer == 0 {
        return Err(CodecError::BadValue("all-zero mix"));
    }
    c.mix = SessionMix::new(rtt, dns, transfer);
    Ok(c)
}

/// Encode a resolved [`FaultSpec`] as a section payload: the twelve
/// schedule fields at tags 1–12, bit-exact `f64`s in declaration order.
pub(crate) fn encode_faults(e: &mut Encoder, spec: &FaultSpec) {
    for (tag, v) in fault_fields(spec).into_iter().enumerate() {
        e.f64(tag as u32 + 1, v);
    }
}

pub(crate) fn decode_faults(d: &mut Decoder<'_>) -> Result<FaultSpec, CodecError> {
    let mut fields = [0.0f64; 12];
    while let Some((tag, v)) = d.next_field()? {
        if let 1..=12 = tag {
            fields[tag as usize - 1] = v.as_f64(tag)?;
        }
    }
    let [link_flap_rate, flap_bad_loss, flap_good_ms, flap_bad_ms, gateway_outage_rate, outage_up_ms, outage_dark_ms, dns_blackhole_rate, cgnat_rebind_rate, rebind_up_ms, rebind_dark_ms, period_ms] =
        fields;
    Ok(FaultSpec {
        link_flap_rate,
        flap_bad_loss,
        flap_good_ms,
        flap_bad_ms,
        gateway_outage_rate,
        outage_up_ms,
        outage_dark_ms,
        dns_blackhole_rate,
        cgnat_rebind_rate,
        rebind_up_ms,
        rebind_dark_ms,
        period_ms,
    })
}

fn fault_fields(s: &FaultSpec) -> [f64; 12] {
    [
        s.link_flap_rate,
        s.flap_bad_loss,
        s.flap_good_ms,
        s.flap_bad_ms,
        s.gateway_outage_rate,
        s.outage_up_ms,
        s.outage_dark_ms,
        s.dns_blackhole_rate,
        s.cgnat_rebind_rate,
        s.rebind_up_ms,
        s.rebind_dark_ms,
        s.period_ms,
    ]
}

/// The run identity a checkpoint directory belongs to: everything resume
/// needs to rebuild an identical runner, plus the fingerprint that proves
/// this binary still generates the same world and market.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Master seed.
    pub seed: u64,
    /// Content-addressed world/campaign fingerprint ([`run_fingerprint`]).
    pub fingerprint: u64,
    /// Effective shard count (after clamping to the population).
    pub shards: usize,
    /// Checkpoint cadence, accumulated sim-days per shard between writes.
    pub every: u64,
    /// Sizing knobs of the run.
    pub config: FleetConfig,
    /// Telemetry mode of the run.
    pub telemetry: TelemetryMode,
    /// The *resolved* fault schedule (override or environment at launch
    /// time). Stored so resume replays the same schedule even if
    /// `ROAM_FAULTS` changed in between.
    pub faults: FaultSpec,
}

impl Manifest {
    /// Serialize into a sealed [`KIND_MANIFEST`] frame.
    #[must_use]
    pub fn to_frame(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(manifest_tag::SEED, self.seed);
        e.u64(manifest_tag::FINGERPRINT, self.fingerprint);
        e.u64(manifest_tag::SHARDS, self.shards as u64);
        e.u64(manifest_tag::EVERY, self.every);
        e.section(manifest_tag::CONFIG, |se| encode_config(se, &self.config));
        e.u64(manifest_tag::TELEMETRY, telemetry_to_wire(self.telemetry));
        e.section(manifest_tag::FAULTS, |se| encode_faults(se, &self.faults));
        e.into_frame(KIND_MANIFEST, CKPT_VERSION)
    }

    /// Decode a manifest payload (the frame has already been parsed and
    /// version-checked).
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(payload);
        let (mut seed, mut fingerprint, mut shards, mut every) = (None, None, None, None);
        let (mut config, mut telemetry, mut faults) = (None, None, None);
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                manifest_tag::SEED => seed = Some(v.as_u64(tag)?),
                manifest_tag::FINGERPRINT => fingerprint = Some(v.as_u64(tag)?),
                manifest_tag::SHARDS => {
                    shards = Some(
                        usize::try_from(v.as_u64(tag)?)
                            .map_err(|_| CodecError::BadValue("shards"))?,
                    );
                }
                manifest_tag::EVERY => every = Some(v.as_u64(tag)?),
                manifest_tag::CONFIG => config = Some(decode_config(&mut v.as_section(tag)?)?),
                manifest_tag::TELEMETRY => telemetry = Some(telemetry_from_wire(v.as_u64(tag)?)?),
                manifest_tag::FAULTS => faults = Some(decode_faults(&mut v.as_section(tag)?)?),
                _ => {}
            }
        }
        Ok(Manifest {
            seed: seed.ok_or(CodecError::MissingField("seed"))?,
            fingerprint: fingerprint.ok_or(CodecError::MissingField("fingerprint"))?,
            shards: shards.ok_or(CodecError::MissingField("shards"))?,
            every: every.ok_or(CodecError::MissingField("every"))?,
            config: config.ok_or(CodecError::MissingField("config"))?,
            telemetry: telemetry.ok_or(CodecError::MissingField("telemetry"))?,
            faults: faults.ok_or(CodecError::MissingField("faults"))?,
        })
    }
}

/// One shard's resumable partial state: where to pick the user loop back
/// up, and everything accumulated so far. Because per-user observables
/// derive from per-user RNG streams, `next_uid` is the *complete* RNG
/// cursor — no generator state needs saving.
#[derive(Debug, Clone)]
pub struct ShardState {
    /// Which shard this is.
    pub index: usize,
    /// First user id the resumed loop will run.
    pub next_uid: u64,
    /// Aggregates over users `[lo, next_uid)`.
    pub report: FleetReport,
    /// Telemetry accumulated over the same prefix. Restored wholesale
    /// into the resumed shard's recorder (`Recorder::restore`) so the
    /// sequential `f64` histogram sums continue in original order —
    /// merging two partial snapshots would not be bit-identical.
    pub telemetry: TelemetrySnapshot,
}

impl ShardState {
    /// Encode this state's fields (shared by checkpoint files and worker
    /// job resume sections).
    pub fn encode_fields(&self, e: &mut Encoder) {
        e.u64(shard_tag::INDEX, self.index as u64);
        e.u64(shard_tag::NEXT_UID, self.next_uid);
        e.section(shard_tag::REPORT, |se| self.report.encode_fields(se));
        e.section(shard_tag::TELEMETRY, |se| self.telemetry.encode_fields(se));
    }

    /// Serialize into a sealed [`KIND_SHARD`] frame.
    #[must_use]
    pub fn to_frame(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode_fields(&mut e);
        e.into_frame(KIND_SHARD, CKPT_VERSION)
    }

    /// Decode one shard state from `d`.
    pub fn decode_fields(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let (mut index, mut next_uid, mut report, mut telemetry) = (None, None, None, None);
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                shard_tag::INDEX => {
                    index = Some(
                        usize::try_from(v.as_u64(tag)?)
                            .map_err(|_| CodecError::BadValue("shard index"))?,
                    );
                }
                shard_tag::NEXT_UID => next_uid = Some(v.as_u64(tag)?),
                shard_tag::REPORT => {
                    report = Some(FleetReport::decode_fields(&mut v.as_section(tag)?)?)
                }
                shard_tag::TELEMETRY => {
                    telemetry = Some(TelemetrySnapshot::decode_fields(&mut v.as_section(tag)?)?);
                }
                _ => {}
            }
        }
        Ok(ShardState {
            index: index.ok_or(CodecError::MissingField("shard index"))?,
            next_uid: next_uid.ok_or(CodecError::MissingField("next_uid"))?,
            report: report.ok_or(CodecError::MissingField("shard report"))?,
            telemetry: telemetry.ok_or(CodecError::MissingField("shard telemetry"))?,
        })
    }
}

/// The content-addressed world/campaign fingerprint: a fold over the
/// seeded world's structure, every generated market offer, and each knob
/// that can reach the report bytes. Two binaries computing the same value
/// for the same manifest will drive byte-identical runs; anything else is
/// a stale checkpoint.
#[must_use]
pub fn run_fingerprint(
    seed: u64,
    config: &FleetConfig,
    telemetry: TelemetryMode,
    faults: &FaultSpec,
) -> u64 {
    let world = World::build(seed);
    let market = Market::generate(seed);
    let mut e = Encoder::new();
    e.u64(1, u64::from(CKPT_VERSION));
    e.u64(2, seed);
    e.u64(3, world.fingerprint());
    e.section(4, |se| {
        for offer in market.offers() {
            se.section(1, |oe| {
                oe.u64(1, u64::from(offer.provider.0));
                oe.str(2, offer.country.alpha3());
                oe.f64(3, offer.data_gb);
                oe.u64(4, u64::from(offer.validity_days));
                oe.f64(5, offer.base_price_usd);
                oe.u64(6, offer.bmno.map_or(u64::MAX, u64::from));
            });
        }
        se.u64(2, u64::from(market.airalo().0));
    });
    e.section(5, |se| encode_config(se, config));
    e.u64(6, telemetry_to_wire(telemetry));
    e.section(7, |se| encode_faults(se, faults));
    hash64(&e.into_bytes())
}

/// When and where a running shard writes checkpoints.
#[derive(Debug, Clone)]
pub(crate) struct CheckpointPolicy {
    /// Directory holding `manifest.ckpt` and the shard files.
    pub dir: PathBuf,
    /// Accumulated sim-days between writes (`ROAM_CHECKPOINT_EVERY`).
    pub every_days: u64,
    /// Stop the shard after this many checkpoint writes — the
    /// kill-and-resume harness's deterministic stand-in for a SIGKILL.
    pub halt_after: Option<u32>,
}

/// Atomically persist the manifest into `dir`, creating it if needed.
pub(crate) fn write_manifest(dir: &Path, manifest: &Manifest) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    write_atomic(&dir.join(MANIFEST_FILE), &manifest.to_frame())
}

/// Atomically persist one shard's state into `dir`.
pub(crate) fn write_shard(dir: &Path, state: &ShardState) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    write_atomic(&dir.join(shard_file(state.index)), &state.to_frame())
}

/// Load the manifest from `dir`. A missing file is
/// [`ResumeError::MissingManifest`]; anything unreadable or undecodable
/// is reported as-is, never papered over.
pub(crate) fn load_manifest(dir: &Path) -> Result<Manifest, ResumeError> {
    let path = dir.join(MANIFEST_FILE);
    if !path.exists() {
        return Err(ResumeError::MissingManifest(dir.to_path_buf()));
    }
    let payload = read_frame(&path, KIND_MANIFEST)?;
    Manifest::decode(&payload).map_err(|e| ResumeError::Corrupt(path, e))
}

/// Load shard `index`'s state from `dir`. `Ok(None)` when the shard
/// never checkpointed (it will resume from its range start).
pub(crate) fn load_shard(dir: &Path, index: usize) -> Result<Option<ShardState>, ResumeError> {
    let path = dir.join(shard_file(index));
    if !path.exists() {
        return Ok(None);
    }
    let payload = read_frame(&path, KIND_SHARD)?;
    let state = ShardState::decode_fields(&mut Decoder::new(&payload))
        .map_err(|e| ResumeError::Corrupt(path.clone(), e))?;
    if state.index != index {
        return Err(ResumeError::Corrupt(
            path,
            CodecError::BadValue("shard index"),
        ));
    }
    Ok(Some(state))
}

/// Write `frame` to `path` atomically: a sibling temp file first, then a
/// rename over the target. A kill at any point leaves either the previous
/// file or the new one, never a torn frame. Public because the service
/// agent's checkpoint (`roam-service`) writes through the same plane.
pub fn write_atomic(path: &Path, frame: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(frame)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Read and unseal one checkpoint file, enforcing frame kind and version.
/// Public for the same reason as [`write_atomic`].
pub fn read_frame(path: &Path, kind: u16) -> Result<Vec<u8>, ResumeError> {
    let bytes = std::fs::read(path).map_err(|e| ResumeError::Io(path.to_path_buf(), e))?;
    let (frame, used) =
        Frame::parse(&bytes).map_err(|e| ResumeError::Corrupt(path.to_path_buf(), e))?;
    if used != bytes.len() {
        return Err(ResumeError::Corrupt(
            path.to_path_buf(),
            CodecError::BadValue("trailing bytes"),
        ));
    }
    if frame.version != CKPT_VERSION {
        return Err(ResumeError::VersionMismatch {
            found: frame.version,
            supported: CKPT_VERSION,
        });
    }
    if frame.kind != kind {
        return Err(ResumeError::Corrupt(
            path.to_path_buf(),
            CodecError::BadValue("frame kind"),
        ));
    }
    Ok(frame.payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest {
            seed: 42,
            fingerprint: 0xDEAD_BEEF_F00D_CAFE,
            shards: 4,
            every: 120_000,
            config: FleetConfig {
                users: 100_000,
                shards: 4,
                days: 45,
                sample: 8,
                mix: SessionMix::new(3, 2, 1),
            },
            telemetry: TelemetryMode::Summary,
            faults: FaultSpec::heavy(),
        }
    }

    #[test]
    fn manifest_round_trips_through_its_frame() {
        let m = manifest();
        let frame = m.to_frame();
        let (parsed, used) = Frame::parse(&frame).expect("sealed frame parses");
        assert_eq!(used, frame.len());
        assert_eq!(parsed.kind, KIND_MANIFEST);
        assert_eq!(parsed.version, CKPT_VERSION);
        assert_eq!(Manifest::decode(parsed.payload).expect("decodes"), m);
    }

    #[test]
    fn shard_state_round_trips() {
        let state = ShardState {
            index: 2,
            next_uid: 51_200,
            report: FleetReport::new(8),
            telemetry: TelemetrySnapshot::default(),
        };
        let frame = state.to_frame();
        let (parsed, _) = Frame::parse(&frame).expect("sealed frame parses");
        assert_eq!(parsed.kind, KIND_SHARD);
        let back = ShardState::decode_fields(&mut Decoder::new(parsed.payload)).expect("decodes");
        assert_eq!(back.index, 2);
        assert_eq!(back.next_uid, 51_200);
        assert_eq!(back.report, state.report);
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = manifest();
        let fp = |m: &Manifest| run_fingerprint(m.seed, &m.config, m.telemetry, &m.faults);
        let reference = fp(&base);
        assert_eq!(fp(&base), reference, "fingerprint is deterministic");
        let mut other_seed = base.clone();
        other_seed.seed = 43;
        assert_ne!(fp(&other_seed), reference);
        let mut other_days = base.clone();
        other_days.config.days = 46;
        assert_ne!(fp(&other_days), reference);
        let mut other_faults = base.clone();
        other_faults.faults = FaultSpec::off();
        assert_ne!(fp(&other_faults), reference);
        let mut other_telemetry = base.clone();
        other_telemetry.telemetry = TelemetryMode::Off;
        assert_ne!(fp(&other_telemetry), reference);
    }

    #[test]
    fn atomic_write_replaces_and_read_enforces_kind_and_version() {
        let dir = std::env::temp_dir().join(format!("roam-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(MANIFEST_FILE);
        write_atomic(&path, &manifest().to_frame()).expect("write");
        let payload = read_frame(&path, KIND_MANIFEST).expect("read back");
        assert_eq!(Manifest::decode(&payload).expect("decode"), manifest());
        // Wrong expected kind → corrupt, not a decode attempt.
        assert!(matches!(
            read_frame(&path, KIND_SHARD),
            Err(ResumeError::Corrupt(_, CodecError::BadValue("frame kind")))
        ));
        // A frame sealed with a future version → VersionMismatch.
        let future = Encoder::new().into_frame(KIND_MANIFEST, CKPT_VERSION + 1);
        write_atomic(&path, &future).expect("write future");
        assert!(matches!(
            read_frame(&path, KIND_MANIFEST),
            Err(ResumeError::VersionMismatch { found, supported })
                if found == CKPT_VERSION + 1 && supported == CKPT_VERSION
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
