//! Fleet session records and their dataset export.
//!
//! The fleet plane aggregates by default — sketches, counters, a
//! journey reservoir — so a million-user run stays O(shards × sketch).
//! A caller holding a [`SharedSink`](roam_measure::SharedSink) can
//! additionally ask the runner ([`FleetRunner::sink`]) to stream one
//! [`Dataset::Sessions`] row per measurement session: the same
//! sink-based export surface the campaign plane uses, fed from the
//! shard loop instead of record containers.
//!
//! [`SessionRecord`] is the flattened observable — the endpoint's
//! context tag, what the session did, the metric it produced (at most
//! one of `rtt_ms` / `lookup_ms` / `mb` is set) and how it ended.
//! [`SessionRows`] (a borrowed batch) implements `Exporter`, mapping onto the
//! [`Dataset::Sessions`] schema, so every [`DataSink`] (CSV string,
//! [`MemorySink`](roam_measure::MemorySink),
//! [`ColumnarSink`](roam_measure::ColumnarSink)) renders fleet
//! sessions with the exact semantics the campaign datasets get:
//! quote-on-demand country tags, fixed-precision floats, empty/null
//! metric fields on failed sessions.
//!
//! [`FleetRunner::sink`]: crate::FleetRunner::sink

use roam_measure::campaign::RecordTag;
use roam_measure::{status_code, tag_cells, CellValue, DataSink, Dataset, Exporter, MeasureStatus};

/// What a fleet session did, in the `kind` column's enum-code order
/// (`["rtt", "dns", "transfer"]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// One RTT probe to the country's nearest Google target.
    Rtt,
    /// One resolver lookup through the endpoint's resolver plan.
    Dns,
    /// One sized data transfer (the drawn megabytes are the observable).
    Transfer,
}

impl SessionKind {
    /// Enum code under the schema's `kind` column.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            SessionKind::Rtt => 0,
            SessionKind::Dns => 1,
            SessionKind::Transfer => 2,
        }
    }
}

/// One fleet measurement session, flattened for export. Failed
/// sessions keep their tag and kind but carry no metric — the sink
/// renders those fields empty (CSV) or null (columnar), exactly like
/// a failed campaign record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionRecord {
    /// Context of the endpoint the session ran on.
    pub tag: RecordTag,
    /// What the session did.
    pub kind: SessionKind,
    /// RTT sample, ms (`Rtt` sessions that delivered).
    pub rtt_ms: Option<f64>,
    /// Lookup time, ms (`Dns` sessions that delivered).
    pub lookup_ms: Option<f64>,
    /// Transfer size, MB (`Transfer` sessions that delivered).
    pub mb: Option<f64>,
    /// How the session ended.
    pub status: MeasureStatus,
}

/// A borrowed batch of session records, viewed through the [`Exporter`]
/// surface (the orphan rule keeps the impl off `[SessionRecord]`
/// itself — `Exporter` lives in `roam-measure`).
#[derive(Debug, Clone, Copy)]
pub struct SessionRows<'a>(pub &'a [SessionRecord]);

impl Exporter for SessionRows<'_> {
    fn datasets(&self) -> &'static [Dataset] {
        &[Dataset::Sessions]
    }

    fn export_rows(&self, ds: Dataset, sink: &mut dyn DataSink) {
        if ds != Dataset::Sessions {
            return;
        }
        for r in self.0 {
            let [c, s, a, t] = tag_cells(&r.tag);
            sink.row(
                Dataset::Sessions,
                &[
                    c,
                    s,
                    a,
                    t,
                    CellValue::Code(r.kind.code()),
                    CellValue::F64(r.rtt_ms),
                    CellValue::F64(r.lookup_ms),
                    CellValue::F64(r.mb),
                    CellValue::Code(status_code(r.status)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_cellular::{Rat, SimType};
    use roam_geo::Country;
    use roam_ipx::RoamingArch;

    fn record(kind: SessionKind) -> SessionRecord {
        SessionRecord {
            tag: RecordTag {
                country: Country::FRA,
                sim_type: SimType::Esim,
                arch: RoamingArch::HomeRouted,
                rat: Rat::Lte,
            },
            kind,
            rtt_ms: matches!(kind, SessionKind::Rtt).then_some(42.5),
            lookup_ms: matches!(kind, SessionKind::Dns).then_some(12.25),
            mb: matches!(kind, SessionKind::Transfer).then_some(100.0),
            status: MeasureStatus::Ok,
        }
    }

    #[test]
    fn session_rows_render_under_the_sessions_schema() {
        let records = vec![
            record(SessionKind::Rtt),
            record(SessionKind::Dns),
            record(SessionKind::Transfer),
            SessionRecord {
                status: MeasureStatus::Timeout,
                rtt_ms: None,
                ..record(SessionKind::Rtt)
            },
        ];
        let csv = SessionRows(&records).export(Dataset::Sessions);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], Dataset::Sessions.header());
        assert_eq!(lines[1], "FRA,esim,HR,4G,rtt,42.500,,,ok");
        assert_eq!(lines[2], "FRA,esim,HR,4G,dns,,12.250,,ok");
        assert_eq!(lines[3], "FRA,esim,HR,4G,transfer,,,100.000,ok");
        assert_eq!(lines[4], "FRA,esim,HR,4G,rtt,,,,timeout");
    }

    #[test]
    fn kinds_match_the_schema_enum_order() {
        let schema = Dataset::Sessions.schema();
        let col = schema.col("kind").expect("kind column");
        let roam_columnar::ColKind::Enum(labels) = &schema.fields()[col].kind else {
            panic!("kind must be an enum column");
        };
        for (kind, label) in [
            (SessionKind::Rtt, "rtt"),
            (SessionKind::Dns, "dns"),
            (SessionKind::Transfer, "transfer"),
        ] {
            assert_eq!(labels[kind.code() as usize], label);
        }
    }

    #[test]
    fn other_datasets_emit_nothing() {
        let records = vec![record(SessionKind::Rtt)];
        assert_eq!(
            SessionRows(&records).export(Dataset::Voip),
            format!("{}\n", Dataset::Voip.header())
        );
    }
}
