//! PGW providers: breakout-gateway operators and their site-selection
//! policies.

use rand::rngs::SmallRng;
use rand::Rng;
use roam_cellular::MnoId;
use roam_geo::City;
use roam_netsim::{Asn, Ipv4Net};

/// Index of a provider in a [`ProviderDirectory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PgwProviderId(pub u32);

/// One breakout location of a provider: a city and the public prefix its
/// CG-NAT assigns addresses from. Table 2's "PGW Country" column is the
/// country of this city.
#[derive(Debug, Clone)]
pub struct PgwSite {
    /// Where the PGW (and its CG-NAT, ~co-located per §4.3.2: "an average
    /// of 8.06 ms" apart) physically sits.
    pub city: City,
    /// The public prefix breakout addresses are drawn from.
    pub prefix: Ipv4Net,
    /// Number of distinct breakout addresses in use at the site — the
    /// paper counts 4 for Singtel, 6 for OVH, 4 for Packet Host, 15 for
    /// dtac, 16/35 for the Korean operators (§4.3.2).
    pub pool: u64,
}

impl PgwSite {
    /// A site with a sanity-checked pool size.
    #[must_use]
    pub fn new(city: City, prefix: Ipv4Net, pool: u64) -> Self {
        assert!(
            pool >= 1 && pool <= prefix.size().saturating_sub(2),
            "pool {pool} does not fit prefix {prefix}"
        );
        PgwSite { city, prefix, pool }
    }
}

/// How a provider assigns sessions to its sites.
#[derive(Debug, Clone)]
pub enum PgwSelection {
    /// Every session lands on one fixed site (index into `sites`). The
    /// paper's Polkomtel eSIMs always broke out in Ashburn.
    Fixed(usize),
    /// The site is chosen per b-MNO: OVH "appears to assign PGWs for
    /// roaming traffic based on the b-MNO" (§4.3.2). Pairs of
    /// (b-MNO, site index); b-MNOs not listed fall back to site 0.
    ByBmno(Vec<(MnoId, usize)>),
    /// Sessions are spread evenly across sites regardless of b-MNO —
    /// Packet Host's observed load balancing (§4.3.2).
    LoadBalanced,
}

/// How breakout addresses are assigned out of a site's pool.
///
/// §4.3.2 observes both styles: "OVH SAS appears to assign PGWs for
/// roaming traffic based on the b-MNO" while "PGW IP addresses involving
/// Packet Host were evenly distributed across different eSIMs, regardless
/// of the b-MNO".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpAssignment {
    /// Each b-MNO is pinned to its own slot of the pool (OVH style).
    ByBmno,
    /// Sessions draw uniformly from the pool (Packet Host style).
    Pooled,
}

/// A PGW provider.
#[derive(Debug, Clone)]
pub struct PgwProvider {
    /// Organisation name, as WHOIS reports it.
    pub name: String,
    /// The AS its breakout prefixes are announced from.
    pub asn: Asn,
    /// Breakout sites.
    pub sites: Vec<PgwSite>,
    /// Session-to-site policy.
    pub selection: PgwSelection,
    /// Address-pool policy within a site.
    pub ip_assignment: IpAssignment,
    /// How many private (RFC1918) hops a traceroute sees inside this
    /// provider's core before the CG-NAT, as `(min, max)` — OVH exposes 3,
    /// Packet Host 6–7 ("suggests potential load balancing within Packet
    /// Host's network core", §4.3.2).
    pub private_hops: (u8, u8),
    /// Whether the CG-NAT answers ICMP. Some do not, producing the
    /// silent-hop traceroutes of §4.3.3.
    pub cgnat_icmp_responds: bool,
}

impl PgwProvider {
    /// Pick the site for a new session of `bmno`.
    pub fn select_site(&self, bmno: MnoId, rng: &mut SmallRng) -> usize {
        assert!(
            !self.sites.is_empty(),
            "provider {} has no sites",
            self.name
        );
        match &self.selection {
            PgwSelection::Fixed(i) => {
                assert!(*i < self.sites.len());
                *i
            }
            PgwSelection::ByBmno(map) => {
                let i = map
                    .iter()
                    .find(|(m, _)| *m == bmno)
                    .map(|(_, i)| *i)
                    .unwrap_or(0);
                assert!(
                    i < self.sites.len(),
                    "ByBmno maps {bmno:?} to site {i} but {} has {} sites",
                    self.name,
                    self.sites.len()
                );
                i
            }
            PgwSelection::LoadBalanced => rng.gen_range(0..self.sites.len()),
        }
    }

    /// Draw the private-path depth for a new session.
    pub fn sample_private_hops(&self, rng: &mut SmallRng) -> u8 {
        let (lo, hi) = self.private_hops;
        assert!(lo >= 1 && hi >= lo, "bad private hop bounds ({lo},{hi})");
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..=hi)
        }
    }
}

/// Directory of PGW providers in a scenario.
#[derive(Debug, Default)]
pub struct ProviderDirectory {
    providers: Vec<PgwProvider>,
}

impl ProviderDirectory {
    /// An empty directory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a provider.
    pub fn add(&mut self, provider: PgwProvider) -> PgwProviderId {
        assert!(
            !provider.sites.is_empty(),
            "provider needs at least one site"
        );
        let id = PgwProviderId(self.providers.len() as u32);
        self.providers.push(provider);
        id
    }

    /// Provider by id.
    #[must_use]
    pub fn get(&self, id: PgwProviderId) -> &PgwProvider {
        &self.providers[id.0 as usize]
    }

    /// Find by ASN (the reverse lookup the tomography performs).
    #[must_use]
    pub fn find_by_asn(&self, asn: Asn) -> Option<PgwProviderId> {
        self.providers
            .iter()
            .position(|p| p.asn == asn)
            .map(|i| PgwProviderId(i as u32))
    }

    /// Iterate `(id, provider)`.
    pub fn iter(&self) -> impl Iterator<Item = (PgwProviderId, &PgwProvider)> {
        self.providers
            .iter()
            .enumerate()
            .map(|(i, p)| (PgwProviderId(i as u32), p))
    }

    /// Number of providers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// Is the directory empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use roam_netsim::registry::well_known;

    fn packet_host() -> PgwProvider {
        PgwProvider {
            name: "Packet Host".into(),
            asn: well_known::PACKET_HOST,
            sites: vec![
                PgwSite::new(
                    City::Amsterdam,
                    Ipv4Net::parse("147.75.80.0/22").unwrap(),
                    4,
                ),
                PgwSite::new(City::Ashburn, Ipv4Net::parse("147.28.128.0/22").unwrap(), 4),
            ],
            selection: PgwSelection::LoadBalanced,
            ip_assignment: IpAssignment::Pooled,
            private_hops: (6, 7),
            cgnat_icmp_responds: true,
        }
    }

    #[test]
    fn fixed_selection_always_returns_the_site() {
        let mut p = packet_host();
        p.selection = PgwSelection::Fixed(1);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(p.select_site(MnoId(3), &mut rng), 1);
        }
    }

    #[test]
    fn by_bmno_selection_maps_and_falls_back() {
        let mut p = packet_host();
        p.selection = PgwSelection::ByBmno(vec![(MnoId(7), 1)]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(p.select_site(MnoId(7), &mut rng), 1);
        assert_eq!(
            p.select_site(MnoId(9), &mut rng),
            0,
            "unlisted b-MNO falls back"
        );
    }

    #[test]
    fn load_balancing_uses_all_sites() {
        let p = packet_host();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [0u32; 2];
        for _ in 0..200 {
            seen[p.select_site(MnoId(0), &mut rng)] += 1;
        }
        assert!(seen[0] > 50 && seen[1] > 50, "both sites used: {seen:?}");
    }

    #[test]
    fn private_hop_sampling_stays_in_bounds() {
        let p = packet_host();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen6 = false;
        let mut seen7 = false;
        for _ in 0..100 {
            match p.sample_private_hops(&mut rng) {
                6 => seen6 = true,
                7 => seen7 = true,
                other => panic!("out of bounds: {other}"),
            }
        }
        assert!(seen6 && seen7, "both depths occur (load-balanced core)");
    }

    #[test]
    fn directory_lookup_by_asn() {
        let mut dir = ProviderDirectory::new();
        let id = dir.add(packet_host());
        assert_eq!(dir.find_by_asn(well_known::PACKET_HOST), Some(id));
        assert_eq!(dir.find_by_asn(well_known::OVH), None);
        assert_eq!(dir.get(id).name, "Packet Host");
        assert_eq!(dir.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn provider_without_sites_rejected() {
        let mut p = packet_host();
        p.sites.clear();
        ProviderDirectory::new().add(p);
    }
}
