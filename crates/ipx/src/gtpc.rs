//! GTP-C v2 (3GPP TS 29.274) — the control-plane subset that sets sessions
//! up.
//!
//! The data plane (GTP-U, in `roam-netsim`) carries the user's packets; this
//! module carries the *signalling* that creates the tunnel in the first
//! place: the SGW's **Create Session Request** (IMSI + sender F-TEID +
//! requested APN) and the PGW's **Create Session Response** (cause +
//! assigned F-TEID + the UE's public PDN address). Two things in the paper
//! rest on this machinery existing:
//!
//! * the breakout address the whole tomography keys on is *assigned in this
//!   exchange* — the PDN Address Allocation IE below is "the device's
//!   public IP";
//! * the v-MNO-visibility finding (Fig. 5) that aggregator users generate
//!   *more* signalling than natives: every roaming attach runs this
//!   handshake across the IPX, and [`signalling_bytes_per_attach`] is what
//!   the synthetic core records charge for it.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use roam_cellular::Imsi;
use roam_netsim::wire::WireError;
use std::net::Ipv4Addr;

/// GTP-C v2 message types used here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GtpcMessageType {
    /// Create Session Request (type 32).
    CreateSessionRequest,
    /// Create Session Response (type 33).
    CreateSessionResponse,
    /// Delete Session Request (type 36).
    DeleteSessionRequest,
    /// Delete Session Response (type 37).
    DeleteSessionResponse,
}

impl GtpcMessageType {
    fn code(self) -> u8 {
        match self {
            GtpcMessageType::CreateSessionRequest => 32,
            GtpcMessageType::CreateSessionResponse => 33,
            GtpcMessageType::DeleteSessionRequest => 36,
            GtpcMessageType::DeleteSessionResponse => 37,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            32 => GtpcMessageType::CreateSessionRequest,
            33 => GtpcMessageType::CreateSessionResponse,
            36 => GtpcMessageType::DeleteSessionRequest,
            37 => GtpcMessageType::DeleteSessionResponse,
            _ => return None,
        })
    }
}

/// Cause values (TS 29.274 §8.4) in the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Request accepted (16).
    Accepted,
    /// No resources available (73) — e.g. the breakout pool is exhausted.
    NoResources,
    /// APN access denied (93) — no roaming agreement covers the user.
    AccessDenied,
}

impl Cause {
    fn code(self) -> u8 {
        match self {
            Cause::Accepted => 16,
            Cause::NoResources => 73,
            Cause::AccessDenied => 93,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            16 => Cause::Accepted,
            73 => Cause::NoResources,
            93 => Cause::AccessDenied,
            _ => return None,
        })
    }
}

/// Information elements we encode (a practical subset; type codes from
/// TS 29.274 §8.1).
const IE_IMSI: u8 = 1;
const IE_CAUSE: u8 = 2;
const IE_APN: u8 = 71;
const IE_PAA: u8 = 79; // PDN Address Allocation
const IE_FTEID: u8 = 87;

/// A GTP-C message as the simulator speaks it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GtpcMessage {
    /// Message type.
    pub msg_type: GtpcMessageType,
    /// Sequence number (request/response matching).
    pub sequence: u32,
    /// Subscriber identity (requests).
    pub imsi: Option<Imsi>,
    /// Access point name, e.g. `"internet"` (requests).
    pub apn: Option<String>,
    /// Sender's fully-qualified tunnel endpoint id.
    pub fteid: Option<(u32, Ipv4Addr)>,
    /// Outcome (responses).
    pub cause: Option<Cause>,
    /// Assigned PDN (public) address (accepted responses).
    pub paa: Option<Ipv4Addr>,
}

impl GtpcMessage {
    /// A Create Session Request from an SGW.
    #[must_use]
    pub fn create_session_request(
        sequence: u32,
        imsi: Imsi,
        apn: &str,
        sgw_teid: u32,
        sgw_addr: Ipv4Addr,
    ) -> Self {
        GtpcMessage {
            msg_type: GtpcMessageType::CreateSessionRequest,
            sequence,
            imsi: Some(imsi),
            apn: Some(apn.to_string()),
            fteid: Some((sgw_teid, sgw_addr)),
            cause: None,
            paa: None,
        }
    }

    /// The accepting Create Session Response from a PGW.
    #[must_use]
    pub fn accept(
        request: &GtpcMessage,
        pgw_teid: u32,
        pgw_addr: Ipv4Addr,
        public_ip: Ipv4Addr,
    ) -> Self {
        GtpcMessage {
            msg_type: GtpcMessageType::CreateSessionResponse,
            sequence: request.sequence,
            imsi: None,
            apn: None,
            fteid: Some((pgw_teid, pgw_addr)),
            cause: Some(Cause::Accepted),
            paa: Some(public_ip),
        }
    }

    /// A rejecting Create Session Response.
    #[must_use]
    pub fn reject(request: &GtpcMessage, cause: Cause) -> Self {
        assert_ne!(cause, Cause::Accepted, "rejection needs a failure cause");
        GtpcMessage {
            msg_type: GtpcMessageType::CreateSessionResponse,
            sequence: request.sequence,
            imsi: None,
            apn: None,
            fteid: None,
            cause: Some(cause),
            paa: None,
        }
    }

    /// Encode: v2 header (version 2, no TEID flag for simplicity) + IEs in
    /// TLV form.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        if let Some(imsi) = self.imsi {
            // 15 TBCD digits preceded by the MNC digit count: raw IMSI
            // digits are ambiguous between 2- and 3-digit MNC plans, and
            // unlike a real HSS we carry the plan inline rather than
            // keeping a numbering-plan database.
            let digits = imsi.to_string();
            let mut v = Vec::with_capacity(16);
            v.push(
                if digits.len() == 15 && imsi.plmn().to_string().len() == 7 {
                    3
                } else {
                    2
                },
            );
            v.extend_from_slice(digits.as_bytes());
            put_ie(&mut body, IE_IMSI, &v);
        }
        if let Some(cause) = self.cause {
            put_ie(&mut body, IE_CAUSE, &[cause.code()]);
        }
        if let Some(apn) = &self.apn {
            put_ie(&mut body, IE_APN, apn.as_bytes());
        }
        if let Some(paa) = self.paa {
            put_ie(&mut body, IE_PAA, &paa.octets());
        }
        if let Some((teid, addr)) = self.fteid {
            let mut v = Vec::with_capacity(8);
            v.extend_from_slice(&teid.to_be_bytes());
            v.extend_from_slice(&addr.octets());
            put_ie(&mut body, IE_FTEID, &v);
        }
        assert!(
            self.sequence < (1 << 24),
            "GTP-C sequence numbers are 3 bytes"
        );
        let mut buf = BytesMut::with_capacity(8 + body.len());
        buf.put_u8(0x40); // version 2, P=0, T=0
        buf.put_u8(self.msg_type.code());
        buf.put_u16((4 + body.len()) as u16); // length past the 4th byte
        buf.put_u32(self.sequence << 8); // sequence (3 bytes) + spare
        buf.put_slice(&body);
        buf.freeze()
    }

    /// Decode a message previously produced by [`GtpcMessage::encode`].
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < 8 {
            return Err(WireError::Truncated);
        }
        let mut b = data;
        let flags = b.get_u8();
        if flags >> 5 != 2 {
            return Err(WireError::BadField("gtpc version"));
        }
        let msg_type = GtpcMessageType::from_code(b.get_u8())
            .ok_or(WireError::BadField("gtpc message type"))?;
        let len = b.get_u16() as usize;
        // The v2 length field counts everything past the 4th byte, so it can
        // never be below the 4-byte sequence block of a valid message.
        if len < 4 {
            return Err(WireError::BadField("gtpc length"));
        }
        if data.len() < 4 + len {
            return Err(WireError::Truncated);
        }
        let sequence = b.get_u32() >> 8;
        let mut msg = GtpcMessage {
            msg_type,
            sequence,
            imsi: None,
            apn: None,
            fteid: None,
            cause: None,
            paa: None,
        };
        let mut rest = &data[8..4 + len];
        while !rest.is_empty() {
            if rest.len() < 4 {
                return Err(WireError::Truncated);
            }
            let ty = rest.get_u8();
            let ie_len = rest.get_u16() as usize;
            let _spare = rest.get_u8();
            if rest.len() < ie_len {
                return Err(WireError::Truncated);
            }
            let (val, tail) = rest.split_at(ie_len);
            rest = tail;
            match ty {
                IE_IMSI => {
                    let (plan, digits) = val.split_first().ok_or(WireError::Truncated)?;
                    if !matches!(plan, 2 | 3) {
                        return Err(WireError::BadField("imsi mnc plan"));
                    }
                    let s = std::str::from_utf8(digits)
                        .map_err(|_| WireError::BadField("imsi utf8"))?;
                    msg.imsi = Imsi::parse(s, *plan);
                    if msg.imsi.is_none() {
                        return Err(WireError::BadField("imsi digits"));
                    }
                }
                IE_CAUSE => {
                    let code = *val.first().ok_or(WireError::Truncated)?;
                    msg.cause = Some(Cause::from_code(code).ok_or(WireError::BadField("cause"))?);
                }
                IE_APN => {
                    msg.apn = Some(
                        std::str::from_utf8(val)
                            .map_err(|_| WireError::BadField("apn utf8"))?
                            .to_string(),
                    );
                }
                IE_PAA => {
                    if val.len() != 4 {
                        return Err(WireError::BadField("paa length"));
                    }
                    msg.paa = Some(Ipv4Addr::new(val[0], val[1], val[2], val[3]));
                }
                IE_FTEID => {
                    if val.len() != 8 {
                        return Err(WireError::BadField("fteid length"));
                    }
                    let teid = u32::from_be_bytes([val[0], val[1], val[2], val[3]]);
                    let addr = Ipv4Addr::new(val[4], val[5], val[6], val[7]);
                    msg.fteid = Some((teid, addr));
                }
                _ => {} // unknown IEs are skipped, as the spec requires
            }
        }
        Ok(msg)
    }
}

fn put_ie(buf: &mut BytesMut, ty: u8, val: &[u8]) {
    buf.put_u8(ty);
    buf.put_u16(val.len() as u16);
    buf.put_u8(0); // spare/instance
    buf.put_slice(val);
}

/// Control-plane bytes one roaming attach costs (request + response at the
/// observed encoded sizes, plus the echo/keepalive budget per session) —
/// the quantity the Fig. 5 signalling model charges per attach.
#[must_use]
pub fn signalling_bytes_per_attach(
    imsi: Imsi,
    sgw: Ipv4Addr,
    pgw: Ipv4Addr,
    public_ip: Ipv4Addr,
) -> usize {
    let req = GtpcMessage::create_session_request(1, imsi, "internet", 0x10, sgw);
    let resp = GtpcMessage::accept(&req, 0x20, pgw, public_ip);
    req.encode().len() + resp.encode().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_cellular::Plmn;

    fn imsi() -> Imsi {
        Imsi::new(Plmn::new(260, 6, 2), 7_700_000_042)
    }

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn create_session_round_trip() {
        let req = GtpcMessage::create_session_request(
            0xABCDE,
            imsi(),
            "internet",
            0x1234,
            addr("10.9.0.3"),
        );
        let back = GtpcMessage::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.sequence, 0xABCDE);
        assert_eq!(back.imsi, Some(imsi()));
        assert_eq!(back.apn.as_deref(), Some("internet"));
        assert_eq!(back.fteid, Some((0x1234, addr("10.9.0.3"))));
    }

    #[test]
    fn accept_response_assigns_the_public_address() {
        let req = GtpcMessage::create_session_request(7, imsi(), "internet", 1, addr("10.0.0.3"));
        let resp = GtpcMessage::accept(&req, 0x99, addr("202.166.126.1"), addr("202.166.126.9"));
        let back = GtpcMessage::decode(&resp.encode()).unwrap();
        assert_eq!(back.sequence, 7, "responses echo the request sequence");
        assert_eq!(back.cause, Some(Cause::Accepted));
        assert_eq!(
            back.paa,
            Some(addr("202.166.126.9")),
            "the PAA is the IP the tomography will classify"
        );
    }

    #[test]
    fn rejection_round_trip() {
        let req = GtpcMessage::create_session_request(9, imsi(), "internet", 1, addr("10.0.0.3"));
        for cause in [Cause::NoResources, Cause::AccessDenied] {
            let resp = GtpcMessage::reject(&req, cause);
            let back = GtpcMessage::decode(&resp.encode()).unwrap();
            assert_eq!(back.cause, Some(cause));
            assert!(back.paa.is_none(), "no address on rejection");
        }
    }

    #[test]
    #[should_panic(expected = "failure cause")]
    fn accepting_via_reject_is_a_bug() {
        let req = GtpcMessage::create_session_request(9, imsi(), "internet", 1, addr("10.0.0.3"));
        let _ = GtpcMessage::reject(&req, Cause::Accepted);
    }

    #[test]
    fn truncation_and_version_errors() {
        let req = GtpcMessage::create_session_request(3, imsi(), "internet", 1, addr("10.0.0.3"));
        let enc = req.encode();
        for cut in [0, 4, 7, enc.len() - 1] {
            assert!(GtpcMessage::decode(&enc[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = enc.to_vec();
        bad[0] = 0x30; // version 1
        assert!(GtpcMessage::decode(&bad).is_err());
    }

    #[test]
    fn three_digit_mnc_imsi_round_trips() {
        // Telna-style PLMN (310-240) must survive encode/decode intact.
        let imsi3 = Imsi::new(Plmn::new(310, 240, 3), 123_456_789);
        let req = GtpcMessage::create_session_request(5, imsi3, "internet", 9, addr("10.0.0.3"));
        let back = GtpcMessage::decode(&req.encode()).unwrap();
        assert_eq!(back.imsi, Some(imsi3));
    }

    #[test]
    #[should_panic(expected = "3 bytes")]
    fn oversized_sequence_is_a_programming_error() {
        let req =
            GtpcMessage::create_session_request(1 << 24, imsi(), "internet", 1, addr("10.0.0.3"));
        let _ = req.encode();
    }

    #[test]
    fn undersized_length_field_is_rejected_not_panicking() {
        // A corrupted header whose length field is below the 4-byte
        // sequence block must error cleanly (a naive slice would panic).
        for len in 0u16..4 {
            let mut bad = vec![0x40, 32];
            bad.extend_from_slice(&len.to_be_bytes());
            bad.extend_from_slice(&[0, 0, 0, 0]);
            assert!(GtpcMessage::decode(&bad).is_err(), "len={len}");
        }
    }

    #[test]
    fn signalling_budget_is_plausible() {
        let bytes = signalling_bytes_per_attach(
            imsi(),
            addr("10.0.0.3"),
            addr("147.75.80.1"),
            addr("147.75.80.3"),
        );
        // Two small control messages: tens of bytes, not kilobytes.
        assert!((40..200).contains(&bytes), "got {bytes}");
    }
}
