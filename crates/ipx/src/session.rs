//! GTP session establishment: building the attachment subgraph.
//!
//! [`attach`] assembles, inside a [`roam_netsim::Network`], the data path of
//! one SIM/eSIM attachment:
//!
//! ```text
//! UE ──radio── RAN ──metro── SGW ══GTP tunnel══ PGW core (h private hops)
//!                                               └─ CG-NAT (public breakout IP)
//! ```
//!
//! * The **GTP tunnel** is a single virtual link (tunnels are opaque to
//!   TTL) whose latency is the SGW↔PGW geodesic scaled by the *peering
//!   quality* between the v-MNO and the tunnel carrier — the quantity the
//!   paper concludes dominates breakout latency (§4.3 takeaway). The
//!   establishment handshake round-trips a GTP-U encapsulated probe so the
//!   TEID plumbing is exercised on real bytes.
//! * The **PGW core** exposes the provider-specific number of RFC1918 hops
//!   a traceroute records before the first public address (§4.3.2: 3 for
//!   OVH, 6–7 for Packet Host).
//! * The **CG-NAT** carries the public address drawn from the breakout
//!   site's pool — the "PGW IP address" of the paper's analysis, and the
//!   address every measurement service sees.

use crate::breakout::{DnsMode, RoamingArch};
use crate::gtpc::GtpcMessage;
use crate::provider::{IpAssignment, PgwProviderId, ProviderDirectory};
use rand::rngs::SmallRng;
use rand::Rng;
use roam_cellular::{radio_latency_ms, Cqi, Imsi, MnoDirectory, MnoId, Rat};
use roam_geo::City;
use roam_netsim::link::{LatencyModel, LinkClass};
use roam_netsim::wire::GtpuHeader;
use roam_netsim::{Network, NodeId, NodeKind, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Why a session could not be established. Scenario-construction bugs and
/// control-plane codec failures surface as typed errors instead of
/// panics, so a degraded campaign can record the failure and move on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttachError {
    /// The private 10.0.0.0/8 session space (65 536 /24s) is used up.
    SessionSpaceExhausted {
        /// The session id that did not fit.
        session_id: u32,
    },
    /// A breakout site's address pool does not fit inside its prefix.
    MalformedSitePool {
        /// The provider whose site is misconfigured.
        provider: String,
    },
    /// The Create Session exchange produced inconsistent GTP messages.
    ControlPlane(&'static str),
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::SessionSpaceExhausted { session_id } => {
                write!(f, "session id space exhausted at {session_id}")
            }
            AttachError::MalformedSitePool { provider } => {
                write!(f, "{provider}: site pool does not fit its prefix")
            }
            AttachError::ControlPlane(what) => write!(f, "control plane: {what}"),
        }
    }
}

impl std::error::Error for AttachError {}

/// Peering quality between a v-MNO and the organisations carrying its
/// roaming tunnels, expressed as the circuitousness multiplier applied to
/// the SGW↔PGW geodesic. ~1.4 is a tight, well-peered route; ≥4 is the
/// kind of hairpin-through-another-continent path that gives HR eSIMs in
/// Pakistan their 389 ms medians (§5.1).
#[derive(Debug, Clone)]
pub struct PeeringQuality {
    map: HashMap<(MnoId, PgwProviderId), f64>,
    default: f64,
}

impl Default for PeeringQuality {
    fn default() -> Self {
        PeeringQuality {
            map: HashMap::new(),
            default: 1.9,
        }
    }
}

impl PeeringQuality {
    /// A quality table with the given default circuitousness.
    #[must_use]
    pub fn with_default(default: f64) -> Self {
        assert!(
            default >= 1.0,
            "circuitousness cannot beat the great circle"
        );
        PeeringQuality {
            map: HashMap::new(),
            default,
        }
    }

    /// Record the quality of the (v-MNO, carrier) pair.
    pub fn set(&mut self, vmno: MnoId, provider: PgwProviderId, circuitousness: f64) {
        assert!(circuitousness >= 1.0);
        self.map.insert((vmno, provider), circuitousness);
    }

    /// Quality for a pair, falling back to the default.
    #[must_use]
    pub fn get(&self, vmno: MnoId, provider: PgwProviderId) -> f64 {
        *self.map.get(&(vmno, provider)).unwrap_or(&self.default)
    }
}

/// Everything [`attach`] needs to know about the session being set up.
#[derive(Debug, Clone)]
pub struct AttachParams {
    /// Monotonic per-network session counter — used to carve a private
    /// /24 for the session out of 10.0.0.0/8 (supports 65 536 sessions).
    pub session_id: u32,
    /// Where the subscriber (and, approximately, the v-MNO SGW) is.
    pub ue_city: City,
    /// The operator whose RAN the UE attaches to.
    pub v_mno: MnoId,
    /// The operator that issued the profile.
    pub b_mno: MnoId,
    /// Resolved roaming architecture for this session.
    pub arch: RoamingArch,
    /// Resolved PGW provider (owner of the breakout gateway).
    pub provider: PgwProviderId,
    /// DNS behaviour of the session.
    pub dns: DnsMode,
    /// Radio access technology for the attachment.
    pub rat: Rat,
    /// Subscriber identity presented in the Create Session Request.
    pub imsi: Imsi,
}

/// A live attachment: the node handles and metadata the measurement layer
/// needs.
#[derive(Debug, Clone)]
pub struct Attachment {
    /// The measurement endpoint itself.
    pub ue: NodeId,
    /// First-hop RAN router (private).
    pub ran: NodeId,
    /// The v-MNO serving gateway (private).
    pub sgw: NodeId,
    /// The CG-NAT at the breakout site (owns the public address).
    pub cgnat: NodeId,
    /// The public breakout address — "the device's public IP".
    pub public_ip: Ipv4Addr,
    /// Architecture of the session.
    pub arch: RoamingArch,
    /// Breakout provider.
    pub provider: PgwProviderId,
    /// City the breakout site sits in.
    pub breakout_city: City,
    /// Great-circle SGW↔PGW distance, km (the Fig. 3 line lengths).
    pub tunnel_km: f64,
    /// DNS behaviour.
    pub dns: DnsMode,
    /// Tunnel endpoint identifier negotiated at attach.
    pub teid: u32,
    /// The serving operator.
    pub v_mno: MnoId,
    /// The issuing operator.
    pub b_mno: MnoId,
    /// RAT of the attachment.
    pub rat: Rat,
    /// Number of private hops a traceroute will record (RAN + SGW +
    /// provider core).
    pub private_hops: u8,
    /// Seed stamped on the session at attach, from which every measurement
    /// run on this attachment derives its per-flow RNG stream (see
    /// [`roam_netsim::engine::flow_seed`]). Keyed by session id, IMSI and
    /// UE city, so no two attachments — across shards or within one —
    /// share a stream.
    pub flow_stamp: u64,
}

/// Establish a session, building its subgraph inside `net`.
///
/// # Panics
/// Panics if `session_id` exceeds the private addressing capacity, or the
/// provider's site pool is malformed. These are scenario-construction bugs;
/// callers that want to degrade instead use [`try_attach`].
pub fn attach(
    net: &mut Network,
    providers: &ProviderDirectory,
    mnos: &MnoDirectory,
    peering: &PeeringQuality,
    params: &AttachParams,
    rng: &mut SmallRng,
) -> Attachment {
    match try_attach(net, providers, mnos, peering, params, rng) {
        Ok(att) => att,
        Err(e) => panic!("attach: {e}"),
    }
}

/// Fallible [`attach`]: the same subgraph construction, but addressing
/// exhaustion, malformed site pools and control-plane codec mismatches come
/// back as [`AttachError`] instead of panicking mid-campaign.
///
/// # Errors
/// Returns an [`AttachError`] when the session cannot be established.
pub fn try_attach(
    net: &mut Network,
    providers: &ProviderDirectory,
    mnos: &MnoDirectory,
    peering: &PeeringQuality,
    params: &AttachParams,
    rng: &mut SmallRng,
) -> Result<Attachment, AttachError> {
    let provider = providers.get(params.provider);
    let site_idx = provider.select_site(params.b_mno, rng);
    let site = &provider.sites[site_idx];
    let vmno = mnos.get(params.v_mno);

    // --- private addressing for this session -----------------------------
    let s = params.session_id;
    if s >= 65_536 {
        return Err(AttachError::SessionSpaceExhausted { session_id: s });
    }
    let priv_ip = |host: u8| Ipv4Addr::new(10, (s >> 8) as u8, (s & 0xFF) as u8, host);

    // --- UE, RAN, SGW on the visited side ---------------------------------
    let label = format!("s{}", s);
    let ue = net.add_node(
        &format!("{label}-ue"),
        NodeKind::Host,
        params.ue_city,
        priv_ip(2),
    );
    let ran = net.add_node(
        &format!("{label}-ran"),
        NodeKind::Router,
        params.ue_city,
        priv_ip(1),
    );
    let sgw = net.add_node(
        &format!("{label}-sgw"),
        NodeKind::Router,
        params.ue_city,
        priv_ip(3),
    );

    // Radio link: latency from the RAT at a typical good channel; per-test
    // channel variation is applied by the measurement layer on throughput.
    let radio = LatencyModel::fixed(
        radio_latency_ms(params.rat, Cqi::new(11)),
        match params.rat {
            Rat::Lte => 9.0,
            Rat::Nr5g => 4.0,
        },
    )
    // Rare outage-scale stalls (HARQ storms, cell handovers): the source of
    // the small >150 ms tail even physical SIMs show (§5.1: ~3%).
    .with_spikes(0.03, 280.0);
    net.link_with(ue, ran, LinkClass::RadioAccess, radio, vmno.access_loss);
    net.link_geo(ran, sgw, LinkClass::Metro);

    // --- the tunnel to the breakout site ----------------------------------
    let sgw_loc = params.ue_city.location();
    let pgw_loc = site.city.location();
    let tunnel_km = sgw_loc.distance_km(pgw_loc);
    let same_metro = tunnel_km < 150.0;
    let circuitousness = peering.get(params.v_mno, params.provider);

    // --- provider core: h private hops then the CG-NAT --------------------
    let core_hops = provider.sample_private_hops(rng);
    let mut prev = sgw;
    for hop in 0..core_hops {
        let node = net.add_node(
            &format!("{label}-{}-core{}", provider.name, hop),
            NodeKind::Router,
            site.city,
            priv_ip(10 + hop),
        );
        if hop == 0 {
            // The GTP tunnel itself: SGW to the first core router. One
            // virtual hop regardless of geographic length.
            let model = if same_metro {
                LatencyModel::from_geo(sgw_loc, pgw_loc, LinkClass::Metro)
            } else {
                LatencyModel::from_geo_with_circuitousness(
                    sgw_loc,
                    pgw_loc,
                    LinkClass::Tunnel,
                    circuitousness,
                )
            };
            net.link_with(prev, node, LinkClass::Tunnel, model, 0.0);
        } else {
            net.link_geo(prev, node, LinkClass::Metro);
        }
        prev = node;
    }

    // --- CG-NAT with a pooled public address -------------------------------
    let pool = site.pool;
    let slot = match provider.ip_assignment {
        // Per-b-MNO partitioning of the pool (OVH's behaviour, §4.3.2).
        IpAssignment::ByBmno => u64::from(params.b_mno.0) % pool,
        IpAssignment::Pooled => rng.gen_range(0..pool),
    };
    let public_ip = site
        .prefix
        .nth(1 + slot)
        .ok_or_else(|| AttachError::MalformedSitePool {
            provider: provider.name.clone(),
        })?;
    let cgnat = net.add_node(
        &format!("{label}-{}-cgnat", provider.name),
        NodeKind::CgNat,
        site.city,
        public_ip,
    );
    net.set_icmp_responds(cgnat, provider.cgnat_icmp_responds);
    net.link_geo(prev, cgnat, LinkClass::Metro);

    // Failover geography for the fault plane: if this gateway goes dark
    // mid-session, traffic detours via the provider's next-nearest breakout
    // site and pays the extra tunnel stretch instead of being dropped.
    // Single-site providers have nowhere to fail over to.
    let detour_km = provider
        .sites
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != site_idx)
        .map(|(_, alt)| pgw_loc.distance_km(alt.city.location()))
        .min_by(f64::total_cmp);
    if let Some(km) = detour_km {
        let detour_ms = roam_geo::fiber_delay_ms(km) * LinkClass::Tunnel.circuitousness()
            + LinkClass::Tunnel.processing_ms();
        net.set_failover(cgnat, SimTime::from_ms(detour_ms));
    }

    // --- control plane: the Create Session exchange ------------------------
    // The SGW asks the selected PGW for a session; the accepting response
    // carries the tunnel endpoint and — crucially for the tomography — the
    // PDN Address Allocation, i.e. the public IP the outside world sees.
    let sgw_teid = rng.gen::<u32>() | 1;
    let request =
        GtpcMessage::create_session_request(s + 1, params.imsi, "internet", sgw_teid, priv_ip(3));
    let pgw_teid = rng.gen::<u32>() | 1;
    let response = GtpcMessage::accept(&request, pgw_teid, priv_ip(10), public_ip);
    let response = GtpcMessage::decode(&response.encode())
        .map_err(|_| AttachError::ControlPlane("create-session response failed to decode"))?;
    if response.sequence != request.sequence {
        return Err(AttachError::ControlPlane(
            "response sequence does not match request",
        ));
    }
    let teid = response
        .fteid
        .ok_or(AttachError::ControlPlane("accepted session has no F-TEID"))?
        .0;
    if response.paa != Some(public_ip) {
        return Err(AttachError::ControlPlane(
            "assigned PDN address is not the breakout address",
        ));
    }
    // The data plane then encapsulates toward that endpoint.
    let probe = GtpuHeader::encapsulate(teid, b"first-uplink-packet");
    let (hdr, _) = GtpuHeader::decapsulate(&probe)
        .map_err(|_| AttachError::ControlPlane("self-encapsulated probe failed to decapsulate"))?;
    if hdr.teid != teid {
        return Err(AttachError::ControlPlane("TEID did not survive the tunnel"));
    }

    let flow_stamp = roam_netsim::engine::flow_seed(
        net.master_seed(),
        &format!("flow/{label}/{}/{:?}", params.imsi, params.ue_city),
    );

    Ok(Attachment {
        ue,
        ran,
        sgw,
        cgnat,
        public_ip,
        arch: params.arch,
        provider: params.provider,
        breakout_city: site.city,
        tunnel_km,
        dns: params.dns,
        teid,
        v_mno: params.v_mno,
        b_mno: params.b_mno,
        rat: params.rat,
        private_hops: 2 + core_hops, // RAN + SGW + provider core
        flow_stamp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{PgwProvider, PgwSelection, PgwSite};
    use rand::SeedableRng;
    use roam_cellular::{BandwidthPolicy, Mno, Plmn};
    use roam_geo::Country;
    use roam_netsim::registry::well_known;
    use roam_netsim::{Ipv4Net, TracerouteOpts};

    fn mnos() -> MnoDirectory {
        let mut dir = MnoDirectory::new();
        dir.add(Mno {
            name: "Jazz".into(),
            country: Country::PAK,
            plmn: Plmn::new(410, 1, 2),
            asn: well_known::PMCL,
            parent: None,
            native_policy: BandwidthPolicy::new(25.0, 10.0),
            roamer_policy: BandwidthPolicy::new(10.0, 5.0),
            youtube_cap_mbps: None,
            access_loss: 0.0,
        });
        dir.add(Mno {
            name: "Singtel".into(),
            country: Country::SGP,
            plmn: Plmn::new(525, 1, 2),
            asn: well_known::SINGTEL,
            parent: None,
            native_policy: BandwidthPolicy::new(100.0, 50.0),
            roamer_policy: BandwidthPolicy::new(12.0, 6.0),
            youtube_cap_mbps: Some(4.0),
            access_loss: 0.0,
        });
        dir
    }

    fn providers() -> ProviderDirectory {
        let mut dir = ProviderDirectory::new();
        dir.add(PgwProvider {
            name: "Singtel".into(),
            asn: well_known::SINGTEL,
            sites: vec![PgwSite::new(
                City::Singapore,
                Ipv4Net::parse("202.166.126.0/24").unwrap(),
                4,
            )],
            selection: PgwSelection::Fixed(0),
            ip_assignment: IpAssignment::Pooled,
            private_hops: (6, 6),
            cgnat_icmp_responds: true,
        });
        dir
    }

    fn params(session_id: u32) -> AttachParams {
        AttachParams {
            session_id,
            ue_city: City::Karachi,
            v_mno: MnoId(0),
            b_mno: MnoId(1),
            arch: RoamingArch::HomeRouted,
            provider: PgwProviderId(0),
            dns: DnsMode::OperatorResolver,
            rat: Rat::Lte,
            imsi: Imsi::new(roam_cellular::Plmn::new(525, 1, 2), 42),
        }
    }

    #[test]
    fn hr_attachment_builds_expected_chain() {
        let mut net = Network::new(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let att = attach(
            &mut net,
            &providers(),
            &mnos(),
            &PeeringQuality::default(),
            &params(0),
            &mut rng,
        );
        assert_eq!(att.arch, RoamingArch::HomeRouted);
        assert_eq!(att.breakout_city, City::Singapore);
        assert!(
            att.tunnel_km > 4000.0,
            "Karachi→Singapore: {} km",
            att.tunnel_km
        );
        assert_eq!(att.private_hops, 8, "RAN + SGW + 6 Singtel core hops");
        // Public IP from the Singtel /24.
        assert!(Ipv4Net::parse("202.166.126.0/24")
            .unwrap()
            .contains(att.public_ip));
        assert!(att.teid != 0);
    }

    #[test]
    fn traceroute_from_ue_shows_private_then_public() {
        let mut net = Network::new(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let att = attach(
            &mut net,
            &providers(),
            &mnos(),
            &PeeringQuality::default(),
            &params(0),
            &mut rng,
        );
        // Add a public destination behind the CG-NAT.
        let sp = net.add_node(
            "google-sg",
            NodeKind::SpEdge,
            City::Singapore,
            "142.250.4.100".parse().unwrap(),
        );
        net.link_geo(att.cgnat, sp, LinkClass::Peering);
        let tr = net.traceroute(att.ue, sp, TracerouteOpts::default());
        assert!(tr.reached);
        let demarcation = tr.first_public_hop().unwrap();
        assert_eq!(
            demarcation, att.private_hops as usize,
            "first public hop right after the private path"
        );
        assert_eq!(tr.hops[demarcation].ip, Some(att.public_ip));
        assert_eq!(net.egress_public_ip(att.ue, sp), Some(att.public_ip));
    }

    #[test]
    fn tunnel_latency_scales_with_peering_quality() {
        let run = |circ: f64| {
            let mut net = Network::new(1);
            let mut rng = SmallRng::seed_from_u64(2);
            let mut pq = PeeringQuality::default();
            pq.set(MnoId(0), PgwProviderId(0), circ);
            let att = attach(&mut net, &providers(), &mnos(), &pq, &params(0), &mut rng);
            let sp = net.add_node(
                "sp",
                NodeKind::SpEdge,
                City::Singapore,
                "142.250.4.100".parse().unwrap(),
            );
            net.link_geo(att.cgnat, sp, LinkClass::Peering);
            net.base_one_way_ms(att.ue, sp).unwrap()
        };
        let good = run(1.5);
        let bad = run(6.5);
        assert!(bad > good + 100.0, "good={good:.1} bad={bad:.1}");
    }

    #[test]
    fn sessions_use_disjoint_private_space() {
        let mut net = Network::new(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let a = attach(
            &mut net,
            &providers(),
            &mnos(),
            &PeeringQuality::default(),
            &params(0),
            &mut rng,
        );
        let b = attach(
            &mut net,
            &providers(),
            &mnos(),
            &PeeringQuality::default(),
            &params(1),
            &mut rng,
        );
        assert_ne!(net.node(a.ue).ip, net.node(b.ue).ip);
        assert_ne!(net.node(a.sgw).ip, net.node(b.sgw).ip);
    }

    #[test]
    fn public_ips_come_from_a_small_pool() {
        let mut net = Network::new(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ips = std::collections::HashSet::new();
        for s in 0..50 {
            let att = attach(
                &mut net,
                &providers(),
                &mnos(),
                &PeeringQuality::default(),
                &params(s),
                &mut rng,
            );
            ips.insert(att.public_ip);
        }
        assert!(ips.len() <= 6, "pooled PGW addresses: got {}", ips.len());
        assert!(ips.len() >= 2, "pool should rotate");
    }

    #[test]
    fn native_metro_breakout_has_short_tunnel() {
        // v-MNO == b-MNO in the same city: tunnel collapses to metro scale.
        let mut providers_dir = ProviderDirectory::new();
        providers_dir.add(PgwProvider {
            name: "Jazz".into(),
            asn: well_known::PMCL,
            sites: vec![PgwSite::new(
                City::Karachi,
                Ipv4Net::parse("119.160.96.0/24").unwrap(),
                6,
            )],
            selection: PgwSelection::Fixed(0),
            ip_assignment: IpAssignment::Pooled,
            private_hops: (2, 2),
            cgnat_icmp_responds: true,
        });
        let mut net = Network::new(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let p = AttachParams {
            arch: RoamingArch::Native,
            v_mno: MnoId(0),
            b_mno: MnoId(0),
            ..params(0)
        };
        let att = attach(
            &mut net,
            &providers_dir,
            &mnos(),
            &PeeringQuality::default(),
            &p,
            &mut rng,
        );
        assert!(att.tunnel_km < 50.0);
        assert_eq!(
            att.private_hops, 4,
            "RAN + SGW + 2 core hops, the PAK SIM value"
        );
        let sp = net.add_node(
            "sp",
            NodeKind::SpEdge,
            City::Karachi,
            "142.250.9.9".parse().unwrap(),
        );
        net.link_geo(att.cgnat, sp, LinkClass::Peering);
        let rtt = net.rtt_ms(att.ue, sp).unwrap();
        assert!(rtt < 90.0, "native path must be fast, got {rtt:.1} ms");
    }
}
