//! Roaming architectures and per-b-MNO breakout configuration.
//!
//! Figure 1 of the paper defines the three data-path shapes for a roaming
//! subscriber; the key structural difference is *who owns the PGW that
//! assigns the public IP*:
//!
//! | architecture | PGW owner            | GTP tunnel runs to            |
//! |--------------|----------------------|-------------------------------|
//! | HR           | the b-MNO, at home   | the home country              |
//! | LBO          | the v-MNO, locally   | stays inside the v-MNO        |
//! | IHBO         | a third party (IPX)  | wherever the hub sits         |
//!
//! The paper finds Airalo uses HR (via Singtel) and IHBO (via four third-
//! party providers) but never LBO, "likely due to a lack of trust among
//! MNOs regarding roamer records and charges" (§4.2). LBO is implemented
//! here anyway: the conclusion names it as the evolution path, and the
//! ablation benchmarks quantify what Airalo would gain from it.

use crate::provider::PgwProviderId;

/// The three roaming data-path architectures (plus the degenerate native
/// case, which is not roaming at all but appears throughout the analysis as
/// the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RoamingArch {
    /// Not roaming: the SIM is used on its issuing operator's network.
    Native,
    /// Home-Routed roaming: tunnel back to the b-MNO's home PGW.
    HomeRouted,
    /// Local Breakout at the v-MNO.
    LocalBreakout,
    /// IPX Hub Breakout at a third-party PGW.
    IpxHubBreakout,
}

impl RoamingArch {
    /// Short label used in report tables (matches the paper's "Type"
    /// column in Table 2).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RoamingArch::Native => "Native",
            RoamingArch::HomeRouted => "HR",
            RoamingArch::LocalBreakout => "LBO",
            RoamingArch::IpxHubBreakout => "IHBO",
        }
    }

    /// Does this architecture involve a roaming attachment at all?
    #[must_use]
    pub fn is_roaming(&self) -> bool {
        !matches!(self, RoamingArch::Native)
    }
}

impl std::fmt::Display for RoamingArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a subscriber's DNS queries land (§5.1 "DNS Lookup Time").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsMode {
    /// Resolved by the operator that owns the PGW (physical SIMs, native
    /// eSIMs and HR eSIMs — "DNS resolution occurs locally within the
    /// b-MNO").
    OperatorResolver,
    /// Google Public DNS via anycast, reached from the PGW — what the IHBO
    /// eSIMs use, with resolvers selected near the PGW. The `doh` flag adds
    /// the DNS-over-HTTPS handshake overhead the authors (by their own
    /// admission) forgot to disable.
    GooglePublic {
        /// DNS-over-HTTPS enabled (adds TLS setup to every cold lookup).
        doh: bool,
    },
}

/// The breakout arrangement a b-MNO has pre-configured for its roaming
/// subscribers: which architecture, and — for IHBO — which third-party
/// provider(s) carry the breakout. "Most Airalo eSIMs rely on a single,
/// fixed PGW provider, indicating a static pre-arrangement of PGW
/// selection" (§1).
#[derive(Debug, Clone)]
pub struct BreakoutConfig {
    /// The architecture this b-MNO uses for roaming data.
    pub arch: RoamingArch,
    /// Candidate PGW providers. HR configs name the b-MNO's own provider
    /// entry; IHBO configs list one or more third parties (Play and Telna
    /// alternated between Packet Host and OVH, §4.1).
    pub providers: Vec<PgwProviderId>,
    /// DNS behaviour for subscribers under this config.
    pub dns: DnsMode,
}

impl BreakoutConfig {
    /// A Home-Routed config through the b-MNO's own gateway provider.
    #[must_use]
    pub fn home_routed(own_provider: PgwProviderId) -> Self {
        BreakoutConfig {
            arch: RoamingArch::HomeRouted,
            providers: vec![own_provider],
            dns: DnsMode::OperatorResolver,
        }
    }

    /// An IHBO config over the given third-party providers.
    #[must_use]
    pub fn ihbo(providers: Vec<PgwProviderId>) -> Self {
        assert!(!providers.is_empty(), "IHBO needs at least one provider");
        BreakoutConfig {
            arch: RoamingArch::IpxHubBreakout,
            providers,
            dns: DnsMode::GooglePublic { doh: true },
        }
    }

    /// A Local-Breakout config through the v-MNO's own gateway (provider id
    /// resolved at attach time — here we record the v-MNO's provider).
    #[must_use]
    pub fn local_breakout(vmno_provider: PgwProviderId) -> Self {
        BreakoutConfig {
            arch: RoamingArch::LocalBreakout,
            providers: vec![vmno_provider],
            dns: DnsMode::OperatorResolver,
        }
    }

    /// Pick the provider for a new session. When several providers are
    /// configured the choice alternates pseudo-randomly, reproducing the
    /// observed Packet-Host/OVH iteration.
    pub fn select_provider(&self, rng: &mut rand::rngs::SmallRng) -> PgwProviderId {
        use rand::Rng;
        assert!(!self.providers.is_empty());
        if self.providers.len() == 1 {
            self.providers[0]
        } else {
            self.providers[rng.gen_range(0..self.providers.len())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn labels_match_paper_table() {
        assert_eq!(RoamingArch::HomeRouted.label(), "HR");
        assert_eq!(RoamingArch::IpxHubBreakout.label(), "IHBO");
        assert_eq!(RoamingArch::LocalBreakout.label(), "LBO");
        assert_eq!(RoamingArch::Native.to_string(), "Native");
    }

    #[test]
    fn native_is_not_roaming() {
        assert!(!RoamingArch::Native.is_roaming());
        assert!(RoamingArch::HomeRouted.is_roaming());
        assert!(RoamingArch::LocalBreakout.is_roaming());
        assert!(RoamingArch::IpxHubBreakout.is_roaming());
    }

    #[test]
    fn hr_config_uses_operator_dns() {
        let c = BreakoutConfig::home_routed(PgwProviderId(0));
        assert_eq!(c.arch, RoamingArch::HomeRouted);
        assert_eq!(c.dns, DnsMode::OperatorResolver);
    }

    #[test]
    fn ihbo_config_uses_google_doh() {
        let c = BreakoutConfig::ihbo(vec![PgwProviderId(1), PgwProviderId(2)]);
        assert_eq!(c.arch, RoamingArch::IpxHubBreakout);
        assert_eq!(c.dns, DnsMode::GooglePublic { doh: true });
    }

    #[test]
    #[should_panic(expected = "at least one provider")]
    fn empty_ihbo_rejected() {
        let _ = BreakoutConfig::ihbo(vec![]);
    }

    #[test]
    fn single_provider_selection_is_fixed() {
        let c = BreakoutConfig::home_routed(PgwProviderId(4));
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..5 {
            assert_eq!(c.select_provider(&mut rng), PgwProviderId(4));
        }
    }

    #[test]
    fn multi_provider_selection_alternates() {
        let c = BreakoutConfig::ihbo(vec![PgwProviderId(1), PgwProviderId(2)]);
        let mut rng = SmallRng::seed_from_u64(11);
        let picks: Vec<_> = (0..50).map(|_| c.select_provider(&mut rng)).collect();
        assert!(picks.contains(&PgwProviderId(1)));
        assert!(picks.contains(&PgwProviderId(2)));
    }
}
