//! The IPX network, breakout architectures and GTP session establishment.
//!
//! This crate models the machinery between the visited RAN and the public
//! internet — the part of the world the paper's tomography illuminates:
//!
//! * [`provider`] — **PGW providers**: organisations operating breakout
//!   gateways. They can be MNOs (Singtel breaking out its own roamers at
//!   home = HR) or third parties inside the IPX ecosystem (Packet Host,
//!   OVH, Wireless Logic, Webbing = IHBO). Each provider has *sites* (city +
//!   public prefix) and a *selection policy* describing how sessions are
//!   pinned to sites (the paper finds OVH selects per b-MNO while Packet
//!   Host load-balances, §4.3.2);
//! * [`breakout`] — the three roaming architectures of Fig. 1 (HR / LBO /
//!   IHBO) and the per-b-MNO [`breakout::BreakoutConfig`] that says which
//!   architecture and which provider a roaming session gets — the "static
//!   pre-arrangement of PGW selection" the paper criticises;
//! * [`session`] — [`session::attach`] builds the actual netsim subgraph
//!   for one attachment: UE → RAN/SGW (private) → GTP tunnel → PGW core
//!   (private hops) → CG-NAT (public breakout IP), with peering-quality
//!   overrides so that the same geographic tunnel can be fast for one
//!   v-MNO and slow for another (§4.3.2's Etisalat-vs-Jazz observation).

pub mod breakout;
pub mod gtpc;
pub mod provider;
pub mod session;

pub use breakout::{BreakoutConfig, DnsMode, RoamingArch};
pub use gtpc::{signalling_bytes_per_attach, Cause, GtpcMessage, GtpcMessageType};
pub use provider::{
    IpAssignment, PgwProvider, PgwProviderId, PgwSelection, PgwSite, ProviderDirectory,
};
pub use session::{attach, try_attach, AttachError, AttachParams, Attachment, PeeringQuality};
