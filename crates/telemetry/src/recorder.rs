//! The recorder: counters, histograms, packet records and events.

use crate::TelemetryMode;

/// Monotonic counters, one per observable. The enum order is the render
/// order, so adding a counter never reshuffles existing report lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Packets injected by a source host.
    PacketsSent,
    /// Packets forwarded by an intermediate node.
    PacketsForwarded,
    /// Packets delivered to their final node.
    PacketsDelivered,
    /// Packets dropped by a lossy link.
    PacketsDropped,
    /// TTLs that hit zero mid-path.
    TtlExpired,
    /// Events pushed onto a packet-walk calendar.
    CalendarEvents,
    /// Measurement flows opened through `Endpoint::probe`.
    FlowsOpened,
    /// Echo attempts consumed by RTT probes (including successes).
    EchoAttempts,
    /// Echo attempts beyond the first (retries after loss).
    ProbeRetransmits,
    /// RTT probes that exhausted every retry.
    ProbesLost,
    /// Traceroute runs.
    TracerouteRuns,
    /// Bytes moved by bulk transfers (spec bytes, not wire bytes).
    TransferBytes,
    /// Planned measurements executed by the campaign driver.
    PlansExecuted,
    /// Campaign records the executed plans produced.
    RecordsEmitted,
    /// Shards merged into the final report, in key order.
    ShardsMerged,
    /// Synthetic subscribers simulated by a fleet run.
    FleetUsers,
    /// Data sessions churned through by fleet subscribers.
    FleetSessions,
    /// Marketplace purchases made by fleet subscribers.
    FleetPurchases,
    /// Packets killed by the fault plane (dark gateways, DNS blackholes,
    /// CG-NAT rebind windows).
    FaultDrops,
    /// Packets that detoured through a registered failover gateway.
    FaultFailovers,
    /// Client-side backoff retries after an exhausted probe burn.
    ProbeBackoffs,
    /// Measurements that failed after every retry and were recorded as
    /// explicit failed rows.
    MeasurementsFailed,
    /// Scheduler jobs fired by the service agent's virtual clock.
    ServiceJobFires,
    /// Cohort arrivals + departures applied by service churn ticks.
    ServiceCohortChurn,
    /// Bounded-queue flushes the service export stage pushed into its
    /// sink (each one a backpressure drain, never a drop).
    ServiceSinkFlushes,
    /// Fleet worker processes respawned by the supervisor after a
    /// crash, stall, nonzero exit or protocol violation.
    WorkerRestarts,
    /// Shard attempts re-dispatched after the worker running them died
    /// mid-shard (each retry re-executes a pure function of
    /// `(seed, shard)`, so the report bytes cannot change).
    WorkerRetries,
    /// Shards that exhausted their retry budget and fell back to
    /// in-process execution on the parent.
    WorkerQuarantines,
}

impl Counter {
    /// Every counter, in render order.
    pub const ALL: [Counter; 28] = [
        Counter::PacketsSent,
        Counter::PacketsForwarded,
        Counter::PacketsDelivered,
        Counter::PacketsDropped,
        Counter::TtlExpired,
        Counter::CalendarEvents,
        Counter::FlowsOpened,
        Counter::EchoAttempts,
        Counter::ProbeRetransmits,
        Counter::ProbesLost,
        Counter::TracerouteRuns,
        Counter::TransferBytes,
        Counter::PlansExecuted,
        Counter::RecordsEmitted,
        Counter::ShardsMerged,
        Counter::FleetUsers,
        Counter::FleetSessions,
        Counter::FleetPurchases,
        Counter::FaultDrops,
        Counter::FaultFailovers,
        Counter::ProbeBackoffs,
        Counter::MeasurementsFailed,
        Counter::ServiceJobFires,
        Counter::ServiceCohortChurn,
        Counter::ServiceSinkFlushes,
        Counter::WorkerRestarts,
        Counter::WorkerRetries,
        Counter::WorkerQuarantines,
    ];

    /// Stable snake_case name used in the summary report.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::PacketsSent => "packets_sent",
            Counter::PacketsForwarded => "packets_forwarded",
            Counter::PacketsDelivered => "packets_delivered",
            Counter::PacketsDropped => "packets_dropped",
            Counter::TtlExpired => "ttl_expired",
            Counter::CalendarEvents => "calendar_events",
            Counter::FlowsOpened => "flows_opened",
            Counter::EchoAttempts => "echo_attempts",
            Counter::ProbeRetransmits => "probe_retransmits",
            Counter::ProbesLost => "probes_lost",
            Counter::TracerouteRuns => "traceroute_runs",
            Counter::TransferBytes => "transfer_bytes",
            Counter::PlansExecuted => "plans_executed",
            Counter::RecordsEmitted => "records_emitted",
            Counter::ShardsMerged => "shards_merged",
            Counter::FleetUsers => "fleet_users",
            Counter::FleetSessions => "fleet_sessions",
            Counter::FleetPurchases => "fleet_purchases",
            Counter::FaultDrops => "fault_drops",
            Counter::FaultFailovers => "fault_failovers",
            Counter::ProbeBackoffs => "probe_backoffs",
            Counter::MeasurementsFailed => "measurements_failed",
            Counter::ServiceJobFires => "service_job_fires",
            Counter::ServiceCohortChurn => "service_cohort_churn",
            Counter::ServiceSinkFlushes => "service_sink_flushes",
            Counter::WorkerRestarts => "worker_restarts",
            Counter::WorkerRetries => "worker_retries",
            Counter::WorkerQuarantines => "worker_quarantines",
        }
    }
}

/// The histogram series the recorder keeps. Buckets are fixed at compile
/// time — the precondition for bit-identical merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Successful probe round-trip times, milliseconds.
    ProbeRttMs,
    /// Hops recorded per traceroute.
    TraceHops,
    /// Pending events in the walk calendar after a schedule.
    CalendarDepth,
}

impl Hist {
    /// Every series, in render order.
    pub const ALL: [Hist; 3] = [Hist::ProbeRttMs, Hist::TraceHops, Hist::CalendarDepth];

    /// Stable snake_case name used in the summary report.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Hist::ProbeRttMs => "probe_rtt_ms",
            Hist::TraceHops => "trace_hops",
            Hist::CalendarDepth => "calendar_depth",
        }
    }

    /// Inclusive upper bounds of the finite buckets; one overflow bucket
    /// follows implicitly.
    #[must_use]
    pub fn bounds(self) -> &'static [f64] {
        match self {
            Hist::ProbeRttMs => &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 400.0, 800.0],
            Hist::TraceHops => &[2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0],
            Hist::CalendarDepth => &[1.0, 2.0, 4.0, 8.0, 16.0],
        }
    }
}

/// A fixed-bucket histogram: integer bucket counts plus a sum for mean
/// reporting. The sum is a float but stays deterministic because every
/// observation sequence that feeds it is shard-sequential and merges
/// happen in shard-key order.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    series: Hist,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// An empty histogram for `series`.
    #[must_use]
    pub fn new(series: Hist) -> Self {
        Histogram {
            series,
            counts: vec![0; series.bounds().len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// The series this histogram tracks.
    #[must_use]
    pub fn series(&self) -> Hist {
        self.series
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let bounds = self.series.bounds();
        let idx = bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Bucket counts, one per finite bound plus the overflow bucket.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Fold another histogram of the same series into this one.
    ///
    /// # Panics
    /// When the series differ — merging incompatible buckets would
    /// silently corrupt the report.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.series, other.series, "histogram series mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// What an [`Event`] is about.
#[derive(Debug, Clone, PartialEq)]
pub enum EventScope {
    /// A measurement flow, identified by its derived seed.
    Flow(u64),
    /// A campaign shard, identified by its stable key (`"device/PAK"`).
    Shard(String),
}

/// One structured telemetry event — a JSONL line in `jsonl` mode.
///
/// `at_ns` is sim-time (the completion time of the observation inside its
/// flow's walk), never wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Sim-time anchor in nanoseconds (0 for events with no clock).
    pub at_ns: u64,
    /// The flow or shard this event belongs to.
    pub scope: EventScope,
    /// Event kind (`"rtt"`, `"traceroute"`, `"measurement"`, `"shard"`).
    pub kind: &'static str,
    /// Free-form detail: measurement label, shard key…
    pub label: String,
    /// Primary value (RTT ms, hop count, merge index…), when meaningful.
    pub value: Option<f64>,
    /// Attempt count, when meaningful.
    pub attempts: Option<u32>,
}

impl Event {
    /// Render the event as one JSON object, stable field order.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"ev\":\"");
        out.push_str(self.kind);
        out.push('"');
        match &self.scope {
            EventScope::Flow(id) => {
                let _ = write!(out, ",\"flow\":\"{id:#018x}\"");
            }
            EventScope::Shard(key) => {
                let _ = write!(out, ",\"shard\":\"{}\"", escape_json(key));
            }
        }
        let _ = write!(out, ",\"label\":\"{}\"", escape_json(&self.label));
        if self.at_ns != 0 {
            let _ = write!(out, ",\"at_ns\":{}", self.at_ns);
        }
        if let Some(v) = self.value {
            if v.is_finite() {
                let _ = write!(out, ",\"value\":{v}");
            } else {
                out.push_str(",\"value\":null");
            }
        }
        if let Some(a) = self.attempts {
            let _ = write!(out, ",\"attempts\":{a}");
        }
        out.push('}');
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One packet-level record — the simulator's pcap line, kept as plain
/// integers so the telemetry crate needs no knowledge of netsim's types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Sim-time of the event, nanoseconds.
    pub at_ns: u64,
    /// Node index where it happened.
    pub node: u32,
    /// Kind code (the network layer owns the mapping).
    pub code: u8,
    /// Kind argument (e.g. remaining TTL for a forward).
    pub arg: u8,
}

/// The statically-dispatched recording surface. [`Recorder`] implements it
/// for real; [`NoopSink`] implements it as empty inline bodies, which is
/// what the disabled-telemetry Criterion comparison in `crates/bench`
/// measures against.
pub trait Sink {
    /// Add `n` to a counter.
    fn add(&mut self, c: Counter, n: u64);
    /// Record one histogram observation.
    fn observe(&mut self, h: Hist, value: f64);
    /// Record a structured event.
    fn push_event(&mut self, ev: Event);
    /// Is anything being recorded?
    fn active(&self) -> bool;
}

/// The no-op recorder: every method compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    #[inline(always)]
    fn add(&mut self, _c: Counter, _n: u64) {}
    #[inline(always)]
    fn observe(&mut self, _h: Hist, _value: f64) {}
    #[inline(always)]
    fn push_event(&mut self, _ev: Event) {}
    #[inline(always)]
    fn active(&self) -> bool {
        false
    }
}

/// Everything one recorder accumulated: the unit of cross-shard merging.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counter values, indexed by [`Counter`] discriminant.
    pub counters: [u64; Counter::ALL.len()],
    /// Histograms, indexed by [`Hist`] discriminant.
    pub hists: Vec<Histogram>,
    /// Structured events in recording order.
    pub events: Vec<Event>,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            counters: [0; Counter::ALL.len()],
            hists: Hist::ALL.iter().map(|&h| Histogram::new(h)).collect(),
            events: Vec::new(),
        }
    }
}

/// The concrete recorder a [`Network`](../../roam_netsim/net/struct.Network.html)
/// (and everything above it) writes into.
///
/// The mode gates accumulation: `Off` makes every method a single branch.
/// Packet tracing is a separate switch — the packet story is opt-in per
/// network because it records per hop, and it must work even with the
/// campaign-level mode off (that is how `Network::enable_tracing` keeps
/// its pre-telemetry behaviour).
#[derive(Debug, Clone)]
pub struct Recorder {
    mode: TelemetryMode,
    trace_packets: bool,
    snap: TelemetrySnapshot,
    packets: Vec<PacketRecord>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::off()
    }
}

impl Recorder {
    /// A disabled recorder — the zero-cost default.
    #[must_use]
    pub fn off() -> Self {
        Recorder::new(TelemetryMode::Off)
    }

    /// A recorder in the given mode.
    #[must_use]
    pub fn new(mode: TelemetryMode) -> Self {
        Recorder {
            mode,
            trace_packets: false,
            snap: TelemetrySnapshot::default(),
            packets: Vec::new(),
        }
    }

    /// The current mode.
    #[must_use]
    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// Switch modes in place (accumulated data is kept).
    pub fn set_mode(&mut self, mode: TelemetryMode) {
        self.mode = mode;
    }

    /// Should call sites bother constructing events?
    #[must_use]
    pub fn wants_events(&self) -> bool {
        self.mode.wants_events()
    }

    /// Start (or restart) the packet story. Previously captured packet
    /// records are discarded; counters and histograms are untouched.
    pub fn enable_packet_trace(&mut self) {
        self.trace_packets = true;
        self.packets.clear();
    }

    /// Stop recording packet records (the captured story is kept).
    pub fn disable_packet_trace(&mut self) {
        self.trace_packets = false;
    }

    /// The packet story captured so far. Unlike the pre-telemetry
    /// consume-once buffer, reading does not erase it.
    #[must_use]
    pub fn packet_records(&self) -> &[PacketRecord] {
        &self.packets
    }

    /// Record one packet-level event (no-op unless tracing is enabled).
    #[inline]
    pub fn packet(&mut self, at_ns: u64, node: u32, code: u8, arg: u8) {
        if self.trace_packets {
            self.packets.push(PacketRecord {
                at_ns,
                node,
                code,
                arg,
            });
        }
    }

    /// Drain the accumulated counters, histograms and events into a
    /// snapshot, leaving the recorder empty (mode and packet story are
    /// kept). This is the shard hand-off point.
    pub fn take(&mut self) -> TelemetrySnapshot {
        std::mem::take(&mut self.snap)
    }

    /// The state accumulated so far, without draining it — what the
    /// checkpoint layer serializes mid-run while the recorder keeps
    /// accumulating.
    #[must_use]
    pub fn snapshot(&self) -> &TelemetrySnapshot {
        &self.snap
    }

    /// Replace the recorder's accumulated state with `snap` — the resume
    /// half of checkpointing. The histogram `sum` fields are plain `f64`
    /// accumulated sequentially, so bit-identical resumed reports require
    /// *continuing* the original accumulation order from its exact state;
    /// restoring the snapshot and appending achieves that, where merging
    /// a restored snapshot with a separately-accumulated partial would
    /// not (float addition is not associative).
    pub fn restore(&mut self, snap: TelemetrySnapshot) {
        self.snap = snap;
    }
}

impl Sink for Recorder {
    #[inline]
    fn add(&mut self, c: Counter, n: u64) {
        if self.mode.enabled() {
            self.snap.counters[c as usize] += n;
        }
    }

    #[inline]
    fn observe(&mut self, h: Hist, value: f64) {
        if self.mode.enabled() {
            self.snap.hists[h as usize].observe(value);
        }
    }

    #[inline]
    fn push_event(&mut self, ev: Event) {
        if self.mode.wants_events() {
            self.snap.events.push(ev);
        }
    }

    #[inline]
    fn active(&self) -> bool {
        self.mode.enabled() || self.trace_packets
    }
}

// ---------------------------------------------------------------------
// Wire form: snapshots checkpoint to disk and cross worker pipes in the
// roam-codec field format. Everything round-trips verbatim — counters,
// bucket vectors, the sequentially-accumulated float sums (as exact bit
// patterns) and the full event stream — so a restored snapshot is
// indistinguishable from the one that was taken.
// ---------------------------------------------------------------------

use roam_codec::{CodecError, Decoder, Encoder};

/// Event kinds this build can decode. `Event::kind` is a `&'static str`,
/// so decoding maps wire text back through this table instead of leaking
/// arbitrary strings; an unknown kind is a schema-drift error, caught
/// loudly.
const KNOWN_KINDS: [&str; 5] = ["rtt", "traceroute", "measurement", "plan", "shard"];

fn intern_kind(s: &str) -> Result<&'static str, CodecError> {
    KNOWN_KINDS
        .iter()
        .find(|k| **k == s)
        .copied()
        .ok_or(CodecError::BadValue("event kind"))
}

/// Field tags for [`TelemetrySnapshot`] and its parts (DESIGN.md §11).
mod snap_tag {
    pub const COUNTER: u32 = 1; // repeated u64, Counter::ALL order
    pub const HIST: u32 = 2; // repeated section, Hist::ALL order
    pub const EVENT: u32 = 3; // repeated section, recording order

    pub const HIST_SERIES: u32 = 1; // u64, Hist discriminant
    pub const HIST_BUCKET: u32 = 2; // repeated u64
    pub const HIST_COUNT: u32 = 3; // u64
    pub const HIST_SUM: u32 = 4; // f64 (exact bits)

    pub const EV_AT_NS: u32 = 1; // u64
    pub const EV_FLOW: u32 = 2; // u64 (scope, exclusive with EV_SHARD)
    pub const EV_SHARD: u32 = 3; // str (scope, exclusive with EV_FLOW)
    pub const EV_KIND: u32 = 4; // str, one of KNOWN_KINDS
    pub const EV_LABEL: u32 = 5; // str
    pub const EV_VALUE: u32 = 6; // f64, optional
    pub const EV_ATTEMPTS: u32 = 7; // u64, optional
}

impl Histogram {
    fn encode_fields(&self, e: &mut Encoder) {
        e.u64(snap_tag::HIST_SERIES, self.series as u64);
        for &c in &self.counts {
            e.u64(snap_tag::HIST_BUCKET, c);
        }
        e.u64(snap_tag::HIST_COUNT, self.count);
        e.f64(snap_tag::HIST_SUM, self.sum);
    }

    fn decode_fields(d: &mut Decoder) -> Result<Self, CodecError> {
        let mut series = None;
        let mut counts = Vec::new();
        let mut count = None;
        let mut sum = None;
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                snap_tag::HIST_SERIES => {
                    let idx = v.as_u64(tag)?;
                    series = Some(
                        *Hist::ALL
                            .get(idx as usize)
                            .ok_or(CodecError::BadValue("histogram series"))?,
                    );
                }
                snap_tag::HIST_BUCKET => counts.push(v.as_u64(tag)?),
                snap_tag::HIST_COUNT => count = Some(v.as_u64(tag)?),
                snap_tag::HIST_SUM => sum = Some(v.as_f64(tag)?),
                _ => {}
            }
        }
        let series = series.ok_or(CodecError::MissingField("histogram series"))?;
        if counts.len() != series.bounds().len() + 1 {
            return Err(CodecError::BadValue("histogram bucket count"));
        }
        Ok(Histogram {
            series,
            counts,
            count: count.ok_or(CodecError::MissingField("histogram count"))?,
            sum: sum.ok_or(CodecError::MissingField("histogram sum"))?,
        })
    }
}

impl Event {
    fn encode_fields(&self, e: &mut Encoder) {
        e.u64(snap_tag::EV_AT_NS, self.at_ns);
        match &self.scope {
            EventScope::Flow(id) => e.u64(snap_tag::EV_FLOW, *id),
            EventScope::Shard(key) => e.str(snap_tag::EV_SHARD, key),
        }
        e.str(snap_tag::EV_KIND, self.kind);
        e.str(snap_tag::EV_LABEL, &self.label);
        if let Some(v) = self.value {
            e.f64(snap_tag::EV_VALUE, v);
        }
        if let Some(a) = self.attempts {
            e.u64(snap_tag::EV_ATTEMPTS, u64::from(a));
        }
    }

    fn decode_fields(d: &mut Decoder) -> Result<Self, CodecError> {
        let mut at_ns = None;
        let mut scope = None;
        let mut kind = None;
        let mut label = None;
        let mut value = None;
        let mut attempts = None;
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                snap_tag::EV_AT_NS => at_ns = Some(v.as_u64(tag)?),
                snap_tag::EV_FLOW => scope = Some(EventScope::Flow(v.as_u64(tag)?)),
                snap_tag::EV_SHARD => scope = Some(EventScope::Shard(v.as_str(tag)?.to_string())),
                snap_tag::EV_KIND => kind = Some(intern_kind(v.as_str(tag)?)?),
                snap_tag::EV_LABEL => label = Some(v.as_str(tag)?.to_string()),
                snap_tag::EV_VALUE => value = Some(v.as_f64(tag)?),
                snap_tag::EV_ATTEMPTS => {
                    attempts = Some(
                        u32::try_from(v.as_u64(tag)?)
                            .map_err(|_| CodecError::BadValue("event attempts"))?,
                    );
                }
                _ => {}
            }
        }
        Ok(Event {
            at_ns: at_ns.ok_or(CodecError::MissingField("event at_ns"))?,
            scope: scope.ok_or(CodecError::MissingField("event scope"))?,
            kind: kind.ok_or(CodecError::MissingField("event kind"))?,
            label: label.ok_or(CodecError::MissingField("event label"))?,
            value,
            attempts,
        })
    }
}

impl TelemetrySnapshot {
    /// Write the snapshot's fields into `e` (no frame, no section — the
    /// caller chooses the envelope).
    pub fn encode_fields(&self, e: &mut Encoder) {
        for &c in &self.counters {
            e.u64(snap_tag::COUNTER, c);
        }
        for h in &self.hists {
            e.section(snap_tag::HIST, |s| h.encode_fields(s));
        }
        for ev in &self.events {
            e.section(snap_tag::EVENT, |s| ev.encode_fields(s));
        }
    }

    /// Rebuild a snapshot from fields written by
    /// [`TelemetrySnapshot::encode_fields`]. Counter and histogram
    /// cardinality must match this build exactly — a snapshot from a
    /// build with different observables is stale, not mergeable.
    pub fn decode_fields(d: &mut Decoder) -> Result<Self, CodecError> {
        let mut counters = Vec::new();
        let mut hists = Vec::new();
        let mut events = Vec::new();
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                snap_tag::COUNTER => counters.push(v.as_u64(tag)?),
                snap_tag::HIST => {
                    let mut s = v.as_section(tag)?;
                    hists.push(Histogram::decode_fields(&mut s)?);
                }
                snap_tag::EVENT => {
                    let mut s = v.as_section(tag)?;
                    events.push(Event::decode_fields(&mut s)?);
                }
                _ => {}
            }
        }
        let counters: [u64; Counter::ALL.len()] = counters
            .try_into()
            .map_err(|_| CodecError::BadValue("counter cardinality"))?;
        if hists.len() != Hist::ALL.len()
            || hists
                .iter()
                .zip(Hist::ALL.iter())
                .any(|(h, &want)| h.series != want)
        {
            return Err(CodecError::BadValue("histogram cardinality"));
        }
        Ok(TelemetrySnapshot {
            counters,
            hists,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_only_when_enabled() {
        let mut off = Recorder::off();
        off.add(Counter::PacketsSent, 3);
        assert_eq!(off.take().counters[Counter::PacketsSent as usize], 0);

        let mut on = Recorder::new(TelemetryMode::Summary);
        on.add(Counter::PacketsSent, 3);
        on.add(Counter::PacketsSent, 2);
        assert_eq!(on.take().counters[Counter::PacketsSent as usize], 5);
    }

    #[test]
    fn histogram_buckets_and_merge() {
        let mut a = Histogram::new(Hist::ProbeRttMs);
        a.observe(0.5);
        a.observe(7.0);
        a.observe(5000.0); // overflow bucket
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[3], 1); // (5, 10]
        assert_eq!(*a.buckets().last().unwrap(), 1);

        let mut b = Histogram::new(Hist::ProbeRttMs);
        b.observe(7.5);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.buckets()[3], 2);
        assert!((a.sum() - (0.5 + 7.0 + 5000.0 + 7.5)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "series mismatch")]
    fn merging_different_series_panics() {
        let mut a = Histogram::new(Hist::ProbeRttMs);
        a.merge(&Histogram::new(Hist::TraceHops));
    }

    #[test]
    fn events_only_in_jsonl_mode() {
        let ev = Event {
            at_ns: 0,
            scope: EventScope::Flow(7),
            kind: "rtt",
            label: "ookla/0".into(),
            value: Some(12.5),
            attempts: Some(1),
        };
        let mut summary = Recorder::new(TelemetryMode::Summary);
        summary.push_event(ev.clone());
        assert!(summary.take().events.is_empty());

        let mut jsonl = Recorder::new(TelemetryMode::Jsonl);
        jsonl.push_event(ev);
        assert_eq!(jsonl.take().events.len(), 1);
    }

    #[test]
    fn event_json_is_stable_and_escaped() {
        let mut out = String::new();
        Event {
            at_ns: 42,
            scope: EventScope::Shard("device/\"X\"".into()),
            kind: "shard",
            label: "a,b".into(),
            value: Some(1.0),
            attempts: None,
        }
        .write_json(&mut out);
        assert_eq!(
            out,
            "{\"ev\":\"shard\",\"shard\":\"device/\\\"X\\\"\",\"label\":\"a,b\",\
             \"at_ns\":42,\"value\":1}"
        );
        let mut flow = String::new();
        Event {
            at_ns: 0,
            scope: EventScope::Flow(0xABCD),
            kind: "rtt",
            label: String::new(),
            value: Some(f64::INFINITY),
            attempts: Some(3),
        }
        .write_json(&mut flow);
        assert!(flow.contains("\"flow\":\"0x000000000000abcd\""));
        assert!(flow.contains("\"value\":null"));
        assert!(flow.contains("\"attempts\":3"));
    }

    #[test]
    fn packet_trace_is_repeatable_not_consume_once() {
        let mut r = Recorder::off();
        r.packet(1, 0, 0, 0); // tracing not enabled: dropped
        assert!(r.packet_records().is_empty());
        r.enable_packet_trace();
        r.packet(1, 0, 0, 0);
        r.packet(2, 1, 1, 63);
        assert_eq!(r.packet_records().len(), 2);
        // Reading again sees the same story.
        assert_eq!(r.packet_records().len(), 2);
        // Re-enabling restarts it.
        r.enable_packet_trace();
        assert!(r.packet_records().is_empty());
    }

    #[test]
    fn take_resets_but_keeps_mode() {
        let mut r = Recorder::new(TelemetryMode::Summary);
        r.add(Counter::FlowsOpened, 1);
        r.observe(Hist::ProbeRttMs, 3.0);
        let snap = r.take();
        assert_eq!(snap.counters[Counter::FlowsOpened as usize], 1);
        assert_eq!(snap.hists[Hist::ProbeRttMs as usize].count(), 1);
        let empty = r.take();
        assert_eq!(empty.counters[Counter::FlowsOpened as usize], 0);
        assert_eq!(r.mode(), TelemetryMode::Summary);
    }

    #[test]
    fn noop_sink_is_inert() {
        let mut s = NoopSink;
        s.add(Counter::PacketsSent, 1);
        s.observe(Hist::ProbeRttMs, 1.0);
        assert!(!s.active());
    }

    fn busy_snapshot() -> TelemetrySnapshot {
        let mut r = Recorder::new(TelemetryMode::Jsonl);
        r.add(Counter::PacketsSent, 41);
        r.add(Counter::FleetUsers, 7);
        r.observe(Hist::ProbeRttMs, 12.5);
        r.observe(Hist::ProbeRttMs, 0.25);
        r.observe(Hist::TraceHops, 9.0);
        r.push_event(Event {
            at_ns: 77,
            scope: EventScope::Flow(0xFEED),
            kind: "rtt",
            label: "fleet/u1/l0/s2".into(),
            value: Some(12.5),
            attempts: Some(2),
        });
        r.push_event(Event {
            at_ns: 0,
            scope: EventScope::Shard("fleet/003".into()),
            kind: "shard",
            label: "merge".into(),
            value: Some(f64::NAN),
            attempts: None,
        });
        r.take()
    }

    #[test]
    fn snapshot_round_trips_through_the_codec() {
        for snap in [TelemetrySnapshot::default(), busy_snapshot()] {
            let mut e = Encoder::new();
            snap.encode_fields(&mut e);
            let bytes = e.into_bytes();
            let back = TelemetrySnapshot::decode_fields(&mut Decoder::new(&bytes))
                .expect("clean round trip");
            // NaN != NaN under PartialEq, so compare the float bits.
            assert_eq!(back.counters, snap.counters);
            assert_eq!(back.hists.len(), snap.hists.len());
            for (a, b) in back.hists.iter().zip(&snap.hists) {
                assert_eq!(a.series, b.series);
                assert_eq!(a.counts, b.counts);
                assert_eq!(a.count, b.count);
                assert_eq!(a.sum.to_bits(), b.sum.to_bits());
            }
            assert_eq!(back.events.len(), snap.events.len());
            for (a, b) in back.events.iter().zip(&snap.events) {
                assert_eq!((a.at_ns, &a.scope, a.kind), (b.at_ns, &b.scope, b.kind));
                assert_eq!(a.label, b.label);
                assert_eq!(a.value.map(f64::to_bits), b.value.map(f64::to_bits));
                assert_eq!(a.attempts, b.attempts);
            }
        }
    }

    #[test]
    fn snapshot_decode_rejects_foreign_cardinalities() {
        let mut e = Encoder::new();
        busy_snapshot().encode_fields(&mut e);
        let mut extra = e.into_bytes();
        // Append one more counter field: cardinality no longer matches.
        let mut tail = Encoder::new();
        tail.u64(snap_tag::COUNTER, 1);
        extra.extend_from_slice(&tail.into_bytes());
        assert_eq!(
            TelemetrySnapshot::decode_fields(&mut Decoder::new(&extra)).unwrap_err(),
            CodecError::BadValue("counter cardinality")
        );
    }

    #[test]
    fn unknown_event_kinds_fail_loudly() {
        let mut snap = Encoder::new();
        snap.section(snap_tag::EVENT, |s| {
            s.u64(snap_tag::EV_AT_NS, 1);
            s.u64(snap_tag::EV_FLOW, 2);
            s.str(snap_tag::EV_KIND, "from-the-future");
            s.str(snap_tag::EV_LABEL, "x");
        });
        let bytes = snap.into_bytes();
        assert_eq!(
            TelemetrySnapshot::decode_fields(&mut Decoder::new(&bytes)).unwrap_err(),
            CodecError::BadValue("event kind")
        );
    }

    #[test]
    fn restore_continues_accumulation_in_place() {
        let mut r = Recorder::new(TelemetryMode::Summary);
        r.add(Counter::FlowsOpened, 2);
        r.observe(Hist::ProbeRttMs, 1.5);
        let checkpoint = r.take();

        let mut resumed = Recorder::new(TelemetryMode::Summary);
        resumed.restore(checkpoint);
        resumed.add(Counter::FlowsOpened, 1);
        resumed.observe(Hist::ProbeRttMs, 2.5);

        let mut straight = Recorder::new(TelemetryMode::Summary);
        straight.add(Counter::FlowsOpened, 2);
        straight.observe(Hist::ProbeRttMs, 1.5);
        straight.add(Counter::FlowsOpened, 1);
        straight.observe(Hist::ProbeRttMs, 2.5);

        assert_eq!(resumed.take(), straight.take());
    }
}
