//! The recorder: counters, histograms, packet records and events.

use crate::TelemetryMode;

/// Monotonic counters, one per observable. The enum order is the render
/// order, so adding a counter never reshuffles existing report lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Packets injected by a source host.
    PacketsSent,
    /// Packets forwarded by an intermediate node.
    PacketsForwarded,
    /// Packets delivered to their final node.
    PacketsDelivered,
    /// Packets dropped by a lossy link.
    PacketsDropped,
    /// TTLs that hit zero mid-path.
    TtlExpired,
    /// Events pushed onto a packet-walk calendar.
    CalendarEvents,
    /// Measurement flows opened through `Endpoint::probe`.
    FlowsOpened,
    /// Echo attempts consumed by RTT probes (including successes).
    EchoAttempts,
    /// Echo attempts beyond the first (retries after loss).
    ProbeRetransmits,
    /// RTT probes that exhausted every retry.
    ProbesLost,
    /// Traceroute runs.
    TracerouteRuns,
    /// Bytes moved by bulk transfers (spec bytes, not wire bytes).
    TransferBytes,
    /// Planned measurements executed by the campaign driver.
    PlansExecuted,
    /// Campaign records the executed plans produced.
    RecordsEmitted,
    /// Shards merged into the final report, in key order.
    ShardsMerged,
    /// Synthetic subscribers simulated by a fleet run.
    FleetUsers,
    /// Data sessions churned through by fleet subscribers.
    FleetSessions,
    /// Marketplace purchases made by fleet subscribers.
    FleetPurchases,
    /// Packets killed by the fault plane (dark gateways, DNS blackholes,
    /// CG-NAT rebind windows).
    FaultDrops,
    /// Packets that detoured through a registered failover gateway.
    FaultFailovers,
    /// Client-side backoff retries after an exhausted probe burn.
    ProbeBackoffs,
    /// Measurements that failed after every retry and were recorded as
    /// explicit failed rows.
    MeasurementsFailed,
}

impl Counter {
    /// Every counter, in render order.
    pub const ALL: [Counter; 22] = [
        Counter::PacketsSent,
        Counter::PacketsForwarded,
        Counter::PacketsDelivered,
        Counter::PacketsDropped,
        Counter::TtlExpired,
        Counter::CalendarEvents,
        Counter::FlowsOpened,
        Counter::EchoAttempts,
        Counter::ProbeRetransmits,
        Counter::ProbesLost,
        Counter::TracerouteRuns,
        Counter::TransferBytes,
        Counter::PlansExecuted,
        Counter::RecordsEmitted,
        Counter::ShardsMerged,
        Counter::FleetUsers,
        Counter::FleetSessions,
        Counter::FleetPurchases,
        Counter::FaultDrops,
        Counter::FaultFailovers,
        Counter::ProbeBackoffs,
        Counter::MeasurementsFailed,
    ];

    /// Stable snake_case name used in the summary report.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::PacketsSent => "packets_sent",
            Counter::PacketsForwarded => "packets_forwarded",
            Counter::PacketsDelivered => "packets_delivered",
            Counter::PacketsDropped => "packets_dropped",
            Counter::TtlExpired => "ttl_expired",
            Counter::CalendarEvents => "calendar_events",
            Counter::FlowsOpened => "flows_opened",
            Counter::EchoAttempts => "echo_attempts",
            Counter::ProbeRetransmits => "probe_retransmits",
            Counter::ProbesLost => "probes_lost",
            Counter::TracerouteRuns => "traceroute_runs",
            Counter::TransferBytes => "transfer_bytes",
            Counter::PlansExecuted => "plans_executed",
            Counter::RecordsEmitted => "records_emitted",
            Counter::ShardsMerged => "shards_merged",
            Counter::FleetUsers => "fleet_users",
            Counter::FleetSessions => "fleet_sessions",
            Counter::FleetPurchases => "fleet_purchases",
            Counter::FaultDrops => "fault_drops",
            Counter::FaultFailovers => "fault_failovers",
            Counter::ProbeBackoffs => "probe_backoffs",
            Counter::MeasurementsFailed => "measurements_failed",
        }
    }
}

/// The histogram series the recorder keeps. Buckets are fixed at compile
/// time — the precondition for bit-identical merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Successful probe round-trip times, milliseconds.
    ProbeRttMs,
    /// Hops recorded per traceroute.
    TraceHops,
    /// Pending events in the walk calendar after a schedule.
    CalendarDepth,
}

impl Hist {
    /// Every series, in render order.
    pub const ALL: [Hist; 3] = [Hist::ProbeRttMs, Hist::TraceHops, Hist::CalendarDepth];

    /// Stable snake_case name used in the summary report.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Hist::ProbeRttMs => "probe_rtt_ms",
            Hist::TraceHops => "trace_hops",
            Hist::CalendarDepth => "calendar_depth",
        }
    }

    /// Inclusive upper bounds of the finite buckets; one overflow bucket
    /// follows implicitly.
    #[must_use]
    pub fn bounds(self) -> &'static [f64] {
        match self {
            Hist::ProbeRttMs => &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 400.0, 800.0],
            Hist::TraceHops => &[2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0],
            Hist::CalendarDepth => &[1.0, 2.0, 4.0, 8.0, 16.0],
        }
    }
}

/// A fixed-bucket histogram: integer bucket counts plus a sum for mean
/// reporting. The sum is a float but stays deterministic because every
/// observation sequence that feeds it is shard-sequential and merges
/// happen in shard-key order.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    series: Hist,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// An empty histogram for `series`.
    #[must_use]
    pub fn new(series: Hist) -> Self {
        Histogram {
            series,
            counts: vec![0; series.bounds().len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// The series this histogram tracks.
    #[must_use]
    pub fn series(&self) -> Hist {
        self.series
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let bounds = self.series.bounds();
        let idx = bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Bucket counts, one per finite bound plus the overflow bucket.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Fold another histogram of the same series into this one.
    ///
    /// # Panics
    /// When the series differ — merging incompatible buckets would
    /// silently corrupt the report.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.series, other.series, "histogram series mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// What an [`Event`] is about.
#[derive(Debug, Clone, PartialEq)]
pub enum EventScope {
    /// A measurement flow, identified by its derived seed.
    Flow(u64),
    /// A campaign shard, identified by its stable key (`"device/PAK"`).
    Shard(String),
}

/// One structured telemetry event — a JSONL line in `jsonl` mode.
///
/// `at_ns` is sim-time (the completion time of the observation inside its
/// flow's walk), never wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Sim-time anchor in nanoseconds (0 for events with no clock).
    pub at_ns: u64,
    /// The flow or shard this event belongs to.
    pub scope: EventScope,
    /// Event kind (`"rtt"`, `"traceroute"`, `"measurement"`, `"shard"`).
    pub kind: &'static str,
    /// Free-form detail: measurement label, shard key…
    pub label: String,
    /// Primary value (RTT ms, hop count, merge index…), when meaningful.
    pub value: Option<f64>,
    /// Attempt count, when meaningful.
    pub attempts: Option<u32>,
}

impl Event {
    /// Render the event as one JSON object, stable field order.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"ev\":\"");
        out.push_str(self.kind);
        out.push('"');
        match &self.scope {
            EventScope::Flow(id) => {
                let _ = write!(out, ",\"flow\":\"{id:#018x}\"");
            }
            EventScope::Shard(key) => {
                let _ = write!(out, ",\"shard\":\"{}\"", escape_json(key));
            }
        }
        let _ = write!(out, ",\"label\":\"{}\"", escape_json(&self.label));
        if self.at_ns != 0 {
            let _ = write!(out, ",\"at_ns\":{}", self.at_ns);
        }
        if let Some(v) = self.value {
            if v.is_finite() {
                let _ = write!(out, ",\"value\":{v}");
            } else {
                out.push_str(",\"value\":null");
            }
        }
        if let Some(a) = self.attempts {
            let _ = write!(out, ",\"attempts\":{a}");
        }
        out.push('}');
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One packet-level record — the simulator's pcap line, kept as plain
/// integers so the telemetry crate needs no knowledge of netsim's types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Sim-time of the event, nanoseconds.
    pub at_ns: u64,
    /// Node index where it happened.
    pub node: u32,
    /// Kind code (the network layer owns the mapping).
    pub code: u8,
    /// Kind argument (e.g. remaining TTL for a forward).
    pub arg: u8,
}

/// The statically-dispatched recording surface. [`Recorder`] implements it
/// for real; [`NoopSink`] implements it as empty inline bodies, which is
/// what the disabled-telemetry Criterion comparison in `crates/bench`
/// measures against.
pub trait Sink {
    /// Add `n` to a counter.
    fn add(&mut self, c: Counter, n: u64);
    /// Record one histogram observation.
    fn observe(&mut self, h: Hist, value: f64);
    /// Record a structured event.
    fn push_event(&mut self, ev: Event);
    /// Is anything being recorded?
    fn active(&self) -> bool;
}

/// The no-op recorder: every method compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    #[inline(always)]
    fn add(&mut self, _c: Counter, _n: u64) {}
    #[inline(always)]
    fn observe(&mut self, _h: Hist, _value: f64) {}
    #[inline(always)]
    fn push_event(&mut self, _ev: Event) {}
    #[inline(always)]
    fn active(&self) -> bool {
        false
    }
}

/// Everything one recorder accumulated: the unit of cross-shard merging.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counter values, indexed by [`Counter`] discriminant.
    pub counters: [u64; Counter::ALL.len()],
    /// Histograms, indexed by [`Hist`] discriminant.
    pub hists: Vec<Histogram>,
    /// Structured events in recording order.
    pub events: Vec<Event>,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            counters: [0; Counter::ALL.len()],
            hists: Hist::ALL.iter().map(|&h| Histogram::new(h)).collect(),
            events: Vec::new(),
        }
    }
}

/// The concrete recorder a [`Network`](../../roam_netsim/net/struct.Network.html)
/// (and everything above it) writes into.
///
/// The mode gates accumulation: `Off` makes every method a single branch.
/// Packet tracing is a separate switch — the packet story is opt-in per
/// network because it records per hop, and it must work even with the
/// campaign-level mode off (that is how `Network::enable_tracing` keeps
/// its pre-telemetry behaviour).
#[derive(Debug, Clone)]
pub struct Recorder {
    mode: TelemetryMode,
    trace_packets: bool,
    snap: TelemetrySnapshot,
    packets: Vec<PacketRecord>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::off()
    }
}

impl Recorder {
    /// A disabled recorder — the zero-cost default.
    #[must_use]
    pub fn off() -> Self {
        Recorder::new(TelemetryMode::Off)
    }

    /// A recorder in the given mode.
    #[must_use]
    pub fn new(mode: TelemetryMode) -> Self {
        Recorder {
            mode,
            trace_packets: false,
            snap: TelemetrySnapshot::default(),
            packets: Vec::new(),
        }
    }

    /// The current mode.
    #[must_use]
    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// Switch modes in place (accumulated data is kept).
    pub fn set_mode(&mut self, mode: TelemetryMode) {
        self.mode = mode;
    }

    /// Should call sites bother constructing events?
    #[must_use]
    pub fn wants_events(&self) -> bool {
        self.mode.wants_events()
    }

    /// Start (or restart) the packet story. Previously captured packet
    /// records are discarded; counters and histograms are untouched.
    pub fn enable_packet_trace(&mut self) {
        self.trace_packets = true;
        self.packets.clear();
    }

    /// Stop recording packet records (the captured story is kept).
    pub fn disable_packet_trace(&mut self) {
        self.trace_packets = false;
    }

    /// The packet story captured so far. Unlike the pre-telemetry
    /// consume-once buffer, reading does not erase it.
    #[must_use]
    pub fn packet_records(&self) -> &[PacketRecord] {
        &self.packets
    }

    /// Record one packet-level event (no-op unless tracing is enabled).
    #[inline]
    pub fn packet(&mut self, at_ns: u64, node: u32, code: u8, arg: u8) {
        if self.trace_packets {
            self.packets.push(PacketRecord {
                at_ns,
                node,
                code,
                arg,
            });
        }
    }

    /// Drain the accumulated counters, histograms and events into a
    /// snapshot, leaving the recorder empty (mode and packet story are
    /// kept). This is the shard hand-off point.
    pub fn take(&mut self) -> TelemetrySnapshot {
        std::mem::take(&mut self.snap)
    }
}

impl Sink for Recorder {
    #[inline]
    fn add(&mut self, c: Counter, n: u64) {
        if self.mode.enabled() {
            self.snap.counters[c as usize] += n;
        }
    }

    #[inline]
    fn observe(&mut self, h: Hist, value: f64) {
        if self.mode.enabled() {
            self.snap.hists[h as usize].observe(value);
        }
    }

    #[inline]
    fn push_event(&mut self, ev: Event) {
        if self.mode.wants_events() {
            self.snap.events.push(ev);
        }
    }

    #[inline]
    fn active(&self) -> bool {
        self.mode.enabled() || self.trace_packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_only_when_enabled() {
        let mut off = Recorder::off();
        off.add(Counter::PacketsSent, 3);
        assert_eq!(off.take().counters[Counter::PacketsSent as usize], 0);

        let mut on = Recorder::new(TelemetryMode::Summary);
        on.add(Counter::PacketsSent, 3);
        on.add(Counter::PacketsSent, 2);
        assert_eq!(on.take().counters[Counter::PacketsSent as usize], 5);
    }

    #[test]
    fn histogram_buckets_and_merge() {
        let mut a = Histogram::new(Hist::ProbeRttMs);
        a.observe(0.5);
        a.observe(7.0);
        a.observe(5000.0); // overflow bucket
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[3], 1); // (5, 10]
        assert_eq!(*a.buckets().last().unwrap(), 1);

        let mut b = Histogram::new(Hist::ProbeRttMs);
        b.observe(7.5);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.buckets()[3], 2);
        assert!((a.sum() - (0.5 + 7.0 + 5000.0 + 7.5)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "series mismatch")]
    fn merging_different_series_panics() {
        let mut a = Histogram::new(Hist::ProbeRttMs);
        a.merge(&Histogram::new(Hist::TraceHops));
    }

    #[test]
    fn events_only_in_jsonl_mode() {
        let ev = Event {
            at_ns: 0,
            scope: EventScope::Flow(7),
            kind: "rtt",
            label: "ookla/0".into(),
            value: Some(12.5),
            attempts: Some(1),
        };
        let mut summary = Recorder::new(TelemetryMode::Summary);
        summary.push_event(ev.clone());
        assert!(summary.take().events.is_empty());

        let mut jsonl = Recorder::new(TelemetryMode::Jsonl);
        jsonl.push_event(ev);
        assert_eq!(jsonl.take().events.len(), 1);
    }

    #[test]
    fn event_json_is_stable_and_escaped() {
        let mut out = String::new();
        Event {
            at_ns: 42,
            scope: EventScope::Shard("device/\"X\"".into()),
            kind: "shard",
            label: "a,b".into(),
            value: Some(1.0),
            attempts: None,
        }
        .write_json(&mut out);
        assert_eq!(
            out,
            "{\"ev\":\"shard\",\"shard\":\"device/\\\"X\\\"\",\"label\":\"a,b\",\
             \"at_ns\":42,\"value\":1}"
        );
        let mut flow = String::new();
        Event {
            at_ns: 0,
            scope: EventScope::Flow(0xABCD),
            kind: "rtt",
            label: String::new(),
            value: Some(f64::INFINITY),
            attempts: Some(3),
        }
        .write_json(&mut flow);
        assert!(flow.contains("\"flow\":\"0x000000000000abcd\""));
        assert!(flow.contains("\"value\":null"));
        assert!(flow.contains("\"attempts\":3"));
    }

    #[test]
    fn packet_trace_is_repeatable_not_consume_once() {
        let mut r = Recorder::off();
        r.packet(1, 0, 0, 0); // tracing not enabled: dropped
        assert!(r.packet_records().is_empty());
        r.enable_packet_trace();
        r.packet(1, 0, 0, 0);
        r.packet(2, 1, 1, 63);
        assert_eq!(r.packet_records().len(), 2);
        // Reading again sees the same story.
        assert_eq!(r.packet_records().len(), 2);
        // Re-enabling restarts it.
        r.enable_packet_trace();
        assert!(r.packet_records().is_empty());
    }

    #[test]
    fn take_resets_but_keeps_mode() {
        let mut r = Recorder::new(TelemetryMode::Summary);
        r.add(Counter::FlowsOpened, 1);
        r.observe(Hist::ProbeRttMs, 3.0);
        let snap = r.take();
        assert_eq!(snap.counters[Counter::FlowsOpened as usize], 1);
        assert_eq!(snap.hists[Hist::ProbeRttMs as usize].count(), 1);
        let empty = r.take();
        assert_eq!(empty.counters[Counter::FlowsOpened as usize], 0);
        assert_eq!(r.mode(), TelemetryMode::Summary);
    }

    #[test]
    fn noop_sink_is_inert() {
        let mut s = NoopSink;
        s.add(Counter::PacketsSent, 1);
        s.observe(Hist::ProbeRttMs, 1.0);
        assert!(!s.active());
    }
}
