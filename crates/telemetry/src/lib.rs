//! Deterministic telemetry for the roamsim stack.
//!
//! Every table and figure of the paper is a *view* over quantities the
//! simulator computes anyway — latencies, attempts, path events, breakout
//! decisions. This crate is the instrumentation plane that keeps those
//! quantities instead of discarding them: monotonic [`Counter`]s,
//! fixed-bucket [`Histogram`]s, and structured [`Event`]s scoped to a flow
//! or a shard.
//!
//! The design contract mirrors the simulator's core guarantee:
//!
//! * **Determinism.** Everything a recorder emits is a pure function of
//!   what was measured. Counters and histogram buckets are integers;
//!   histogram sums are accumulated in shard-sequential order; events are
//!   recorded in shard-local order and merged in shard-key order. The
//!   rendered summary and JSONL stream are therefore byte-identical across
//!   `ROAM_PARALLEL` worker counts and across both `ROAM_TRANSPORT`
//!   backends (only transport-independent observables — packet walks,
//!   probe RTTs, byte counts — enter the telemetry plane).
//! * **Zero cost when off.** The disabled path is a single predictable
//!   branch per call site: no allocation, no bucket scan, no event
//!   construction. [`NoopSink`] is the statically-dispatched proof — a
//!   recorder whose every method is an empty inline body — and the
//!   `telemetry` Criterion group in `crates/bench` compares the two.
//!
//! Wall-clock time never enters a recorder: it is not deterministic. The
//! campaign runner reports per-shard wall time separately, outside the
//! byte-stable report.

pub mod recorder;
pub mod report;

pub use recorder::{
    Counter, Event, EventScope, Hist, Histogram, NoopSink, PacketRecord, Recorder, Sink,
    TelemetrySnapshot,
};
pub use report::{merge_shards, TelemetryReport};

/// What the telemetry plane does with what it records, selected by the
/// `ROAM_TELEMETRY` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// Record nothing (the default). The hot paths pay one branch.
    #[default]
    Off,
    /// Accumulate counters and histograms; render a per-run summary.
    Summary,
    /// Everything `Summary` does, plus a structured JSONL event stream.
    Jsonl,
}

impl TelemetryMode {
    /// Read the mode from `ROAM_TELEMETRY`: `summary` or `jsonl` enable
    /// the plane; unset, empty, `off` or anything else disable it. Read
    /// per call (never cached) so tests can flip it mid-process.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("ROAM_TELEMETRY") {
            Ok(v) => match v.trim() {
                "summary" => TelemetryMode::Summary,
                "jsonl" => TelemetryMode::Jsonl,
                _ => TelemetryMode::Off,
            },
            Err(_) => TelemetryMode::Off,
        }
    }

    /// Is any recording enabled?
    #[must_use]
    pub fn enabled(self) -> bool {
        self != TelemetryMode::Off
    }

    /// Does this mode keep a structured event stream?
    #[must_use]
    pub fn wants_events(self) -> bool {
        self == TelemetryMode::Jsonl
    }

    /// Knob value naming this mode.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TelemetryMode::Off => "off",
            TelemetryMode::Summary => "summary",
            TelemetryMode::Jsonl => "jsonl",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_reads_env_per_call() {
        std::env::remove_var("ROAM_TELEMETRY");
        assert_eq!(TelemetryMode::from_env(), TelemetryMode::Off);
        std::env::set_var("ROAM_TELEMETRY", "summary");
        assert_eq!(TelemetryMode::from_env(), TelemetryMode::Summary);
        std::env::set_var("ROAM_TELEMETRY", "jsonl");
        assert_eq!(TelemetryMode::from_env(), TelemetryMode::Jsonl);
        std::env::set_var("ROAM_TELEMETRY", "verbose");
        assert_eq!(TelemetryMode::from_env(), TelemetryMode::Off);
        std::env::remove_var("ROAM_TELEMETRY");
    }

    #[test]
    fn mode_predicates() {
        assert!(!TelemetryMode::Off.enabled());
        assert!(TelemetryMode::Summary.enabled());
        assert!(!TelemetryMode::Summary.wants_events());
        assert!(TelemetryMode::Jsonl.wants_events());
        assert_eq!(TelemetryMode::Jsonl.label(), "jsonl");
    }
}
