//! The merged, renderable view of a run's telemetry.

use crate::recorder::{Counter, Event, EventScope, Hist, Histogram, TelemetrySnapshot};
use crate::TelemetryMode;
use std::fmt::Write as _;

/// Telemetry merged across shards, in shard-key order.
///
/// The renderers are the determinism boundary: [`TelemetryReport::summary`]
/// and [`TelemetryReport::jsonl`] must produce the same bytes for the same
/// measured work regardless of worker count or transport backend. That
/// falls out of the construction — integer counters, fixed buckets,
/// ordered merges — and is pinned by `tests/telemetry_determinism.rs`.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    mode: TelemetryMode,
    merged: TelemetrySnapshot,
}

impl TelemetryReport {
    /// An empty report for a run in `mode`.
    #[must_use]
    pub fn new(mode: TelemetryMode) -> Self {
        TelemetryReport {
            mode,
            merged: TelemetrySnapshot::default(),
        }
    }

    /// The mode the run was recorded under.
    #[must_use]
    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// Fold one shard's snapshot in. Call in shard-key order — the event
    /// stream concatenates in call order.
    pub fn absorb(&mut self, snap: TelemetrySnapshot) {
        for (a, b) in self.merged.counters.iter_mut().zip(&snap.counters) {
            *a += b;
        }
        for (a, b) in self.merged.hists.iter_mut().zip(&snap.hists) {
            a.merge(b);
        }
        if self.mode.wants_events() {
            self.merged.events.extend(snap.events);
        }
    }

    /// Add to a merged counter directly (runner-level counts such as
    /// [`Counter::ShardsMerged`]).
    pub fn add(&mut self, c: Counter, n: u64) {
        if self.mode.enabled() {
            self.merged.counters[c as usize] += n;
        }
    }

    /// Append a runner-level event (shard merges, phase markers).
    pub fn push_event(&mut self, ev: Event) {
        if self.mode.wants_events() {
            self.merged.events.push(ev);
        }
    }

    /// A merged counter's value.
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.merged.counters[c as usize]
    }

    /// A merged histogram.
    #[must_use]
    pub fn histogram(&self, h: Hist) -> &Histogram {
        &self.merged.hists[h as usize]
    }

    /// The merged event stream.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.merged.events
    }

    /// The fixed-layout per-run summary. Every counter and every bucket is
    /// printed (zeros included), so the layout never depends on the data.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== roam-telemetry summary (mode={}) ==",
            self.mode.label()
        );
        let _ = writeln!(out, "counters:");
        for c in Counter::ALL {
            let _ = writeln!(out, "  {:<20} {}", c.name(), self.counter(c));
        }
        let _ = writeln!(out, "histograms:");
        for h in Hist::ALL {
            let hist = self.histogram(h);
            let mean = if hist.count() > 0 {
                hist.sum() / hist.count() as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<20} count={} sum={:.3} mean={:.3}",
                h.name(),
                hist.count(),
                hist.sum(),
                mean
            );
            for (i, n) in hist.buckets().iter().enumerate() {
                let label = match h.bounds().get(i) {
                    Some(b) => format!("<= {b}"),
                    None => "+inf".to_string(),
                };
                let _ = writeln!(out, "    {label:<10} {n}");
            }
        }
        let _ = writeln!(out, "events: {}", self.merged.events.len());
        out
    }

    /// The JSONL event stream: one JSON object per line, in merge order.
    /// Empty unless the run recorded in [`TelemetryMode::Jsonl`].
    #[must_use]
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.merged.events {
            ev.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// What this run's mode says to emit: nothing, the summary, or the
    /// event stream followed by the summary.
    #[must_use]
    pub fn render(&self) -> String {
        match self.mode {
            TelemetryMode::Off => String::new(),
            TelemetryMode::Summary => self.summary(),
            TelemetryMode::Jsonl => {
                let mut out = self.jsonl();
                out.push_str(&self.summary());
                out
            }
        }
    }
}

/// Convenience: build a report from per-shard snapshots plus their stable
/// keys, stamping the merge order into counters and (in `jsonl` mode) one
/// `shard` event per shard.
#[must_use]
pub fn merge_shards(
    mode: TelemetryMode,
    shards: Vec<(String, TelemetrySnapshot)>,
) -> TelemetryReport {
    let mut report = TelemetryReport::new(mode);
    for (idx, (key, snap)) in shards.into_iter().enumerate() {
        report.absorb(snap);
        report.add(Counter::ShardsMerged, 1);
        report.push_event(Event {
            at_ns: 0,
            scope: EventScope::Shard(key),
            kind: "shard",
            label: "merged".into(),
            value: Some(idx as f64),
            attempts: None,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, Sink};

    fn snap(rtt: f64) -> TelemetrySnapshot {
        let mut r = Recorder::new(TelemetryMode::Jsonl);
        r.add(Counter::PacketsSent, 2);
        r.observe(Hist::ProbeRttMs, rtt);
        r.push_event(Event {
            at_ns: 1,
            scope: EventScope::Flow(1),
            kind: "rtt",
            label: "x".into(),
            value: Some(rtt),
            attempts: Some(1),
        });
        r.take()
    }

    #[test]
    fn merge_order_is_the_output_order() {
        let a = merge_shards(
            TelemetryMode::Jsonl,
            vec![("s/a".into(), snap(1.0)), ("s/b".into(), snap(2.0))],
        );
        assert_eq!(a.counter(Counter::PacketsSent), 4);
        assert_eq!(a.counter(Counter::ShardsMerged), 2);
        // flow event of shard a, shard-merge marker a, flow event b, marker b
        assert_eq!(a.events().len(), 4);
        let stream = a.jsonl();
        let lines: Vec<&str> = stream.lines().collect();
        assert!(lines[0].contains("\"value\":1"));
        assert!(lines[1].contains("s/a"));
        assert!(lines[2].contains("\"value\":2"));
        assert!(lines[3].contains("s/b"));
    }

    #[test]
    fn summary_layout_is_fixed() {
        let empty = TelemetryReport::new(TelemetryMode::Summary);
        let s = empty.summary();
        for c in Counter::ALL {
            assert!(s.contains(c.name()), "missing {}", c.name());
        }
        for h in Hist::ALL {
            assert!(s.contains(h.name()), "missing {}", h.name());
        }
        assert!(s.ends_with("events: 0\n"));
    }

    #[test]
    fn render_follows_mode() {
        assert!(TelemetryReport::new(TelemetryMode::Off).render().is_empty());
        let summary = merge_shards(TelemetryMode::Summary, vec![("k".into(), snap(1.0))]);
        assert!(summary.render().starts_with("== roam-telemetry summary"));
        assert!(summary.jsonl().is_empty(), "summary mode keeps no events");
        let jsonl = merge_shards(TelemetryMode::Jsonl, vec![("k".into(), snap(1.0))]);
        let r = jsonl.render();
        assert!(r.starts_with("{\"ev\":"));
        assert!(r.contains("== roam-telemetry summary"));
    }
}
