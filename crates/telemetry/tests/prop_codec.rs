//! Property tests for the telemetry snapshot wire form. A snapshot that
//! crosses a checkpoint file or a worker pipe must come back carrying the
//! exact float bit patterns it left with (histogram sums are sequential
//! `f64` accumulations — the resume path *continues* them, so even the
//! lowest mantissa bit matters), and merging decoded shard snapshots must
//! match merging the originals.

use proptest::prelude::*;
use roam_codec::{Decoder, Encoder};
use roam_telemetry::{
    merge_shards, Counter, Event, EventScope, Hist, Recorder, Sink, TelemetryMode,
    TelemetrySnapshot,
};

/// One recorded action: a counter bump, a histogram observation or an
/// event push, in recording order.
#[derive(Debug, Clone)]
enum Action {
    Add(usize, u64),
    Observe(usize, f64),
    Push(u64, Option<String>, usize, Option<f64>, Option<u32>),
}

fn arb_value() -> impl Strategy<Value = f64> {
    // Finite arm repeated for weight: non-finite values stay a minority
    // of each stream, but every run still exercises them.
    prop_oneof![
        -1e6f64..1e6,
        -1e6f64..1e6,
        -1e6f64..1e6,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

fn arb_action() -> impl Strategy<Value = Action> {
    let arb_push = (
        any::<u64>(),
        (any::<bool>(), "[a-z/0-9]{1,12}").prop_map(|(some, key)| some.then_some(key)),
        0usize..5,
        (any::<bool>(), arb_value()).prop_map(|(some, v)| some.then_some(v)),
        (any::<bool>(), any::<u32>()).prop_map(|(some, a)| some.then_some(a)),
    )
        .prop_map(|(id, shard, kind, value, attempts)| {
            Action::Push(id, shard, kind, value, attempts)
        });
    prop_oneof![
        (0usize..Counter::ALL.len(), 0u64..1000).prop_map(|(c, n)| Action::Add(c, n)),
        (0usize..Hist::ALL.len(), arb_value()).prop_map(|(h, v)| Action::Observe(h, v)),
        arb_push,
    ]
}

const KINDS: [&str; 5] = ["rtt", "traceroute", "measurement", "plan", "shard"];

fn record(actions: &[Action]) -> TelemetrySnapshot {
    let mut r = Recorder::new(TelemetryMode::Jsonl);
    for a in actions {
        match a {
            Action::Add(c, n) => r.add(Counter::ALL[*c], *n),
            Action::Observe(h, v) => r.observe(Hist::ALL[*h], *v),
            Action::Push(id, shard, kind, value, attempts) => r.push_event(Event {
                at_ns: *id % 1000,
                scope: match shard {
                    Some(key) => EventScope::Shard(key.clone()),
                    None => EventScope::Flow(*id),
                },
                kind: KINDS[*kind],
                label: format!("label/{id}"),
                value: *value,
                attempts: *attempts,
            }),
        }
    }
    r.take()
}

fn round_trip(snap: &TelemetrySnapshot) -> TelemetrySnapshot {
    let mut e = Encoder::new();
    snap.encode_fields(&mut e);
    let bytes = e.into_bytes();
    TelemetrySnapshot::decode_fields(&mut Decoder::new(&bytes)).expect("clean round trip")
}

/// Bit-exact snapshot equality: `PartialEq` would treat NaN sums and NaN
/// event values as unequal, which is exactly the case the codec must
/// preserve.
fn assert_bit_identical(a: &TelemetrySnapshot, b: &TelemetrySnapshot) {
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.hists.len(), b.hists.len());
    for (x, y) in a.hists.iter().zip(&b.hists) {
        assert_eq!(x.series(), y.series());
        assert_eq!(x.buckets(), y.buckets());
        assert_eq!(x.count(), y.count());
        assert_eq!(x.sum().to_bits(), y.sum().to_bits());
    }
    assert_eq!(a.events.len(), b.events.len());
    for (x, y) in a.events.iter().zip(&b.events) {
        assert_eq!(x.at_ns, y.at_ns);
        assert_eq!(&x.scope, &y.scope);
        assert_eq!(x.kind, y.kind);
        assert_eq!(&x.label, &y.label);
        assert_eq!(x.value.map(f64::to_bits), y.value.map(f64::to_bits));
        assert_eq!(x.attempts, y.attempts);
    }
}

proptest! {
    #[test]
    fn snapshot_round_trip_is_bit_identical(
        actions in proptest::collection::vec(arb_action(), 0..60),
    ) {
        let snap = record(&actions);
        assert_bit_identical(&round_trip(&snap), &snap);
    }

    #[test]
    fn decoded_shard_snapshots_merge_like_in_memory_ones(
        left in proptest::collection::vec(arb_action(), 0..40),
        right in proptest::collection::vec(arb_action(), 0..40),
    ) {
        let (a, b) = (record(&left), record(&right));
        let mem = merge_shards(
            TelemetryMode::Jsonl,
            vec![("s/000".to_string(), a.clone()), ("s/001".to_string(), b.clone())],
        );
        let wire = merge_shards(
            TelemetryMode::Jsonl,
            vec![("s/000".to_string(), round_trip(&a)), ("s/001".to_string(), round_trip(&b))],
        );
        // The merged reports render identically — the user-visible
        // equality the fleet plane depends on.
        prop_assert_eq!(wire.render(), mem.render());
    }
}
