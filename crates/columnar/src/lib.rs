//! Zero-copy columnar dataset format and streaming query engine.
//!
//! This crate is the storage half of the export redesign: instead of
//! rendering every measurement record into a per-row CSV `String` and
//! re-walking typed record vectors in every analysis bin, datasets are
//! stored as **typed column pages** — u32s, raw f64 bits, dictionary
//! codes — with one null bit per row for failed or non-finite fields.
//! Pages are fixed-width little-endian byte buffers, so the owned
//! [`Table`] built row-by-row and the borrowed [`TableView`] parsed out
//! of a `roam-codec` sealed frame share the same representation and the
//! same query engine ([`Query`]); parsing a frame copies nothing but
//! the schema.
//!
//! Layout, bottom-up:
//!
//! * a **page** is one column's slice of one chunk: `rows × width`
//!   bytes of little-endian values plus a packed null bitmap (bit set =
//!   null; enum columns are never null and carry an empty bitmap);
//! * a **chunk** holds up to [`CHUNK_ROWS`] rows of every column, so
//!   scans touch one column's bytes and skip the rest;
//! * a **table** is a schema, per-column string dictionaries, and a
//!   chunk list; [`Table::to_frame`] seals it into one integrity-hashed
//!   frame (kind [`FRAME_KIND_TABLE`]) that [`TableView::parse_frame`]
//!   reopens without copying page bytes.
//!
//! The query engine streams chunk-by-chunk: filters bind column
//! indices once, rows are tested against the bound pages, and
//! terminals either collect exact values (for byte-identical CSV
//! parity) or fold groups into `roam-stats` [`QuantileSketch`]es.
//! Group output ordering is stable by construction: ascending numeric
//! key for u32 and enum columns, ascending label for dictionary
//! columns — never insertion order.
//!
//! [`QuantileSketch`]: roam_stats::QuantileSketch

pub mod csv;
pub mod query;
pub mod table;
pub mod view;

pub use csv::{csv_header, push_csv_field, push_value, render_csv};
pub use query::{Group, GroupKey, Query};
pub use table::{Table, TableBuilder};
pub use view::TableView;

/// Frame kind claimed by sealed columnar tables (campaign/fleet frames
/// from `roam-fleet` use kinds below 0x10).
pub const FRAME_KIND_TABLE: u16 = 0x0010;

/// Wire version of the table payload layout.
pub const TABLE_VERSION: u16 = 1;

/// Rows per chunk: large enough that per-chunk bookkeeping vanishes,
/// small enough that a chunk's working set stays cache-resident.
pub const CHUNK_ROWS: usize = 4096;

/// Typed storage class of one column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ColKind {
    /// Nullable unsigned 32-bit integer, 4 bytes/row.
    U32,
    /// Nullable IPv4 address stored as a big-endian-ordered u32 in
    /// 4 bytes/row, rendered dotted-quad.
    Ipv4,
    /// Nullable f64 stored as raw bits, 8 bytes/row; non-finite values
    /// are normalized to null on insert. `prec` is the CSV rendering
    /// precision (`{:.prec$}`).
    F64 { prec: u8 },
    /// Nullable interned string: 4-byte dictionary id per row, labels
    /// stored once per column.
    Dict,
    /// Closed label set known at schema time: 1-byte code per row,
    /// never null. Used for status, booleans, and config enums.
    Enum(Vec<String>),
}

impl ColKind {
    /// An `Enum` kind from static labels.
    #[must_use]
    pub fn enumeration(labels: &[&str]) -> Self {
        ColKind::Enum(labels.iter().map(|s| (*s).to_string()).collect())
    }

    /// Bytes per row in a data page.
    #[must_use]
    pub fn width(&self) -> usize {
        match self {
            ColKind::U32 | ColKind::Ipv4 | ColKind::Dict => 4,
            ColKind::F64 { .. } => 8,
            ColKind::Enum(_) => 1,
        }
    }

    /// Whether rows of this column may be null (carry a bitmap).
    #[must_use]
    pub fn nullable(&self) -> bool {
        !matches!(self, ColKind::Enum(_))
    }
}

/// One named, typed column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub kind: ColKind,
}

/// A column spec, for building [`Schema`]s tersely.
#[must_use]
pub fn field(name: &str, kind: ColKind) -> Field {
    Field {
        name: name.to_string(),
        kind,
    }
}

/// Ordered column layout of one table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    #[must_use]
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Column index by name.
    #[must_use]
    pub fn col(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// One cell on its way into a sink or table: the untyped bridge
/// between record walks and column pages. The paired [`ColKind`] in
/// the schema decides interpretation (`U32` vs `Ipv4`, float
/// precision, dict vs enum labels).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CellValue<'a> {
    /// Integer-shaped cell (`ColKind::U32` / `ColKind::Ipv4`).
    U32(Option<u32>),
    /// Float cell; `None` and non-finite both land as null.
    F64(Option<f64>),
    /// Free-text cell, interned per column (`ColKind::Dict`).
    Str(Option<&'a str>),
    /// Enum code (`ColKind::Enum`), index into the label set.
    Code(u8),
}

/// Borrowed view of one column's slice of one chunk.
#[derive(Clone, Copy, Debug)]
pub struct PageRef<'a> {
    pub rows: usize,
    pub width: usize,
    pub data: &'a [u8],
    /// Packed null bitmap, bit set = null; empty for non-null columns.
    pub nulls: &'a [u8],
}

impl<'a> PageRef<'a> {
    #[inline]
    #[must_use]
    pub fn is_null(&self, row: usize) -> bool {
        !self.nulls.is_empty() && self.nulls[row / 8] & (1 << (row % 8)) != 0
    }

    #[inline]
    #[must_use]
    pub fn u32_at(&self, row: usize) -> Option<u32> {
        if self.is_null(row) {
            return None;
        }
        let off = row * 4;
        Some(u32::from_le_bytes(
            self.data[off..off + 4].try_into().expect("page bounds"),
        ))
    }

    #[inline]
    #[must_use]
    pub fn f64_at(&self, row: usize) -> Option<f64> {
        if self.is_null(row) {
            return None;
        }
        let off = row * 8;
        Some(f64::from_le_bytes(
            self.data[off..off + 8].try_into().expect("page bounds"),
        ))
    }

    #[inline]
    #[must_use]
    pub fn code_at(&self, row: usize) -> u8 {
        self.data[row]
    }
}

/// Anything the query engine and CSV renderer can scan: the owned
/// [`Table`] and the zero-copy [`TableView`] both implement this, so
/// a query written against fresh in-memory data runs unchanged against
/// a parsed frame.
pub trait ColumnarSource {
    fn schema(&self) -> &Schema;
    fn rows(&self) -> u64;
    fn chunk_count(&self) -> usize;
    /// Row count of one chunk.
    fn chunk_rows(&self, chunk: usize) -> usize;
    /// Page of `col` within `chunk`.
    fn page(&self, chunk: usize, col: usize) -> PageRef<'_>;
    /// Dictionary label for a `Dict` column id.
    fn dict_label(&self, col: usize, id: u32) -> &str;
    /// Reverse dictionary lookup for a `Dict` column.
    fn dict_lookup(&self, col: usize, label: &str) -> Option<u32>;
    /// Number of interned labels in a `Dict` column.
    fn dict_len(&self, col: usize) -> usize;

    /// Label for any coded column: enum labels come from the schema,
    /// dict labels from the per-column dictionary.
    fn label_of(&self, col: usize, code: u32) -> &str {
        match &self.schema().fields()[col].kind {
            ColKind::Enum(labels) => &labels[code as usize],
            ColKind::Dict => self.dict_label(col, code),
            _ => panic!("column {col} has no labels"),
        }
    }

    /// Code for a label in any coded column.
    fn code_of(&self, col: usize, label: &str) -> Option<u32> {
        match &self.schema().fields()[col].kind {
            ColKind::Enum(labels) => labels
                .iter()
                .position(|l| l == label)
                .map(|i| u32::try_from(i).expect("enum labels fit u32")),
            ColKind::Dict => self.dict_lookup(col, label),
            _ => panic!("column {col} has no labels"),
        }
    }
}

/// Bytes needed for a null bitmap over `rows` rows.
#[must_use]
pub(crate) fn bitmap_len(rows: usize) -> usize {
    rows.div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_widths_and_nullability() {
        assert_eq!(ColKind::U32.width(), 4);
        assert_eq!(ColKind::Ipv4.width(), 4);
        assert_eq!(ColKind::F64 { prec: 3 }.width(), 8);
        assert_eq!(ColKind::Dict.width(), 4);
        assert_eq!(ColKind::enumeration(&["a", "b"]).width(), 1);
        assert!(ColKind::U32.nullable());
        assert!(!ColKind::enumeration(&["a"]).nullable());
    }

    #[test]
    fn schema_resolves_columns_by_name() {
        let s = Schema::new(vec![
            field("country", ColKind::Dict),
            field("down_mbps", ColKind::F64 { prec: 3 }),
        ]);
        assert_eq!(s.col("down_mbps"), Some(1));
        assert_eq!(s.col("nope"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn null_bitmap_marks_rows() {
        let nulls = [0b0000_0101u8];
        let page = PageRef {
            rows: 3,
            width: 4,
            data: &[0; 12],
            nulls: &nulls,
        };
        assert!(page.is_null(0));
        assert!(!page.is_null(1));
        assert!(page.is_null(2));
        let empty = PageRef {
            rows: 3,
            width: 1,
            data: &[0; 3],
            nulls: &[],
        };
        assert!(!empty.is_null(2));
    }
}
