//! Owned tables: row-at-a-time building, chunk sealing, frame encoding.

use std::collections::HashMap;

use roam_codec::Encoder;

use crate::{bitmap_len, CellValue, ColKind, ColumnarSource, PageRef, Schema, CHUNK_ROWS};

/// One sealed chunk: every column's page over the same row range.
#[derive(Clone, Debug)]
pub(crate) struct Chunk {
    pub(crate) rows: usize,
    pub(crate) data: Vec<Vec<u8>>,
    pub(crate) nulls: Vec<Vec<u8>>,
}

/// Per-column string dictionary: insertion-ordered labels plus a
/// reverse index. Ids are assigned in first-appearance order, so a
/// deterministic row stream yields deterministic pages.
#[derive(Clone, Debug, Default)]
struct DictTable {
    labels: Vec<String>,
    index: HashMap<String, u32>,
}

impl DictTable {
    fn intern(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.index.get(label) {
            return id;
        }
        let id = u32::try_from(self.labels.len()).expect("dict fits u32");
        self.labels.push(label.to_string());
        self.index.insert(label.to_string(), id);
        id
    }
}

/// Accumulates rows into column pages; [`TableBuilder::finish`] seals
/// the tail chunk and yields an immutable, queryable [`Table`].
#[derive(Clone, Debug)]
pub struct TableBuilder {
    schema: Schema,
    dicts: Vec<DictTable>,
    chunks: Vec<Chunk>,
    cur_data: Vec<Vec<u8>>,
    cur_nulls: Vec<Vec<u8>>,
    cur_rows: usize,
    rows: u64,
}

impl TableBuilder {
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        let cols = schema.len();
        let dicts = vec![DictTable::default(); cols];
        TableBuilder {
            schema,
            dicts,
            chunks: Vec::new(),
            cur_data: vec![Vec::new(); cols],
            cur_nulls: vec![Vec::new(); cols],
            cur_rows: 0,
            rows: 0,
        }
    }

    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Append one row. `cells` must match the schema in arity and
    /// shape; non-finite floats and `None`s land as null bits.
    ///
    /// # Panics
    /// On arity or cell/kind mismatch — schemas are static per
    /// dataset, so a mismatch is a programming error, not data.
    pub fn push_row(&mut self, cells: &[CellValue<'_>]) {
        assert_eq!(
            cells.len(),
            self.schema.len(),
            "row arity does not match schema"
        );
        let row = self.cur_rows;
        for (col, cell) in cells.iter().enumerate() {
            let kind = self.schema.fields()[col].kind.clone();
            let (word, null): (u64, bool) = match (&kind, cell) {
                (ColKind::U32 | ColKind::Ipv4, CellValue::U32(v)) => {
                    (u64::from(v.unwrap_or(0)), v.is_none())
                }
                (ColKind::F64 { .. }, CellValue::F64(v)) => {
                    let fin = v.filter(|x| x.is_finite());
                    (fin.unwrap_or(0.0).to_bits(), fin.is_none())
                }
                (ColKind::Dict, CellValue::Str(v)) => match v {
                    Some(s) => (u64::from(self.dicts[col].intern(s)), false),
                    None => (0, true),
                },
                (ColKind::Enum(labels), CellValue::Code(c)) => {
                    assert!(
                        (*c as usize) < labels.len(),
                        "enum code {c} out of range for column {col}"
                    );
                    (u64::from(*c), false)
                }
                (kind, cell) => panic!("cell {cell:?} does not fit column {col} kind {kind:?}"),
            };
            let data = &mut self.cur_data[col];
            match kind.width() {
                1 => data.push(word as u8),
                4 => data.extend_from_slice(&(word as u32).to_le_bytes()),
                _ => data.extend_from_slice(&word.to_le_bytes()),
            }
            if kind.nullable() {
                let nulls = &mut self.cur_nulls[col];
                if nulls.len() < bitmap_len(row + 1) {
                    nulls.push(0);
                }
                if null {
                    nulls[row / 8] |= 1 << (row % 8);
                }
            }
        }
        self.cur_rows += 1;
        self.rows += 1;
        if self.cur_rows == CHUNK_ROWS {
            self.seal_chunk();
        }
    }

    fn seal_chunk(&mut self) {
        if self.cur_rows == 0 {
            return;
        }
        let cols = self.schema.len();
        let data = std::mem::replace(&mut self.cur_data, vec![Vec::new(); cols]);
        let nulls = std::mem::replace(&mut self.cur_nulls, vec![Vec::new(); cols]);
        self.chunks.push(Chunk {
            rows: self.cur_rows,
            data,
            nulls,
        });
        self.cur_rows = 0;
    }

    /// Seal the tail chunk and freeze into a queryable [`Table`].
    #[must_use]
    pub fn finish(mut self) -> Table {
        self.seal_chunk();
        Table {
            schema: self.schema,
            dicts: self.dicts,
            chunks: self.chunks,
            rows: self.rows,
        }
    }
}

/// An immutable columnar dataset: schema, dictionaries, chunked pages.
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    dicts: Vec<DictTable>,
    chunks: Vec<Chunk>,
    rows: u64,
}

impl Table {
    /// Encode into one sealed, integrity-hashed frame
    /// (kind [`FRAME_KIND_TABLE`], version [`TABLE_VERSION`]).
    ///
    /// Payload fields: tag 1 row count; tag 2 one section per schema
    /// field (1 name, 2 kind code, 3 f64 precision, 4 repeated enum
    /// label); tag 3 one section per dict column (1 column index,
    /// 2 repeated label); tag 4 one section per chunk (1 row count,
    /// then per column in schema order: 2 page bytes, 3 null bitmap).
    ///
    /// [`FRAME_KIND_TABLE`]: crate::FRAME_KIND_TABLE
    /// [`TABLE_VERSION`]: crate::TABLE_VERSION
    #[must_use]
    pub fn to_frame(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u64(1, self.rows);
        for f in self.schema.fields() {
            enc.section(2, |s| {
                s.str(1, &f.name);
                let code = match &f.kind {
                    ColKind::U32 => 0,
                    ColKind::Ipv4 => 1,
                    ColKind::F64 { .. } => 2,
                    ColKind::Dict => 3,
                    ColKind::Enum(_) => 4,
                };
                s.u64(2, code);
                if let ColKind::F64 { prec } = f.kind {
                    s.u64(3, u64::from(prec));
                }
                if let ColKind::Enum(labels) = &f.kind {
                    for label in labels {
                        s.str(4, label);
                    }
                }
            });
        }
        for (col, dict) in self.dicts.iter().enumerate() {
            if !matches!(self.schema.fields()[col].kind, ColKind::Dict) {
                continue;
            }
            enc.section(3, |s| {
                s.u64(1, col as u64);
                for label in &dict.labels {
                    s.str(2, label);
                }
            });
        }
        for chunk in &self.chunks {
            enc.section(4, |s| {
                s.u64(1, chunk.rows as u64);
                for col in 0..self.schema.len() {
                    s.bytes(2, &chunk.data[col]);
                    s.bytes(3, &chunk.nulls[col]);
                }
            });
        }
        enc.into_frame(crate::FRAME_KIND_TABLE, crate::TABLE_VERSION)
    }
}

impl ColumnarSource for Table {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn rows(&self) -> u64 {
        self.rows
    }

    fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    fn chunk_rows(&self, chunk: usize) -> usize {
        self.chunks[chunk].rows
    }

    fn page(&self, chunk: usize, col: usize) -> PageRef<'_> {
        let c = &self.chunks[chunk];
        PageRef {
            rows: c.rows,
            width: self.schema.fields()[col].kind.width(),
            data: &c.data[col],
            nulls: &c.nulls[col],
        }
    }

    fn dict_label(&self, col: usize, id: u32) -> &str {
        &self.dicts[col].labels[id as usize]
    }

    fn dict_lookup(&self, col: usize, label: &str) -> Option<u32> {
        self.dicts[col].index.get(label).copied()
    }

    fn dict_len(&self, col: usize) -> usize {
        self.dicts[col].labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            field("country", ColKind::Dict),
            field("rtt_ms", ColKind::F64 { prec: 3 }),
            field("attempts", ColKind::U32),
            field("status", ColKind::enumeration(&["ok", "timeout"])),
        ])
    }

    #[test]
    fn rows_round_trip_through_pages() {
        let mut b = TableBuilder::new(demo_schema());
        b.push_row(&[
            CellValue::Str(Some("PAK")),
            CellValue::F64(Some(12.5)),
            CellValue::U32(Some(1)),
            CellValue::Code(0),
        ]);
        b.push_row(&[
            CellValue::Str(Some("ARE")),
            CellValue::F64(Some(f64::NAN)),
            CellValue::U32(None),
            CellValue::Code(1),
        ]);
        b.push_row(&[
            CellValue::Str(Some("PAK")),
            CellValue::F64(None),
            CellValue::U32(Some(3)),
            CellValue::Code(0),
        ]);
        let t = b.finish();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.chunk_count(), 1);
        assert_eq!(t.dict_len(0), 2);
        assert_eq!(t.dict_lookup(0, "PAK"), Some(0));
        assert_eq!(t.label_of(0, 1), "ARE");
        let country = t.page(0, 0);
        assert_eq!(country.u32_at(2), Some(0));
        let rtt = t.page(0, 1);
        assert_eq!(rtt.f64_at(0), Some(12.5));
        assert_eq!(rtt.f64_at(1), None, "NaN lands as null");
        assert_eq!(rtt.f64_at(2), None);
        let attempts = t.page(0, 2);
        assert_eq!(attempts.u32_at(1), None);
        assert_eq!(attempts.u32_at(2), Some(3));
        let status = t.page(0, 3);
        assert_eq!(status.code_at(1), 1);
        assert!(!status.is_null(1));
    }

    #[test]
    fn chunks_seal_at_the_row_cap() {
        let mut b = TableBuilder::new(Schema::new(vec![field("v", ColKind::U32)]));
        for i in 0..(CHUNK_ROWS as u32 + 10) {
            b.push_row(&[CellValue::U32(Some(i))]);
        }
        let t = b.finish();
        assert_eq!(t.chunk_count(), 2);
        assert_eq!(t.chunk_rows(0), CHUNK_ROWS);
        assert_eq!(t.chunk_rows(1), 10);
        assert_eq!(t.page(1, 0).u32_at(9), Some(CHUNK_ROWS as u32 + 9));
    }

    #[test]
    #[should_panic(expected = "does not fit column")]
    fn kind_mismatch_panics() {
        let mut b = TableBuilder::new(Schema::new(vec![field("v", ColKind::U32)]));
        b.push_row(&[CellValue::F64(Some(1.0))]);
    }
}
