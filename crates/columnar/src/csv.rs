//! CSV rendering: one shared cell renderer so the row-streaming CSV
//! sink and column-page rendering produce byte-identical output.
//!
//! The dialect matches the historical exporter exactly: fields are
//! quoted only when they contain a comma or a quote (quotes doubled),
//! null cells render as empty fields, floats render at the column's
//! declared precision, and rows end in `\n`.

use std::fmt::Write as _;
use std::net::Ipv4Addr;

use crate::{CellValue, ColKind, ColumnarSource};

/// Append one free-text CSV field, quoting only when needed.
pub fn push_csv_field(out: &mut String, s: &str) {
    if s.contains(',') || s.contains('"') {
        out.push('"');
        for ch in s.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Append one cell rendered under its column kind. Null cells append
/// nothing (an empty CSV field).
///
/// # Panics
/// On a cell/kind mismatch; schemas are static per dataset.
pub fn push_value(out: &mut String, kind: &ColKind, cell: &CellValue<'_>) {
    match (kind, cell) {
        (ColKind::U32, CellValue::U32(Some(v))) => {
            let _ = write!(out, "{v}");
        }
        (ColKind::Ipv4, CellValue::U32(Some(v))) => {
            let _ = write!(out, "{}", Ipv4Addr::from(*v));
        }
        (ColKind::F64 { prec }, CellValue::F64(Some(v))) if v.is_finite() => {
            let _ = write!(out, "{:.*}", usize::from(*prec), v);
        }
        (ColKind::Dict, CellValue::Str(Some(s))) => push_csv_field(out, s),
        (ColKind::Enum(labels), CellValue::Code(c)) => push_csv_field(out, &labels[*c as usize]),
        (ColKind::U32 | ColKind::Ipv4, CellValue::U32(None))
        | (ColKind::F64 { .. }, CellValue::F64(_))
        | (ColKind::Dict, CellValue::Str(None)) => {}
        (kind, cell) => panic!("cell {cell:?} does not render under kind {kind:?}"),
    }
}

/// The header line for a schema: column names joined by commas, `\n`.
#[must_use]
pub fn csv_header(src: &impl ColumnarSource) -> String {
    let mut out = String::new();
    for (i, f) in src.schema().fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&f.name);
    }
    out.push('\n');
    out
}

/// Render every row (no header) by streaming column pages — the
/// columnar twin of the row-walk CSV sink, byte-identical to it.
pub fn render_csv(src: &impl ColumnarSource, out: &mut String) {
    let schema = src.schema().clone();
    let cols = schema.len();
    for chunk in 0..src.chunk_count() {
        let pages: Vec<_> = (0..cols).map(|c| src.page(chunk, c)).collect();
        for row in 0..src.chunk_rows(chunk) {
            for (col, f) in schema.fields().iter().enumerate() {
                if col > 0 {
                    out.push(',');
                }
                let page = &pages[col];
                match &f.kind {
                    ColKind::U32 => {
                        if let Some(v) = page.u32_at(row) {
                            let _ = write!(out, "{v}");
                        }
                    }
                    ColKind::Ipv4 => {
                        if let Some(v) = page.u32_at(row) {
                            let _ = write!(out, "{}", Ipv4Addr::from(v));
                        }
                    }
                    ColKind::F64 { prec } => {
                        if let Some(v) = page.f64_at(row) {
                            let _ = write!(out, "{:.*}", usize::from(*prec), v);
                        }
                    }
                    ColKind::Dict => {
                        if let Some(id) = page.u32_at(row) {
                            push_csv_field(out, src.dict_label(col, id));
                        }
                    }
                    ColKind::Enum(labels) => {
                        push_csv_field(out, &labels[page.code_at(row) as usize]);
                    }
                }
            }
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{field, Schema, TableBuilder};

    #[test]
    fn quoting_matches_the_csv_dialect() {
        let mut out = String::new();
        push_csv_field(&mut out, "plain");
        out.push('|');
        push_csv_field(&mut out, "a,b");
        out.push('|');
        push_csv_field(&mut out, "say \"hi\"");
        assert_eq!(out, "plain|\"a,b\"|\"say \"\"hi\"\"\"");
    }

    #[test]
    fn render_matches_streamed_cells() {
        let schema = Schema::new(vec![
            field("city", ColKind::Dict),
            field("ip", ColKind::Ipv4),
            field("ms", ColKind::F64 { prec: 3 }),
            field("n", ColKind::U32),
            field("ok", ColKind::enumeration(&["false", "true"])),
        ]);
        let rows: Vec<Vec<CellValue<'_>>> = vec![
            vec![
                CellValue::Str(Some("Washington, D.C.")),
                CellValue::U32(Some(u32::from(Ipv4Addr::new(10, 1, 2, 3)))),
                CellValue::F64(Some(12.345_67)),
                CellValue::U32(Some(7)),
                CellValue::Code(1),
            ],
            vec![
                CellValue::Str(None),
                CellValue::U32(None),
                CellValue::F64(Some(f64::NAN)),
                CellValue::U32(None),
                CellValue::Code(0),
            ],
        ];
        // Streamed: render cells directly.
        let mut streamed = String::new();
        for r in &rows {
            for (i, (f, c)) in schema.fields().iter().zip(r).enumerate() {
                if i > 0 {
                    streamed.push(',');
                }
                push_value(&mut streamed, &f.kind, c);
            }
            streamed.push('\n');
        }
        // Columnar: build a table, render pages.
        let mut b = TableBuilder::new(schema);
        for r in &rows {
            b.push_row(r);
        }
        let t = b.finish();
        let mut columnar = String::new();
        render_csv(&t, &mut columnar);
        assert_eq!(streamed, columnar);
        assert_eq!(
            streamed,
            "\"Washington, D.C.\",10.1.2.3,12.346,7,true\n,,,,false\n"
        );
    }
}
