//! Zero-copy table views over sealed frame bytes.
//!
//! [`TableView::parse_frame`] verifies the frame (magic, wire version,
//! integrity hash) and then binds column pages as slices **into the
//! frame payload** — the only allocations are the parsed schema and
//! the per-column dictionary index, both tiny next to the pages.

use std::collections::HashMap;

use roam_codec::{CodecError, Decoder, Frame};

use crate::{bitmap_len, ColKind, ColumnarSource, Field, PageRef, Schema};

/// Borrowed chunk: one page slice pair per column, schema order.
#[derive(Debug)]
struct ChunkView<'a> {
    rows: usize,
    data: Vec<&'a [u8]>,
    nulls: Vec<&'a [u8]>,
}

/// A parsed, read-only columnar table borrowing its pages from the
/// underlying frame bytes. Implements [`ColumnarSource`], so every
/// query that runs on an owned [`Table`](crate::Table) runs here too.
#[derive(Debug)]
pub struct TableView<'a> {
    schema: Schema,
    dicts: Vec<Vec<&'a str>>,
    dict_index: Vec<HashMap<&'a str, u32>>,
    chunks: Vec<ChunkView<'a>>,
    rows: u64,
}

impl<'a> TableView<'a> {
    /// Parse a sealed frame produced by
    /// [`Table::to_frame`](crate::Table::to_frame), verifying kind,
    /// version and integrity before touching the payload.
    pub fn parse_frame(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let (frame, _) = Frame::parse(bytes)?;
        if frame.kind != crate::FRAME_KIND_TABLE {
            return Err(CodecError::BadValue("frame kind"));
        }
        if frame.version != crate::TABLE_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: frame.version,
                supported: crate::TABLE_VERSION,
            });
        }
        Self::parse(frame.payload)
    }

    /// Parse a bare table payload (already unframed).
    pub fn parse(payload: &'a [u8]) -> Result<Self, CodecError> {
        let mut fields: Vec<Field> = Vec::new();
        let mut dict_sections: Vec<(usize, Vec<&'a str>)> = Vec::new();
        let mut chunks: Vec<ChunkView<'a>> = Vec::new();
        let mut rows: u64 = 0;
        let mut dec = Decoder::new(payload);
        while let Some((tag, value)) = dec.next_field()? {
            match tag {
                1 => rows = value.as_u64(1)?,
                2 => fields.push(parse_field(value.as_section(2)?)?),
                3 => {
                    let mut s = value.as_section(3)?;
                    let mut col: Option<usize> = None;
                    let mut labels: Vec<&'a str> = Vec::new();
                    while let Some((t, v)) = s.next_field()? {
                        match t {
                            1 => {
                                col = Some(
                                    usize::try_from(v.as_u64(1)?)
                                        .map_err(|_| CodecError::BadValue("dict column"))?,
                                );
                            }
                            2 => labels.push(v.as_str(2)?),
                            _ => {}
                        }
                    }
                    let col = col.ok_or(CodecError::MissingField("dict column"))?;
                    dict_sections.push((col, labels));
                }
                4 => chunks.push(parse_chunk(value.as_section(4)?)?),
                _ => {}
            }
        }
        let schema = Schema::new(fields);
        let cols = schema.len();
        let mut dicts: Vec<Vec<&'a str>> = vec![Vec::new(); cols];
        for (col, labels) in dict_sections {
            if col >= cols {
                return Err(CodecError::BadValue("dict column"));
            }
            dicts[col] = labels;
        }
        // Validate page shapes against the schema before handing out
        // unchecked offsets.
        let mut counted: u64 = 0;
        for chunk in &mut chunks {
            if chunk.data.len() != cols || chunk.nulls.len() != cols {
                return Err(CodecError::BadValue("chunk column count"));
            }
            counted += chunk.rows as u64;
            for (col, f) in schema.fields().iter().enumerate() {
                if chunk.data[col].len() != chunk.rows * f.kind.width() {
                    return Err(CodecError::BadValue("page length"));
                }
                let want = if f.kind.nullable() {
                    bitmap_len(chunk.rows)
                } else {
                    0
                };
                if chunk.nulls[col].len() != want {
                    return Err(CodecError::BadValue("null bitmap length"));
                }
            }
        }
        if counted != rows {
            return Err(CodecError::BadValue("row count"));
        }
        let dict_index = dicts
            .iter()
            .map(|labels| {
                labels
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| (l, i as u32))
                    .collect()
            })
            .collect();
        Ok(TableView {
            schema,
            dicts,
            dict_index,
            chunks,
            rows,
        })
    }
}

fn parse_field(mut s: Decoder<'_>) -> Result<Field, CodecError> {
    let mut name: Option<String> = None;
    let mut code: Option<u64> = None;
    let mut prec: u8 = 0;
    let mut labels: Vec<String> = Vec::new();
    while let Some((t, v)) = s.next_field()? {
        match t {
            1 => name = Some(v.as_str(1)?.to_string()),
            2 => code = Some(v.as_u64(2)?),
            3 => {
                prec = u8::try_from(v.as_u64(3)?)
                    .map_err(|_| CodecError::BadValue("f64 precision"))?;
            }
            4 => labels.push(v.as_str(4)?.to_string()),
            _ => {}
        }
    }
    let name = name.ok_or(CodecError::MissingField("field name"))?;
    let kind = match code.ok_or(CodecError::MissingField("field kind"))? {
        0 => ColKind::U32,
        1 => ColKind::Ipv4,
        2 => ColKind::F64 { prec },
        3 => ColKind::Dict,
        4 => ColKind::Enum(labels),
        _ => return Err(CodecError::BadValue("field kind")),
    };
    Ok(Field { name, kind })
}

fn parse_chunk(mut s: Decoder<'_>) -> Result<ChunkView<'_>, CodecError> {
    let mut rows: usize = 0;
    let mut data: Vec<&[u8]> = Vec::new();
    let mut nulls: Vec<&[u8]> = Vec::new();
    while let Some((t, v)) = s.next_field()? {
        match t {
            1 => {
                rows = usize::try_from(v.as_u64(1)?)
                    .map_err(|_| CodecError::BadValue("chunk rows"))?;
            }
            2 => data.push(v.as_bytes(2)?),
            3 => nulls.push(v.as_bytes(3)?),
            _ => {}
        }
    }
    Ok(ChunkView { rows, data, nulls })
}

impl ColumnarSource for TableView<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn rows(&self) -> u64 {
        self.rows
    }

    fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    fn chunk_rows(&self, chunk: usize) -> usize {
        self.chunks[chunk].rows
    }

    fn page(&self, chunk: usize, col: usize) -> PageRef<'_> {
        let c = &self.chunks[chunk];
        PageRef {
            rows: c.rows,
            width: self.schema.fields()[col].kind.width(),
            data: c.data[col],
            nulls: c.nulls[col],
        }
    }

    fn dict_label(&self, col: usize, id: u32) -> &str {
        self.dicts[col][id as usize]
    }

    fn dict_lookup(&self, col: usize, label: &str) -> Option<u32> {
        self.dict_index[col].get(label).copied()
    }

    fn dict_len(&self, col: usize) -> usize {
        self.dicts[col].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{field, CellValue, TableBuilder};

    fn build_demo() -> crate::Table {
        let mut b = TableBuilder::new(Schema::new(vec![
            field("city", ColKind::Dict),
            field("ms", ColKind::F64 { prec: 3 }),
            field("n", ColKind::U32),
            field("status", ColKind::enumeration(&["ok", "timeout"])),
        ]));
        b.push_row(&[
            CellValue::Str(Some("Malé")),
            CellValue::F64(Some(1.25)),
            CellValue::U32(Some(2)),
            CellValue::Code(0),
        ]);
        b.push_row(&[
            CellValue::Str(None),
            CellValue::F64(Some(f64::INFINITY)),
            CellValue::U32(None),
            CellValue::Code(1),
        ]);
        b.finish()
    }

    #[test]
    fn frame_round_trip_preserves_schema_dicts_and_pages() {
        let t = build_demo();
        let bytes = t.to_frame();
        let v = TableView::parse_frame(&bytes).expect("parse");
        assert_eq!(v.schema(), t.schema());
        assert_eq!(v.rows(), 2);
        assert_eq!(v.dict_len(0), 1);
        assert_eq!(v.dict_lookup(0, "Malé"), Some(0));
        assert_eq!(v.label_of(3, 1), "timeout");
        let ms = v.page(0, 1);
        assert_eq!(ms.f64_at(0), Some(1.25));
        assert_eq!(ms.f64_at(1), None, "infinity nulled on insert");
        assert!(v.page(0, 0).is_null(1));
        assert_eq!(v.page(0, 2).u32_at(0), Some(2));
    }

    #[test]
    fn pages_borrow_from_the_frame_bytes() {
        let t = build_demo();
        let bytes = t.to_frame();
        let v = TableView::parse_frame(&bytes).expect("parse");
        let page = v.page(0, 1);
        let base = bytes.as_ptr() as usize;
        let page_ptr = page.data.as_ptr() as usize;
        assert!(
            page_ptr >= base && page_ptr < base + bytes.len(),
            "page data must point into the frame buffer"
        );
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let t = build_demo();
        let mut bytes = t.to_frame();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            TableView::parse_frame(&bytes),
            Err(CodecError::BadHash { .. })
        ));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let bytes = roam_codec::Frame::seal(0x0001, crate::TABLE_VERSION, &[]);
        assert!(matches!(
            TableView::parse_frame(&bytes),
            Err(CodecError::BadValue("frame kind"))
        ));
    }
}
