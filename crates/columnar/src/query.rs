//! The streaming query engine: filter → scan → collect/aggregate.
//!
//! Queries run chunk-by-chunk: filters resolve their column indices
//! once at construction, bind that chunk's pages, and rows stream
//! through the predicate stack without materializing anything but the
//! requested output. Filters are value predicates — a null cell never
//! matches (`eq`, `none_of`, `u32_ge` all fail on null), mirroring how
//! the CSV bins skipped empty fields.
//!
//! Group output ordering is stable and partition-independent:
//! ascending numeric code for u32/enum keys, ascending label for
//! dictionary keys. Never insertion order, so the same rows in any
//! arrival order group identically.

use roam_stats::QuantileSketch;

use crate::{ColKind, ColumnarSource, PageRef};

/// A compiled row predicate over one column.
#[derive(Clone, Debug)]
enum Filter {
    /// Enum code ∈ mask (labels are ≤ 64 per column by construction).
    CodeIn { col: usize, mask: u64 },
    /// Dict id ∈ ids.
    DictIn { col: usize, ids: Vec<u32> },
    /// Dict id present and ∉ ids.
    DictNotIn { col: usize, ids: Vec<u32> },
    /// u32 present and == v.
    U32Eq { col: usize, v: u32 },
    /// u32 present and >= min.
    U32Ge { col: usize, min: u32 },
    /// Cell present (null bit clear).
    NotNull { col: usize },
}

impl Filter {
    fn col(&self) -> usize {
        match self {
            Filter::CodeIn { col, .. }
            | Filter::DictIn { col, .. }
            | Filter::DictNotIn { col, .. }
            | Filter::U32Eq { col, .. }
            | Filter::U32Ge { col, .. }
            | Filter::NotNull { col } => *col,
        }
    }

    fn passes(&self, page: &PageRef<'_>, row: usize) -> bool {
        match self {
            Filter::CodeIn { mask, .. } => mask >> page.code_at(row) & 1 == 1,
            Filter::DictIn { ids, .. } => page.u32_at(row).is_some_and(|id| ids.contains(&id)),
            Filter::DictNotIn { ids, .. } => page.u32_at(row).is_some_and(|id| !ids.contains(&id)),
            Filter::U32Eq { v, .. } => page.u32_at(row) == Some(*v),
            Filter::U32Ge { min, .. } => page.u32_at(row).is_some_and(|x| x >= *min),
            Filter::NotNull { .. } => !page.is_null(row),
        }
    }
}

/// One group's identity in a group-by result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupKey<'s> {
    /// Plain numeric key (u32 key column).
    U32(u32),
    /// Coded key (enum or dict column): code plus its label.
    Label(u32, &'s str),
}

impl GroupKey<'_> {
    /// The numeric code of the key.
    #[must_use]
    pub fn code(&self) -> u32 {
        match self {
            GroupKey::U32(v) | GroupKey::Label(v, _) => *v,
        }
    }

    /// The label of a coded key.
    ///
    /// # Panics
    /// On a plain `U32` key.
    #[must_use]
    pub fn label(&self) -> &str {
        match self {
            GroupKey::Label(_, l) => l,
            GroupKey::U32(_) => panic!("u32 group key has no label"),
        }
    }
}

/// One group of a group-by: its key and the aggregate built over it.
#[derive(Clone, Debug)]
pub struct Group<'s, A> {
    pub key: GroupKey<'s>,
    pub value: A,
}

/// A streaming query: zero or more filters over a [`ColumnarSource`],
/// finished by a collecting or aggregating terminal.
#[derive(Clone, Debug)]
pub struct Query<'s, S: ColumnarSource> {
    src: &'s S,
    filters: Vec<Filter>,
}

impl<'s, S: ColumnarSource> Query<'s, S> {
    #[must_use]
    pub fn new(src: &'s S) -> Self {
        Query {
            src,
            filters: Vec::new(),
        }
    }

    fn col(&self, name: &str) -> usize {
        self.src
            .schema()
            .col(name)
            .unwrap_or_else(|| panic!("no column named {name:?}"))
    }

    /// Keep rows whose coded column equals `label` (enum or dict).
    /// A label absent from the dictionary matches no rows.
    #[must_use]
    pub fn eq(self, name: &str, label: &str) -> Self {
        self.any_of(name, &[label])
    }

    /// Keep rows whose coded column is any of `labels`.
    #[must_use]
    pub fn any_of(mut self, name: &str, labels: &[&str]) -> Self {
        let col = self.col(name);
        self.filters.push(self.coded_filter(col, labels, false));
        self
    }

    /// Keep rows whose coded column is present and none of `labels`.
    #[must_use]
    pub fn none_of(mut self, name: &str, labels: &[&str]) -> Self {
        let col = self.col(name);
        self.filters.push(self.coded_filter(col, labels, true));
        self
    }

    fn coded_filter(&self, col: usize, labels: &[&str], negate: bool) -> Filter {
        match &self.src.schema().fields()[col].kind {
            ColKind::Enum(all) => {
                assert!(all.len() <= 64, "enum label sets are small by construction");
                let mut mask = 0u64;
                for label in labels {
                    if let Some(i) = all.iter().position(|l| l == label) {
                        mask |= 1 << i;
                    }
                }
                if negate {
                    mask = !mask & ((1u64 << all.len()) - 1);
                }
                Filter::CodeIn { col, mask }
            }
            ColKind::Dict => {
                let ids: Vec<u32> = labels
                    .iter()
                    .filter_map(|l| self.src.dict_lookup(col, l))
                    .collect();
                if negate {
                    Filter::DictNotIn { col, ids }
                } else {
                    Filter::DictIn { col, ids }
                }
            }
            kind => panic!("column {col} kind {kind:?} has no labels to filter on"),
        }
    }

    /// Keep rows whose u32 column is present and equals `v`.
    #[must_use]
    pub fn u32_eq(mut self, name: &str, v: u32) -> Self {
        let col = self.col(name);
        self.filters.push(Filter::U32Eq { col, v });
        self
    }

    /// Keep rows whose u32 column is present and at least `min`.
    #[must_use]
    pub fn u32_ge(mut self, name: &str, min: u32) -> Self {
        let col = self.col(name);
        self.filters.push(Filter::U32Ge { col, min });
        self
    }

    /// Keep rows whose column is non-null.
    #[must_use]
    pub fn not_null(mut self, name: &str) -> Self {
        let col = self.col(name);
        self.filters.push(Filter::NotNull { col });
        self
    }

    /// Stream matching rows: `f(chunk, row)` in storage order.
    fn scan(&self, mut f: impl FnMut(usize, usize)) {
        for chunk in 0..self.src.chunk_count() {
            let pages: Vec<PageRef<'_>> = self
                .filters
                .iter()
                .map(|flt| self.src.page(chunk, flt.col()))
                .collect();
            for row in 0..self.src.chunk_rows(chunk) {
                if self
                    .filters
                    .iter()
                    .zip(&pages)
                    .all(|(flt, page)| flt.passes(page, row))
                {
                    f(chunk, row);
                }
            }
        }
    }

    /// Count matching rows.
    #[must_use]
    pub fn count(&self) -> u64 {
        let mut n = 0;
        self.scan(|_, _| n += 1);
        n
    }

    /// Collect an f64 column over matching rows, storage order, nulls
    /// skipped — the exact value stream the CSV bins used to collect.
    #[must_use]
    pub fn values(&self, name: &str) -> Vec<f64> {
        let col = self.col(name);
        let mut out = Vec::new();
        let mut cur = usize::MAX;
        let mut page = None;
        self.scan(|chunk, row| {
            if chunk != cur {
                cur = chunk;
                page = Some(self.src.page(chunk, col));
            }
            if let Some(v) = page.as_ref().expect("bound page").f64_at(row) {
                out.push(v);
            }
        });
        out
    }

    /// Collect a u32 column over matching rows, nulls skipped.
    #[must_use]
    pub fn u32_values(&self, name: &str) -> Vec<u32> {
        let col = self.col(name);
        let mut out = Vec::new();
        let mut cur = usize::MAX;
        let mut page = None;
        self.scan(|chunk, row| {
            if chunk != cur {
                cur = chunk;
                page = Some(self.src.page(chunk, col));
            }
            if let Some(v) = page.as_ref().expect("bound page").u32_at(row) {
                out.push(v);
            }
        });
        out
    }

    /// Collect a coded column's labels over matching rows (`None` for
    /// null dict cells), storage order.
    #[must_use]
    pub fn labels(&self, name: &str) -> Vec<Option<&'s str>> {
        let col = self.col(name);
        let coded = matches!(self.src.schema().fields()[col].kind, ColKind::Enum(_));
        let mut out: Vec<Option<&'s str>> = Vec::new();
        let mut cur = usize::MAX;
        let mut page = None;
        self.scan(|chunk, row| {
            if chunk != cur {
                cur = chunk;
                page = Some(self.src.page(chunk, col));
            }
            let page = page.as_ref().expect("bound page");
            let code = if coded {
                Some(u32::from(page.code_at(row)))
            } else {
                page.u32_at(row)
            };
            out.push(code.map(|c| self.src.label_of(col, c)));
        });
        out
    }

    /// Aggregate an f64 column over matching rows into one sketch.
    #[must_use]
    pub fn sketch(&self, name: &str, lo: f64, hi: f64, per_decade: u32) -> QuantileSketch {
        let col = self.col(name);
        let mut sk = QuantileSketch::log_spaced(lo, hi, per_decade);
        let mut cur = usize::MAX;
        let mut page = None;
        self.scan(|chunk, row| {
            if chunk != cur {
                cur = chunk;
                page = Some(self.src.page(chunk, col));
            }
            if let Some(v) = page.as_ref().expect("bound page").f64_at(row) {
                sk.observe(v);
            }
        });
        sk
    }

    /// Group matching rows by a key column and collect an f64 metric
    /// per group. Rows with a null key are skipped. Output order is
    /// stable: ascending code for u32/enum keys, ascending label for
    /// dict keys.
    #[must_use]
    pub fn group_values(&self, key: &str, metric: &str) -> Vec<Group<'s, Vec<f64>>> {
        self.group_fold(key, metric, Vec::new, |acc, v| acc.push(v))
    }

    /// Group matching rows by a key column, aggregating an f64 metric
    /// into a `log_spaced(lo, hi, per_decade)` sketch per group.
    #[must_use]
    pub fn group_sketch(
        &self,
        key: &str,
        metric: &str,
        lo: f64,
        hi: f64,
        per_decade: u32,
    ) -> Vec<Group<'s, QuantileSketch>> {
        self.group_fold(
            key,
            metric,
            || QuantileSketch::log_spaced(lo, hi, per_decade),
            |acc, v| acc.observe(v),
        )
    }

    /// Group matching rows by a key column and count rows per group.
    #[must_use]
    pub fn group_count(&self, key: &str) -> Vec<Group<'s, u64>> {
        let key_col = self.col(key);
        let mut acc: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        self.scan_keys(key_col, |code, _chunk, _row| {
            *acc.entry(code).or_insert(0) += 1;
        });
        self.order_groups(key_col, acc)
    }

    fn group_fold<A>(
        &self,
        key: &str,
        metric: &str,
        init: impl Fn() -> A,
        fold: impl Fn(&mut A, f64),
    ) -> Vec<Group<'s, A>> {
        let key_col = self.col(key);
        let metric_col = self.col(metric);
        let mut acc: std::collections::BTreeMap<u32, A> = std::collections::BTreeMap::new();
        let mut cur = usize::MAX;
        let mut page = None;
        self.scan_keys(key_col, |code, chunk, row| {
            if chunk != cur {
                cur = chunk;
                page = Some(self.src.page(chunk, metric_col));
            }
            if let Some(v) = page.as_ref().expect("bound page").f64_at(row) {
                fold(acc.entry(code).or_insert_with(&init), v);
            }
        });
        self.order_groups(key_col, acc)
    }

    /// Scan matching rows that carry a non-null key, yielding the key
    /// code (enum code, dict id, or raw u32).
    fn scan_keys(&self, key_col: usize, mut f: impl FnMut(u32, usize, usize)) {
        let coded = matches!(self.src.schema().fields()[key_col].kind, ColKind::Enum(_));
        let mut cur = usize::MAX;
        let mut page = None;
        self.scan(|chunk, row| {
            if chunk != cur {
                cur = chunk;
                page = Some(self.src.page(chunk, key_col));
            }
            let page = page.as_ref().expect("bound page");
            let code = if coded {
                Some(u32::from(page.code_at(row)))
            } else {
                page.u32_at(row)
            };
            if let Some(code) = code {
                f(code, chunk, row);
            }
        });
    }

    /// Order grouped accumulators into the stable output order.
    fn order_groups<A>(
        &self,
        key_col: usize,
        acc: std::collections::BTreeMap<u32, A>,
    ) -> Vec<Group<'s, A>> {
        let kind = &self.src.schema().fields()[key_col].kind;
        let mut out: Vec<Group<'s, A>> = acc
            .into_iter()
            .map(|(code, value)| {
                let key = match kind {
                    ColKind::U32 | ColKind::Ipv4 => GroupKey::U32(code),
                    _ => GroupKey::Label(code, self.src.label_of(key_col, code)),
                };
                Group { key, value }
            })
            .collect();
        if matches!(kind, ColKind::Dict) {
            out.sort_by(|a, b| a.key.label().cmp(b.key.label()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{field, CellValue, Schema, Table, TableBuilder, TableView};

    fn sessions() -> Table {
        let mut b = TableBuilder::new(Schema::new(vec![
            field("country", ColKind::Dict),
            field("code", ColKind::U32),
            field("ms", ColKind::F64 { prec: 3 }),
            field(
                "status",
                ColKind::enumeration(&["ok", "failover", "timeout"]),
            ),
        ]));
        let rows = [
            (Some("PAK"), Some(5u32), Some(10.0), 0u8),
            (Some("ARE"), Some(1), Some(20.0), 0),
            (Some("PAK"), Some(5), None, 2),
            (Some("ARE"), Some(1), Some(40.0), 1),
            (None, None, Some(99.0), 0),
            (Some("DEU"), Some(3), Some(30.0), 0),
        ];
        for (c, code, ms, st) in rows {
            b.push_row(&[
                CellValue::Str(c),
                CellValue::U32(code),
                CellValue::F64(ms),
                CellValue::Code(st),
            ]);
        }
        b.finish()
    }

    #[test]
    fn filters_compose_and_nulls_never_match() {
        let t = sessions();
        assert_eq!(Query::new(&t).count(), 6);
        assert_eq!(Query::new(&t).eq("country", "PAK").count(), 2);
        assert_eq!(Query::new(&t).eq("country", "XXX").count(), 0);
        assert_eq!(
            Query::new(&t).any_of("status", &["ok", "failover"]).count(),
            5
        );
        assert_eq!(Query::new(&t).none_of("country", &["PAK"]).count(), 3);
        assert_eq!(Query::new(&t).u32_ge("code", 3).count(), 3);
        assert_eq!(Query::new(&t).not_null("ms").count(), 5);
        assert_eq!(
            Query::new(&t)
                .eq("country", "ARE")
                .any_of("status", &["ok"])
                .count(),
            1
        );
    }

    #[test]
    fn values_keep_storage_order_and_skip_nulls() {
        let t = sessions();
        assert_eq!(Query::new(&t).eq("country", "PAK").values("ms"), vec![10.0]);
        assert_eq!(
            Query::new(&t).values("ms"),
            vec![10.0, 20.0, 40.0, 99.0, 30.0]
        );
        assert_eq!(Query::new(&t).u32_values("code"), vec![5, 1, 5, 1, 3]);
        assert_eq!(
            Query::new(&t).eq("status", "ok").labels("country"),
            vec![Some("PAK"), Some("ARE"), None, Some("DEU")]
        );
    }

    #[test]
    fn groups_come_out_in_stable_order() {
        let t = sessions();
        // Dict key: ascending label, not insertion (PAK was first).
        let by_country = Query::new(&t).group_values("country", "ms");
        let keys: Vec<&str> = by_country.iter().map(|g| g.key.label()).collect();
        assert_eq!(keys, ["ARE", "DEU", "PAK"]);
        assert_eq!(by_country[0].value, vec![20.0, 40.0]);
        assert_eq!(by_country[2].value, vec![10.0], "null metric skipped");
        // U32 key: ascending code; null-key row dropped.
        let by_code = Query::new(&t).group_count("code");
        let codes: Vec<u32> = by_code.iter().map(|g| g.key.code()).collect();
        assert_eq!(codes, [1, 3, 5]);
        assert_eq!(by_code.iter().map(|g| g.value).sum::<u64>(), 5);
        // Enum key: ascending code with labels.
        let by_status = Query::new(&t).group_count("status");
        let labels: Vec<&str> = by_status.iter().map(|g| g.key.label()).collect();
        assert_eq!(labels, ["ok", "failover", "timeout"]);
    }

    #[test]
    fn sketch_aggregation_matches_direct_observation() {
        let t = sessions();
        let sk = Query::new(&t)
            .eq("status", "ok")
            .sketch("ms", 1.0, 1000.0, 10);
        let mut direct = QuantileSketch::log_spaced(1.0, 1000.0, 10);
        for v in Query::new(&t).eq("status", "ok").values("ms") {
            direct.observe(v);
        }
        assert_eq!(sk.count(), direct.count());
        assert_eq!(sk.quantile(0.5), direct.quantile(0.5));
        let groups = Query::new(&t).group_sketch("country", "ms", 1.0, 1000.0, 10);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].key.label(), "ARE");
        assert_eq!(groups[0].value.count(), 2);
    }

    #[test]
    fn queries_run_identically_on_views() {
        let t = sessions();
        let bytes = t.to_frame();
        let v = TableView::parse_frame(&bytes).expect("parse");
        assert_eq!(
            Query::new(&t).eq("country", "ARE").values("ms"),
            Query::new(&v).eq("country", "ARE").values("ms")
        );
        assert_eq!(
            Query::new(&t).group_count("status").len(),
            Query::new(&v).group_count("status").len()
        );
    }
}
