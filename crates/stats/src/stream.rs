//! Streaming aggregation: mergeable sketches for population-scale runs.
//!
//! The campaign pipeline buffers every record because the paper's tables
//! need a few thousand rows at most. A fleet of millions of subscribers
//! cannot work that way: `roam-fleet` streams every observation into the
//! two structures here and throws the record away. Both are built around
//! one invariant — **merging is exact and order-free** — so a report
//! assembled from 1 shard and one assembled from N shards are the same
//! bytes:
//!
//! * [`QuantileSketch`] — fixed log-spaced buckets (integer counts), an
//!   exact fixed-point sum (micro-units in `i128`, so addition is
//!   associative, unlike `f64`), and exact min/max. Quantiles are read
//!   back by geometric interpolation inside a bucket, which bounds the
//!   relative error by the bucket growth ratio.
//! * [`KeyedReservoir`] — a bottom-k sample: every candidate carries a
//!   priority derived from a stable key (user id), and the reservoir
//!   keeps the k smallest priorities. Unlike classic reservoir sampling
//!   the outcome does not depend on offer order or partitioning, only on
//!   the candidate set.

/// A mergeable fixed-bucket quantile sketch over positive values.
///
/// Buckets are log-spaced: bucket `i` covers `(bounds[i-1], bounds[i]]`,
/// with one underflow bucket below `bounds[0]` and one overflow bucket
/// above the last bound. All merge state is integral (bucket counts,
/// fixed-point sum) or exact under min/max, so [`QuantileSketch::merge`]
/// is associative and commutative — the precondition for shard-count
/// invariant reports.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    bounds: Vec<f64>,
    growth: f64,
    counts: Vec<u64>,
    count: u64,
    /// Exact sum in micro-units (value × 1e6, rounded); `i128` keeps
    /// ~1.7e32 micro-units of headroom, far beyond any fleet run.
    sum_micro: i128,
    min: f64,
    max: f64,
    /// Non-finite observations rejected (kept so dropped data is visible
    /// instead of silently vanishing — the CSV exporters' `Fin` rule).
    dropped: u64,
}

impl QuantileSketch {
    /// A sketch with log-spaced bucket bounds from `lo` to at least `hi`,
    /// `per_decade` buckets per factor of ten. The relative quantile error
    /// is bounded by the bucket growth `10^(1/per_decade) - 1` (12.2% for
    /// 10 per decade, 6% for 20).
    ///
    /// # Panics
    /// When `lo`/`hi` are not positive and ordered or `per_decade` is 0.
    #[must_use]
    pub fn log_spaced(lo: f64, hi: f64, per_decade: u32) -> Self {
        assert!(lo > 0.0 && hi > lo && per_decade > 0, "bad sketch config");
        let growth = 10f64.powf(1.0 / f64::from(per_decade));
        let mut bounds = vec![lo];
        while *bounds.last().expect("non-empty") < hi {
            // Recompute from the exponent instead of compounding, so the
            // bounds are bit-identical however the sketch is built.
            bounds.push(lo * growth.powi(bounds.len() as i32));
        }
        // One underflow bucket, `bounds.len() - 1` interior steps, one
        // overflow bucket.
        let counts = vec![0; bounds.len() + 1];
        QuantileSketch {
            bounds,
            growth,
            counts,
            count: 0,
            sum_micro: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            dropped: 0,
        }
    }

    /// The multiplicative bucket growth (error-bound factor).
    #[must_use]
    pub fn growth(&self) -> f64 {
        self.growth
    }

    /// Record one observation. Non-finite values are counted as dropped,
    /// never folded into the distribution.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            self.dropped += 1;
            return;
        }
        // Bounds are sorted, so the bucket is a binary search: the first
        // bound `>= value` (0 = underflow, else `(bounds[i-1], bounds[i]]`,
        // `len` = overflow). Equivalent to a forward `value <= b` scan.
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        // Round half away from zero without the libm `round` call (this
        // runs once per observation at population scale). `value` is
        // finite here; magnitudes beyond i64 keep the exact slow path.
        let micro = value * 1e6;
        self.sum_micro += if micro.abs() < 9.0e18 {
            let whole = micro as i64;
            let frac = micro - whole as f64;
            i128::from(whole) + i128::from(frac >= 0.5) - i128::from(frac <= -0.5)
        } else {
            micro.round() as i128
        };
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations folded in (excluding dropped ones).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-finite observations rejected.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact mean (fixed-point sum over count); 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        (self.sum_micro as f64 / 1e6) / self.count as f64
    }

    /// Smallest observation (+inf when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Bucket counts: underflow, one per bound step, overflow.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by geometric interpolation
    /// inside the owning bucket, clamped to the exact min/max. Within the
    /// configured `[lo, hi]` range the relative error is at most
    /// `growth - 1`. Returns `None` when the sketch is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        let mut idx = self.counts.len() - 1;
        for (i, &n) in self.counts.iter().enumerate() {
            cum += n;
            if cum >= rank {
                idx = i;
                break;
            }
        }
        let est = if idx == 0 {
            // Underflow bucket: everything here is <= bounds[0].
            self.bounds[0]
        } else if idx >= self.bounds.len() {
            // Overflow bucket: the exact max is the only honest answer.
            self.max
        } else {
            // Geometric midpoint-ish interpolation by rank position.
            let lo = self.bounds[idx - 1];
            let hi = self.bounds[idx];
            let in_bucket = self.counts[idx];
            let below = cum - in_bucket;
            let frac = if in_bucket == 0 {
                1.0
            } else {
                (rank - below) as f64 / in_bucket as f64
            };
            lo * (hi / lo).powf(frac)
        };
        Some(est.clamp(self.min, self.max))
    }

    /// Fold another sketch into this one. Exact: integer bucket counts,
    /// fixed-point sums and min/max all merge associatively, so any
    /// sharding of one observation stream produces identical state.
    ///
    /// # Panics
    /// When the sketches were built with different bucket configurations.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(self.bounds, other.bounds, "sketch bucket config mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micro += other.sum_micro;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.dropped += other.dropped;
    }
}

/// Deterministic bottom-k sampling: keeps the `k` candidates with the
/// smallest `(priority, key)`, independent of offer order or sharding.
///
/// The caller derives `priority` from a stable identity (e.g.
/// `flow_seed(master, "sample/user/<id>")`), so the surviving set is a
/// uniform-ish pseudo-random sample that every partitioning of the
/// population agrees on. `key` (the user id itself) breaks priority ties
/// deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedReservoir<T> {
    cap: usize,
    /// Sorted ascending by `(priority, key)`.
    items: Vec<(u64, u64, T)>,
}

impl<T: Clone> KeyedReservoir<T> {
    /// An empty reservoir holding at most `cap` items.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        KeyedReservoir {
            cap,
            items: Vec::with_capacity(cap.min(64)),
        }
    }

    /// Capacity of the reservoir.
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of items currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the reservoir empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Offer one candidate. Kept iff its `(priority, key)` ranks within
    /// the smallest `cap` seen so far. Re-offering a key already held is
    /// a no-op: keys identify deterministic items (a key's payload is
    /// always the same bytes), so recurring runs that revisit a
    /// population — the service agent ticking the same cohort week after
    /// week — fold into the same sample instead of flooding it with
    /// duplicates.
    pub fn offer(&mut self, priority: u64, key: u64, item: T) {
        if self.cap == 0 {
            return;
        }
        let pos = self
            .items
            .partition_point(|(p, k, _)| (*p, *k) < (priority, key));
        if pos >= self.cap {
            return;
        }
        if self
            .items
            .get(pos)
            .is_some_and(|(p, k, _)| (*p, *k) == (priority, key))
        {
            return;
        }
        self.items.insert(pos, (priority, key, item));
        self.items.truncate(self.cap);
    }

    /// Fold another reservoir in: union, then keep the `cap` smallest.
    /// Associative and commutative, like the sketch merge.
    ///
    /// # Panics
    /// When capacities differ — merging would silently change semantics.
    pub fn merge(&mut self, other: &KeyedReservoir<T>) {
        assert_eq!(self.cap, other.cap, "reservoir capacity mismatch");
        for (p, k, item) in &other.items {
            self.offer(*p, *k, item.clone());
        }
    }

    /// The sampled items, in `(priority, key)` order.
    pub fn items(&self) -> impl Iterator<Item = &T> {
        self.items.iter().map(|(_, _, t)| t)
    }
}

// ---------------------------------------------------------------------
// Wire form: both structures checkpoint to disk and stream across worker
// pipes in the roam-codec field format. Encoding is verbatim state (the
// bounds vector itself, not the construction parameters), so a decoded
// sketch is field-for-field — and therefore merge- and render- —
// identical to the one that was encoded.
// ---------------------------------------------------------------------

use roam_codec::{CodecError, Decoder, Encoder};

/// Field tags for [`QuantileSketch`] (see DESIGN.md §11 tag tables).
mod sketch_tag {
    pub const BOUND: u32 = 1; // repeated f64
    pub const GROWTH: u32 = 2; // f64
    pub const BUCKET: u32 = 3; // repeated u64 (underflow..overflow)
    pub const COUNT: u32 = 4; // u64
    pub const SUM_MICRO: u32 = 5; // i128
    pub const MIN: u32 = 6; // f64 (+inf when empty)
    pub const MAX: u32 = 7; // f64 (-inf when empty)
    pub const DROPPED: u32 = 8; // u64
}

impl QuantileSketch {
    /// Write every field of the sketch into `e` (no frame, no section —
    /// the caller chooses the envelope).
    pub fn encode_fields(&self, e: &mut Encoder) {
        for &b in &self.bounds {
            e.f64(sketch_tag::BOUND, b);
        }
        e.f64(sketch_tag::GROWTH, self.growth);
        for &c in &self.counts {
            e.u64(sketch_tag::BUCKET, c);
        }
        e.u64(sketch_tag::COUNT, self.count);
        e.i128(sketch_tag::SUM_MICRO, self.sum_micro);
        e.f64(sketch_tag::MIN, self.min);
        e.f64(sketch_tag::MAX, self.max);
        e.u64(sketch_tag::DROPPED, self.dropped);
    }

    /// Rebuild a sketch from fields written by
    /// [`QuantileSketch::encode_fields`]. Unknown tags are skipped
    /// (forward compatibility); missing required fields and impossible
    /// bucket shapes are loud errors.
    pub fn decode_fields(d: &mut Decoder) -> Result<Self, CodecError> {
        let mut bounds = Vec::new();
        let mut counts = Vec::new();
        let mut growth = None;
        let mut count = None;
        let mut sum_micro = None;
        let mut min = None;
        let mut max = None;
        let mut dropped = None;
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                sketch_tag::BOUND => bounds.push(v.as_f64(tag)?),
                sketch_tag::GROWTH => growth = Some(v.as_f64(tag)?),
                sketch_tag::BUCKET => counts.push(v.as_u64(tag)?),
                sketch_tag::COUNT => count = Some(v.as_u64(tag)?),
                sketch_tag::SUM_MICRO => sum_micro = Some(v.as_i128(tag)?),
                sketch_tag::MIN => min = Some(v.as_f64(tag)?),
                sketch_tag::MAX => max = Some(v.as_f64(tag)?),
                sketch_tag::DROPPED => dropped = Some(v.as_u64(tag)?),
                _ => {}
            }
        }
        if bounds.is_empty() {
            return Err(CodecError::MissingField("sketch bounds"));
        }
        if counts.len() != bounds.len() + 1 {
            return Err(CodecError::BadValue("sketch bucket count"));
        }
        Ok(QuantileSketch {
            bounds,
            growth: growth.ok_or(CodecError::MissingField("sketch growth"))?,
            counts,
            count: count.ok_or(CodecError::MissingField("sketch count"))?,
            sum_micro: sum_micro.ok_or(CodecError::MissingField("sketch sum_micro"))?,
            min: min.ok_or(CodecError::MissingField("sketch min"))?,
            max: max.ok_or(CodecError::MissingField("sketch max"))?,
            dropped: dropped.ok_or(CodecError::MissingField("sketch dropped"))?,
        })
    }
}

/// Field tags for [`KeyedReservoir`].
mod reservoir_tag {
    pub const CAP: u32 = 1; // u64
    pub const ENTRY: u32 = 2; // repeated section
    pub const PRIORITY: u32 = 1; // u64, inside ENTRY
    pub const KEY: u32 = 2; // u64, inside ENTRY
    pub const ITEM: u32 = 3; // section, inside ENTRY (caller-defined)
}

impl<T: Clone> KeyedReservoir<T> {
    /// Write the reservoir into `e`; `item` encodes each sample's payload
    /// into its own section (the reservoir is generic, so the element
    /// schema belongs to the caller).
    pub fn encode_fields_with(&self, e: &mut Encoder, item: impl Fn(&mut Encoder, &T)) {
        e.u64(reservoir_tag::CAP, self.cap as u64);
        for (p, k, t) in &self.items {
            e.section(reservoir_tag::ENTRY, |s| {
                s.u64(reservoir_tag::PRIORITY, *p);
                s.u64(reservoir_tag::KEY, *k);
                s.section(reservoir_tag::ITEM, |se| item(se, t));
            });
        }
    }

    /// Rebuild a reservoir from fields written by
    /// [`KeyedReservoir::encode_fields_with`]; `item` decodes each
    /// payload section. The `(priority, key)` sort invariant is verified,
    /// not trusted.
    pub fn decode_fields_with(
        d: &mut Decoder,
        item: impl Fn(&mut Decoder) -> Result<T, CodecError>,
    ) -> Result<Self, CodecError> {
        let mut cap = None;
        let mut items: Vec<(u64, u64, T)> = Vec::new();
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                reservoir_tag::CAP => {
                    cap = Some(
                        usize::try_from(v.as_u64(tag)?)
                            .map_err(|_| CodecError::BadValue("reservoir cap"))?,
                    );
                }
                reservoir_tag::ENTRY => {
                    let mut s = v.as_section(tag)?;
                    let mut priority = None;
                    let mut key = None;
                    let mut payload = None;
                    while let Some((t2, v2)) = s.next_field()? {
                        match t2 {
                            reservoir_tag::PRIORITY => priority = Some(v2.as_u64(t2)?),
                            reservoir_tag::KEY => key = Some(v2.as_u64(t2)?),
                            reservoir_tag::ITEM => {
                                let mut se = v2.as_section(t2)?;
                                payload = Some(item(&mut se)?);
                            }
                            _ => {}
                        }
                    }
                    let p = priority.ok_or(CodecError::MissingField("reservoir priority"))?;
                    let k = key.ok_or(CodecError::MissingField("reservoir key"))?;
                    let t = payload.ok_or(CodecError::MissingField("reservoir item"))?;
                    if let Some((lp, lk, _)) = items.last() {
                        if (*lp, *lk) >= (p, k) {
                            return Err(CodecError::BadValue("reservoir order"));
                        }
                    }
                    items.push((p, k, t));
                }
                _ => {}
            }
        }
        let cap = cap.ok_or(CodecError::MissingField("reservoir cap"))?;
        if items.len() > cap {
            return Err(CodecError::BadValue("reservoir size"));
        }
        Ok(KeyedReservoir { cap, items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[f64]) -> QuantileSketch {
        let mut s = QuantileSketch::log_spaced(1.0, 1000.0, 10);
        for &v in values {
            s.observe(v);
        }
        s
    }

    #[test]
    fn counts_sum_min_max_are_exact() {
        let s = filled(&[2.0, 20.0, 200.0, 2000.0, 0.5]);
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), 0.5);
        assert_eq!(s.max(), 2000.0);
        assert!((s.mean() - (2.0 + 20.0 + 200.0 + 2000.0 + 0.5) / 5.0).abs() < 1e-9);
        // Underflow and overflow buckets caught the extremes.
        assert_eq!(s.buckets()[0], 1);
        assert_eq!(*s.buckets().last().expect("overflow bucket"), 1);
    }

    #[test]
    fn non_finite_observations_are_dropped_not_folded() {
        let mut s = filled(&[5.0]);
        s.observe(f64::INFINITY);
        s.observe(f64::NAN);
        s.observe(f64::NEG_INFINITY);
        assert_eq!(s.count(), 1);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.quantile(0.5), Some(5.0));
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_growth() {
        // A deterministic long-tailed sample: exponential via inverse CDF.
        let n = 5000;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                10.0 * -(1.0 - u).ln() // Exp(mean 10), range ~0.001..~85
            })
            .collect();
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let s = filled(&values);
        let tol = s.growth() - 1.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let exact = crate::quantile(&sorted, q).expect("non-empty");
            let est = s.quantile(q).expect("non-empty");
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= tol + 1e-9,
                "q={q}: est={est} exact={exact} rel={rel} tol={tol}"
            );
        }
    }

    #[test]
    fn quantile_matches_exact_cdf_masses() {
        // Against the exact Ecdf: the sketch's q-quantile must sit at a
        // point whose empirical CDF mass is within one bucket of q.
        let values: Vec<f64> = (1..=1000).map(|i| f64::from(i) * 0.37).collect();
        let s = filled(&values);
        let ecdf = crate::Ecdf::new(&values).expect("clean sample");
        for q in [0.05, 0.5, 0.95] {
            let est = s.quantile(q).expect("non-empty");
            // Mass strictly below the *next* bucket up must cover q, and
            // mass at the bucket below must not overshoot it.
            assert!(ecdf.eval(est * s.growth()) >= q - 1e-9);
            assert!(ecdf.eval(est / s.growth()) <= q + 1e-9);
        }
    }

    #[test]
    fn merge_equals_single_stream() {
        let all: Vec<f64> = (0..500).map(|i| 1.0 + f64::from(i) * 1.7).collect();
        let whole = filled(&all);
        let mut merged = filled(&all[..120]);
        merged.merge(&filled(&all[120..300]));
        merged.merge(&filled(&all[300..]));
        assert_eq!(whole, merged);
    }

    #[test]
    #[should_panic(expected = "bucket config mismatch")]
    fn merging_mismatched_configs_panics() {
        let mut a = QuantileSketch::log_spaced(1.0, 10.0, 5);
        a.merge(&QuantileSketch::log_spaced(1.0, 100.0, 5));
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::log_spaced(1.0, 10.0, 5);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn reservoir_keeps_the_k_smallest_priorities() {
        let mut r = KeyedReservoir::new(3);
        for (p, k) in [(50u64, 1u64), (10, 2), (40, 3), (20, 4), (30, 5)] {
            r.offer(p, k, k);
        }
        assert_eq!(r.len(), 3);
        let kept: Vec<u64> = r.items().copied().collect();
        assert_eq!(kept, vec![2, 4, 5], "priorities 10, 20, 30 survive");
    }

    #[test]
    fn reservoir_offers_are_idempotent_per_key() {
        let mut once = KeyedReservoir::new(4);
        let mut thrice = KeyedReservoir::new(4);
        for (p, k) in [(10u64, 1u64), (20, 2), (30, 3)] {
            once.offer(p, k, k);
            for _ in 0..3 {
                thrice.offer(p, k, k);
            }
        }
        assert_eq!(once, thrice, "re-offering a held key is a no-op");
        assert_eq!(once.len(), 3);
        // Re-offers also never evict distinct keys out the bottom.
        once.offer(40, 4, 4);
        thrice.offer(40, 4, 4);
        thrice.offer(10, 1, 1);
        assert_eq!(once, thrice);
        assert_eq!(once.len(), 4);
    }

    #[test]
    fn reservoir_is_offer_order_invariant() {
        let candidates: Vec<(u64, u64)> = (0..40).map(|i| (i * 2_654_435_761 % 1000, i)).collect();
        let mut forward = KeyedReservoir::new(5);
        for &(p, k) in &candidates {
            forward.offer(p, k, k);
        }
        let mut backward = KeyedReservoir::new(5);
        for &(p, k) in candidates.iter().rev() {
            backward.offer(p, k, k);
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn reservoir_merge_is_partition_invariant() {
        let candidates: Vec<(u64, u64)> = (0..60).map(|i| (i * 48_271 % 500, i)).collect();
        let mut whole = KeyedReservoir::new(7);
        for &(p, k) in &candidates {
            whole.offer(p, k, k);
        }
        let mut merged = KeyedReservoir::new(7);
        let mut right = KeyedReservoir::new(7);
        for &(p, k) in &candidates[..20] {
            merged.offer(p, k, k);
        }
        for &(p, k) in &candidates[20..] {
            right.offer(p, k, k);
        }
        merged.merge(&right);
        assert_eq!(whole, merged);
    }

    #[test]
    fn ties_break_on_the_key() {
        let mut a = KeyedReservoir::new(2);
        a.offer(5, 9, "late");
        a.offer(5, 1, "early");
        a.offer(5, 4, "mid");
        let kept: Vec<&str> = a.items().copied().collect();
        assert_eq!(kept, vec!["early", "mid"]);
    }

    #[test]
    fn zero_capacity_reservoir_stays_empty() {
        let mut r = KeyedReservoir::new(0);
        r.offer(1, 1, ());
        assert!(r.is_empty());
    }

    #[test]
    fn sketch_round_trips_through_the_codec() {
        for values in [&[][..], &[2.0, 0.01, 9999.0, 17.5][..]] {
            let s = filled(values);
            let mut e = Encoder::new();
            s.encode_fields(&mut e);
            let bytes = e.into_bytes();
            let back =
                QuantileSketch::decode_fields(&mut Decoder::new(&bytes)).expect("clean round trip");
            assert_eq!(s, back);
        }
    }

    #[test]
    fn sketch_decode_rejects_malformed_state() {
        let s = filled(&[3.0]);
        let mut e = Encoder::new();
        s.encode_fields(&mut e);
        // Drop one bucket field: counts.len() != bounds.len() + 1.
        let mut skewed = Encoder::new();
        s.encode_fields(&mut skewed);
        let mut bytes = skewed.into_bytes();
        bytes.truncate(bytes.len() - 2); // chop the trailing dropped field
        assert!(QuantileSketch::decode_fields(&mut Decoder::new(&bytes)).is_err());
        // Empty input: required fields missing.
        assert_eq!(
            QuantileSketch::decode_fields(&mut Decoder::new(&[])).unwrap_err(),
            CodecError::MissingField("sketch bounds")
        );
    }

    #[test]
    fn reservoir_round_trips_through_the_codec() {
        let mut r = KeyedReservoir::new(3);
        for (p, k) in [(50u64, 1u64), (10, 2), (40, 3), (20, 4)] {
            r.offer(p, k, k * 11);
        }
        let mut e = Encoder::new();
        r.encode_fields_with(&mut e, |se, item| se.u64(1, *item));
        let bytes = e.into_bytes();
        let back = KeyedReservoir::decode_fields_with(&mut Decoder::new(&bytes), |se| {
            let (tag, v) = se.next_field()?.ok_or(CodecError::MissingField("item"))?;
            v.as_u64(tag)
        })
        .expect("clean round trip");
        assert_eq!(r, back);
    }
}
