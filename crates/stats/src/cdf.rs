//! Empirical cumulative distribution functions.
//!
//! CDFs are the paper's favourite lens: RTT to PGWs (Figs. 8–9), the share
//! of latency that is private (Fig. 12), and median $/GB per provider
//! (Fig. 17) are all presented as CDFs.

use crate::{validate, StatsError};

/// An empirical CDF over a sample.
///
/// Stores the sorted sample; evaluation is a binary search, inversion is an
/// order statistic. Construction rejects NaNs so that ordering is total.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build the ECDF of `xs`.
    pub fn new(xs: &[f64]) -> Result<Self, StatsError> {
        validate(xs)?;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected by validate"));
        Ok(Ecdf { sorted })
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction requires a non-empty sample.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// F(x) — fraction of observations ≤ `x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of observations strictly greater than `x` — the form used
    /// for statements like "14.5% of measurements exceeded 150 ms".
    #[must_use]
    pub fn frac_above(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// Quantile function F⁻¹(q) (inverse CDF, lower order statistic).
    #[must_use]
    pub fn inverse(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
        if q <= 0.0 {
            return self.sorted[0];
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Evenly spaced (x, F(x)) points suitable for plotting or textual dumps
    /// of the figure series. Always includes both endpoints.
    #[must_use]
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least the two endpoints");
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Minimum observation.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Ecdf {
        Ecdf::new(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap()
    }

    #[test]
    fn eval_at_and_between_observations() {
        let e = ramp();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.2);
        assert_eq!(e.eval(2.5), 0.4);
        assert_eq!(e.eval(5.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn frac_above_complements_eval() {
        let e = ramp();
        assert!((e.frac_above(3.0) - 0.4).abs() < 1e-12);
        assert_eq!(e.frac_above(0.0), 1.0);
        assert_eq!(e.frac_above(5.0), 0.0);
    }

    #[test]
    fn inverse_hits_order_statistics() {
        let e = ramp();
        assert_eq!(e.inverse(0.0), 1.0);
        assert_eq!(e.inverse(0.2), 1.0);
        assert_eq!(e.inverse(0.5), 3.0);
        assert_eq!(e.inverse(1.0), 5.0);
    }

    #[test]
    fn ties_are_counted_together() {
        let e = Ecdf::new(&[2.0, 2.0, 2.0, 8.0]).unwrap();
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(1.9), 0.0);
    }

    #[test]
    fn points_cover_range_and_are_monotone() {
        let e = Ecdf::new(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]).unwrap();
        let pts = e.points(16);
        assert_eq!(pts.len(), 16);
        assert_eq!(pts[0].0, 1.0);
        assert_eq!(pts[15].0, 9.0);
        assert_eq!(pts[15].1, 1.0);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone: {pts:?}");
        }
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(&[]).is_err());
        assert!(Ecdf::new(&[1.0, f64::NAN]).is_err());
    }
}
