//! Hypothesis tests used by the paper's performance analysis (§5.1).

use crate::dist::{f_sf, t_test_p_two_sided};
use crate::summary::{mean, variance};
use crate::{validate, StatsError};

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (t for Welch, W ~ F for Levene).
    pub statistic: f64,
    /// Two-sided p-value (Welch) or upper-tail p-value (Levene).
    pub p_value: f64,
    /// Degrees of freedom: (df,) for Welch stored as (df, 0), (d1, d2) for
    /// Levene.
    pub df: (f64, f64),
}

impl TestResult {
    /// Conventional α = 0.05 significance check, the threshold the paper
    /// uses throughout ("p > 0.05", "p < 0.05").
    #[must_use]
    pub fn significant(&self) -> bool {
        self.p_value < 0.05
    }
}

/// Welch's unequal-variances t-test (two-sided).
///
/// Used in §5.1 to compare RTTs between physical SIMs and eSIMs: "the
/// p-value was 7.65e-5, indicating that physical SIMs perform significantly
/// better than eSIMs" (roaming countries) and "0.152 … no significant
/// difference" (native-eSIM countries).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<TestResult, StatsError> {
    validate(a)?;
    validate(b)?;
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::TooFewSamples {
            required: 2,
            got: a.len().min(b.len()),
        });
    }
    let (ma, mb) = (mean(a)?, mean(b)?);
    let (va, vb) = (variance(a)?, variance(b)?);
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        // Identical constant samples: no evidence of difference.
        let same = ma == mb;
        return Ok(TestResult {
            statistic: if same { 0.0 } else { f64::INFINITY },
            p_value: if same { 1.0 } else { 0.0 },
            df: (na + nb - 2.0, 0.0),
        });
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    Ok(TestResult {
        statistic: t,
        p_value: t_test_p_two_sided(t, df),
        df: (df, 0.0),
    })
}

/// Which center Levene's test deviates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeveneCenter {
    /// Classic Levene (deviations from the group mean).
    Mean,
    /// Brown–Forsythe variant (deviations from the group median) — more
    /// robust for the skewed RTT distributions the campaigns produce.
    Median,
}

/// Levene's test for homogeneity of variances across `k ≥ 2` groups.
///
/// The paper: "We confirmed this through Levene's test … The resulting
/// p-value of 0.025 confirms greater variability in RTTs for eSIMs compared
/// to physical SIMs."
pub fn levene_test(groups: &[&[f64]], center: LeveneCenter) -> Result<TestResult, StatsError> {
    if groups.len() < 2 {
        return Err(StatsError::TooFewSamples {
            required: 2,
            got: groups.len(),
        });
    }
    for g in groups {
        validate(g)?;
        if g.len() < 2 {
            return Err(StatsError::TooFewSamples {
                required: 2,
                got: g.len(),
            });
        }
    }
    let k = groups.len() as f64;
    let n_total: usize = groups.iter().map(|g| g.len()).sum();
    let n = n_total as f64;

    // z_ij = |x_ij - center_i|
    let z: Vec<Vec<f64>> = groups
        .iter()
        .map(|g| {
            let c = match center {
                LeveneCenter::Mean => mean(g).expect("validated"),
                LeveneCenter::Median => crate::summary::median(g).expect("validated"),
            };
            g.iter().map(|x| (x - c).abs()).collect()
        })
        .collect();

    let z_bar_i: Vec<f64> = z.iter().map(|zi| mean(zi).expect("non-empty")).collect();
    let z_bar = z.iter().flatten().sum::<f64>() / n;

    let numer: f64 = z
        .iter()
        .zip(&z_bar_i)
        .map(|(zi, zbi)| zi.len() as f64 * (zbi - z_bar).powi(2))
        .sum::<f64>()
        * (n - k);
    let denom: f64 = z
        .iter()
        .zip(&z_bar_i)
        .map(|(zi, zbi)| zi.iter().map(|zij| (zij - zbi).powi(2)).sum::<f64>())
        .sum::<f64>()
        * (k - 1.0);

    let (d1, d2) = (k - 1.0, n - k);
    if denom == 0.0 {
        // All within-group deviations identical: variances are exactly
        // homogeneous unless the group means of |deviations| differ.
        let w = if numer == 0.0 { 0.0 } else { f64::INFINITY };
        return Ok(TestResult {
            statistic: w,
            p_value: if numer == 0.0 { 1.0 } else { 0.0 },
            df: (d1, d2),
        });
    }
    let w = numer / denom;
    Ok(TestResult {
        statistic: w,
        p_value: f_sf(w, d1, d2),
        df: (d1, d2),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welch_identical_samples_not_significant() {
        let a = [5.0, 6.0, 7.0, 5.5, 6.5];
        let r = welch_t_test(&a, &a).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        assert!(!r.significant());
    }

    #[test]
    fn welch_clearly_separated_samples_significant() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02];
        let b = [10.0, 10.1, 9.9, 10.05, 9.95, 10.02];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.significant());
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert!(r.statistic < 0.0, "a < b so t must be negative");
    }

    #[test]
    fn welch_against_reference_implementation() {
        // Hand-computed: a=[1..5] has mean 3, s²=2.5; b=[2,3,4,5,7] has mean
        // 4.2, s²=3.7. t = -1.2/√1.24 = -1.07763; Welch–Satterthwaite
        // df = 1.24²/((0.5²+0.74²)/4) ≈ 7.711.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 3.0, 4.0, 5.0, 7.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(
            (r.statistic - (-1.07763)).abs() < 1e-4,
            "t = {}",
            r.statistic
        );
        assert!((r.df.0 - 7.711).abs() < 0.01, "df = {}", r.df.0);
        assert!((0.30..0.33).contains(&r.p_value), "p = {}", r.p_value);
    }

    #[test]
    fn welch_constant_equal_samples() {
        let r = welch_t_test(&[3.0, 3.0, 3.0], &[3.0, 3.0]).unwrap();
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn welch_constant_different_samples() {
        let r = welch_t_test(&[3.0, 3.0, 3.0], &[4.0, 4.0]).unwrap();
        assert_eq!(r.p_value, 0.0);
        assert!(r.significant());
    }

    #[test]
    fn levene_equal_variance_groups() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [11.0, 12.0, 13.0, 14.0, 15.0, 16.0]; // shifted, same spread
        let r = levene_test(&[&a, &b], LeveneCenter::Median).unwrap();
        assert!(!r.significant(), "equal spreads: p = {}", r.p_value);
    }

    #[test]
    fn levene_detects_heteroscedasticity() {
        let tight: Vec<f64> = (0..40).map(|i| 100.0 + 0.1 * (i % 5) as f64).collect();
        let wide: Vec<f64> = (0..40).map(|i| 100.0 + 15.0 * (i % 7) as f64).collect();
        let r = levene_test(&[&tight, &wide], LeveneCenter::Median).unwrap();
        assert!(r.significant(), "p = {}", r.p_value);
        assert!(r.statistic > 10.0);
    }

    #[test]
    fn levene_reference_value() {
        // Hand-computed Brown–Forsythe: a=[1..8] → z̄_a = 2, Σ(z−z̄_a)² = 10;
        // b=[1,1,2,2,3,3,4,4] → z̄_b = 1, Σ(z−z̄_b)² = 2.
        // W = (N−k)·Σnᵢ(z̄ᵢ−z̄)² / ((k−1)·ΣΣ(z−z̄ᵢ)²) = 14·4 / 12 = 4.6667;
        // p = P(F(1,14) > 4.6667) ≈ 0.0486 (just under the 4.60 critical
        // value at α = 0.05).
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0];
        let r = levene_test(&[&a, &b], LeveneCenter::Median).unwrap();
        assert!(
            (r.statistic - 56.0 / 12.0).abs() < 1e-9,
            "W = {}",
            r.statistic
        );
        assert!((0.045..0.052).contains(&r.p_value), "p = {}", r.p_value);
        assert_eq!(r.df, (1.0, 14.0));
    }

    #[test]
    fn levene_needs_two_groups_of_two() {
        assert!(levene_test(&[&[1.0, 2.0]], LeveneCenter::Mean).is_err());
        assert!(levene_test(&[&[1.0, 2.0], &[1.0]], LeveneCenter::Mean).is_err());
    }

    #[test]
    fn levene_constant_groups() {
        let r = levene_test(&[&[2.0, 2.0, 2.0], &[5.0, 5.0, 5.0]], LeveneCenter::Mean).unwrap();
        assert_eq!(r.p_value, 1.0, "two zero-variance groups are homogeneous");
    }
}
