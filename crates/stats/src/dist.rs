//! Special functions and distribution tails.
//!
//! Exact p-values for Welch's t-test and Levene's test need the Student-t and
//! Fisher F distributions, both of which reduce to the regularized incomplete
//! beta function `I_x(a, b)`. We implement ln-gamma (Lanczos) and `I_x`
//! (continued fraction, Numerical-Recipes style) to double precision.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~15 significant digits for positive arguments, which covers
/// every degrees-of-freedom value the tests can produce.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g=7, n=9 from the standard Lanczos tables.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma needs a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula keeps precision near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Continued-fraction evaluation (modified Lentz), with the symmetry
/// transform applied so the fraction always converges quickly.
#[must_use]
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return h;
        }
    }
    h // converged to working precision or close enough for p-value purposes
}

/// Two-sided p-value of a Student-t statistic with `df` degrees of freedom.
#[must_use]
pub fn t_test_p_two_sided(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    inc_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Upper-tail probability `P(F > f)` of a Fisher F distribution with
/// `(d1, d2)` degrees of freedom.
#[must_use]
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "degrees of freedom must be positive");
    if f <= 0.0 {
        return 1.0;
    }
    let x = d2 / (d2 + d1 * f);
    inc_beta(d2 / 2.0, d1 / 2.0, x).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_of_integers_matches_factorials() {
        // Γ(n) = (n-1)!
        let cases = [
            (1.0, 1.0_f64),
            (2.0, 1.0),
            (3.0, 2.0),
            (5.0, 24.0),
            (8.0, 5040.0),
        ];
        for (x, fact) in cases {
            assert!((ln_gamma(x) - fact.ln()).abs() < 1e-10, "Γ({x})");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn inc_beta_boundaries_and_symmetry() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = inc_beta(2.5, 1.5, 0.3);
        let w = 1.0 - inc_beta(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-12);
    }

    #[test]
    fn inc_beta_uniform_case() {
        // I_x(1,1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn t_distribution_known_values() {
        // With df=10: P(|T| > 2.228) ≈ 0.05 (classic critical value).
        let p = t_test_p_two_sided(2.228, 10.0);
        assert!((p - 0.05).abs() < 2e-3, "got {p}");
        // t = 0 → p = 1.
        assert!((t_test_p_two_sided(0.0, 5.0) - 1.0).abs() < 1e-12);
        // Huge t → p ~ 0.
        assert!(t_test_p_two_sided(50.0, 20.0) < 1e-10);
    }

    #[test]
    fn f_distribution_known_values() {
        // F(1, 10) upper 5% critical value ≈ 4.965.
        let p = f_sf(4.965, 1.0, 10.0);
        assert!((p - 0.05).abs() < 2e-3, "got {p}");
        // F ≤ 0 → survival = 1.
        assert_eq!(f_sf(0.0, 3.0, 7.0), 1.0);
    }

    #[test]
    fn f_and_t_agree_when_d1_is_one() {
        // T² with df d2 is F(1, d2): two-sided t p-value equals F survival.
        let t: f64 = 1.7;
        let df = 12.0;
        let p_t = t_test_p_two_sided(t, df);
        let p_f = f_sf(t * t, 1.0, df);
        assert!((p_t - p_f).abs() < 1e-10, "p_t={p_t} p_f={p_f}");
    }
}
