//! Point summaries: means, variances, quantiles and boxplot statistics.

use crate::{validate, StatsError};

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> Result<f64, StatsError> {
    validate(xs)?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (n−1 denominator), via Welford's algorithm.
///
/// Welford is numerically stable for the long, similar-valued RTT series the
/// campaigns produce, where the naive sum-of-squares form loses precision.
pub fn variance(xs: &[f64]) -> Result<f64, StatsError> {
    validate(xs)?;
    if xs.len() < 2 {
        return Err(StatsError::TooFewSamples {
            required: 2,
            got: xs.len(),
        });
    }
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let delta = x - mean;
        mean += delta / (i + 1) as f64;
        m2 += delta * (x - mean);
    }
    Ok(m2 / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> Result<f64, StatsError> {
    variance(xs).map(f64::sqrt)
}

/// Mean together with the half-width of its 95% confidence interval
/// (normal approximation, 1.96 · s/√n — the paper reports exactly this form,
/// e.g. "11.2 ± 2.16 Mbps").
pub fn mean_ci95(xs: &[f64]) -> Result<(f64, f64), StatsError> {
    let m = mean(xs)?;
    if xs.len() < 2 {
        return Ok((m, 0.0));
    }
    let s = stddev(xs)?;
    Ok((m, 1.96 * s / (xs.len() as f64).sqrt()))
}

/// Quantile with linear interpolation between closest ranks (type-7, the
/// numpy/R default). `q` must be in `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64, StatsError> {
    validate(xs)?;
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected by validate"));
    Ok(quantile_sorted(&sorted, q))
}

/// Quantile over an already-sorted slice (no allocation). Internal fast path
/// for callers that compute many quantiles of one sample.
pub(crate) fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Result<f64, StatsError> {
    quantile(xs, 0.5)
}

/// Five-number summary plus whiskers, i.e. exactly what each boxplot in the
/// paper's figures draws: Tukey whiskers at the last observation within
/// 1.5·IQR of the box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotSummary {
    /// Lower whisker: smallest observation ≥ Q1 − 1.5·IQR.
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker: largest observation ≤ Q3 + 1.5·IQR.
    pub whisker_hi: f64,
    /// Number of observations.
    pub n: usize,
}

impl BoxplotSummary {
    /// Compute the summary of a sample.
    pub fn from(xs: &[f64]) -> Result<Self, StatsError> {
        validate(xs)?;
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected"));
        let q1 = quantile_sorted(&sorted, 0.25);
        let med = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = *sorted
            .iter()
            .find(|&&x| x >= lo_fence)
            .expect("non-empty and q1 >= lo_fence guarantees a match");
        let whisker_hi = *sorted
            .iter()
            .rev()
            .find(|&&x| x <= hi_fence)
            .expect("non-empty and q3 <= hi_fence guarantees a match");
        Ok(BoxplotSummary {
            whisker_lo,
            q1,
            median: med,
            q3,
            whisker_hi,
            n: sorted.len(),
        })
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// True when the box "collapses to a single line", which the paper calls
    /// out as the signature of perfectly stable path lengths (Fig. 7).
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.whisker_lo == self.whisker_hi
    }
}

impl std::fmt::Display for BoxplotSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.1} |{:.1} {:.1} {:.1}| {:.1}] (n={})",
            self.whisker_lo, self.q1, self.median, self.q3, self.whisker_hi, self.n
        )
    }
}

/// Full descriptive summary of a sample, the row format used by the
/// experiment binaries when printing figure data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Half-width of the 95% CI of the mean.
    pub ci95: f64,
    /// Sample standard deviation (0 for n = 1).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// Compute the summary of a sample.
    pub fn from(xs: &[f64]) -> Result<Self, StatsError> {
        validate(xs)?;
        let (mean, ci95) = mean_ci95(xs)?;
        let sd = if xs.len() >= 2 { stddev(xs)? } else { 0.0 };
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected"));
        Ok(Summary {
            mean,
            ci95,
            stddev: sd,
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            max: *sorted.last().expect("non-empty"),
            n: xs.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
        assert_eq!(mean(&[]).unwrap_err(), StatsError::Empty);
        assert_eq!(mean(&[f64::NAN]).unwrap_err(), StatsError::NaN);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4, sample var 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let v = variance(&xs).unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn variance_needs_two_samples() {
        assert_eq!(
            variance(&[1.0]).unwrap_err(),
            StatsError::TooFewSamples {
                required: 2,
                got: 1
            }
        );
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Same variance whether values are near 0 or offset by 1e9.
        let base = [1.0, 2.0, 3.0, 4.0, 5.0];
        let shifted: Vec<f64> = base.iter().map(|x| x + 1e9).collect();
        let v1 = variance(&base).unwrap();
        let v2 = variance(&shifted).unwrap();
        assert!((v1 - v2).abs() < 1e-4, "v1={v1} v2={v2}");
    }

    #[test]
    fn quantiles_interpolate_linearly() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 2.5);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
        assert_eq!(median(&[7.0]).unwrap(), 7.0);
    }

    #[test]
    fn ci95_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let (_, ci_small) = mean_ci95(&small).unwrap();
        let (_, ci_large) = mean_ci95(&large).unwrap();
        assert!(ci_large < ci_small);
    }

    #[test]
    fn boxplot_of_uniform_ramp() {
        let xs: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let b = BoxplotSummary::from(&xs).unwrap();
        assert_eq!(b.median, 51.0);
        assert_eq!(b.q1, 26.0);
        assert_eq!(b.q3, 76.0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 101.0);
        assert!(!b.is_degenerate());
    }

    #[test]
    fn boxplot_excludes_outliers_from_whiskers() {
        let mut xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        xs.push(10_000.0); // wild outlier
        let b = BoxplotSummary::from(&xs).unwrap();
        assert!(
            b.whisker_hi <= 200.0,
            "outlier must not stretch whisker: {b}"
        );
    }

    #[test]
    fn boxplot_of_constant_sample_is_degenerate() {
        let b = BoxplotSummary::from(&[4.0; 12]).unwrap();
        assert!(b.is_degenerate());
        assert_eq!(b.median, 4.0);
        assert_eq!(b.iqr(), 0.0);
    }

    #[test]
    fn summary_combines_everything() {
        let s = Summary::from(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.n, 3);
        assert!(s.stddev > 0.0);
    }

    #[test]
    fn summary_of_single_observation() {
        let s = Summary::from(&[5.0]).unwrap();
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 5.0);
    }
}
