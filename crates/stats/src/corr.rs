//! Correlation: Pearson's r with its significance test.
//!
//! §4.3.2 reports that "statistical analysis did not support physical
//! distance from the end-user as a factor influencing these latency
//! differences (p > 0.05)" — a correlation test between SGW↔PGW distance
//! and observed breakout RTT. This module provides it.

use crate::dist::t_test_p_two_sided;
use crate::summary::mean;
use crate::{validate, StatsError};

/// Result of a correlation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correlation {
    /// Pearson's r in `[-1, 1]`.
    pub r: f64,
    /// Two-sided p-value of the null hypothesis r = 0 (t-distribution with
    /// n − 2 degrees of freedom).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl Correlation {
    /// Conventional α = 0.05 check.
    #[must_use]
    pub fn significant(&self) -> bool {
        self.p_value < 0.05
    }
}

/// Pearson correlation between paired samples.
///
/// Errors on mismatched lengths, fewer than 3 pairs, NaNs, or a
/// zero-variance side (where r is undefined).
pub fn pearson(x: &[f64], y: &[f64]) -> Result<Correlation, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::TooFewSamples {
            required: x.len(),
            got: y.len(),
        });
    }
    validate(x)?;
    validate(y)?;
    if x.len() < 3 {
        return Err(StatsError::TooFewSamples {
            required: 3,
            got: x.len(),
        });
    }
    let mx = mean(x).expect("validated");
    let my = mean(y).expect("validated");
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::NaN); // r undefined for a constant side
    }
    let r = (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0);
    let n = x.len() as f64;
    let p_value = if r.abs() >= 1.0 {
        0.0
    } else {
        let t = r * ((n - 2.0) / (1.0 - r * r)).sqrt();
        t_test_p_two_sided(t, n - 2.0)
    };
    Ok(Correlation {
        r,
        p_value,
        n: x.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_relation() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 6.0, 8.0, 10.0];
        let c = pearson(&x, &y).unwrap();
        assert!((c.r - 1.0).abs() < 1e-12);
        assert!(c.p_value < 1e-10, "p = {}", c.p_value);
        assert!(c.significant());
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        let c2 = pearson(&x, &neg).unwrap();
        assert!((c2.r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_noise_is_not_significant() {
        // A fixed, balanced pattern with zero sample correlation.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, -1.0, 1.0];
        let c = pearson(&x, &y).unwrap();
        assert!(c.r.abs() < 0.3, "r = {}", c.r);
        assert!(!c.significant(), "p = {}", c.p_value);
    }

    #[test]
    fn reference_value() {
        // Hand-computed: x=[1,2,3,4,5], y=[1,2,2,3,7]: deviations give
        // sxy=13, sxx=10, syy=22 → r = 13/√220 ≈ 0.8765.
        let c = pearson(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 2.0, 2.0, 3.0, 7.0]).unwrap();
        assert!((c.r - 13.0 / 220.0f64.sqrt()).abs() < 1e-12, "r = {}", c.r);
        assert!((0.0..=1.0).contains(&c.p_value));
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err(), "length mismatch");
        assert!(pearson(&[1.0, 2.0], &[1.0, 2.0]).is_err(), "too few pairs");
        assert!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_err(),
            "constant side"
        );
        assert!(pearson(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn symmetry() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0];
        let a = pearson(&x, &y).unwrap();
        let b = pearson(&y, &x).unwrap();
        assert!((a.r - b.r).abs() < 1e-12);
        assert!((a.p_value - b.p_value).abs() < 1e-12);
    }
}
