//! Statistics toolkit for the `roamsim` analysis pipeline.
//!
//! The paper's evaluation rests on a small set of statistical tools, all of
//! which are implemented here from first principles (no external stats
//! crates):
//!
//! * **summaries** — medians, arbitrary quantiles, five-number boxplot
//!   summaries (every boxplot figure), means with 95% confidence intervals
//!   (§5.1 quotes e.g. "31.06 ms ± 0.78 ms");
//! * **empirical CDFs** — Figs. 8, 9, 12, 17;
//! * **hypothesis tests** — Welch's t-test ("the p-value was 7.65e-5") and
//!   Levene's test for homogeneity of variances ("p-value of 0.025"), §5.1;
//! * **special functions** — ln-gamma and the regularized incomplete beta
//!   function, which give exact t- and F-distribution tail probabilities;
//! * **streaming sketches** — mergeable fixed-bucket quantile sketches and
//!   deterministic bottom-k reservoirs for population-scale runs where
//!   buffering every record is off the table (`roam-fleet`).
//!
//! All functions take `&[f64]` and make a single defensive pass; NaNs are
//! rejected explicitly rather than silently poisoning order statistics.

pub mod cdf;
pub mod corr;
pub mod dist;
pub mod stream;
pub mod summary;
pub mod test;

pub use cdf::Ecdf;
pub use corr::{pearson, Correlation};
pub use stream::{KeyedReservoir, QuantileSketch};
pub use summary::{mean, mean_ci95, median, quantile, stddev, variance, BoxplotSummary, Summary};
pub use test::{levene_test, welch_t_test, TestResult};

/// Errors produced by the statistics routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input slice was empty where at least one value is required.
    Empty,
    /// The input contained a NaN, which has no place in order statistics.
    NaN,
    /// A test needed at least `required` samples/groups but got `got`.
    TooFewSamples { required: usize, got: usize },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::Empty => write!(f, "empty input"),
            StatsError::NaN => write!(f, "input contains NaN"),
            StatsError::TooFewSamples { required, got } => {
                write!(f, "need at least {required} samples, got {got}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Validate a sample: non-empty and NaN-free.
pub(crate) fn validate(xs: &[f64]) -> Result<(), StatsError> {
    if xs.is_empty() {
        return Err(StatsError::Empty);
    }
    if xs.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NaN);
    }
    Ok(())
}
