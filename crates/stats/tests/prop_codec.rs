//! Property tests for the streaming sketches' wire form: a sketch or
//! reservoir that travels encode→decode (a checkpoint file, a worker
//! pipe) must come back *field-for-field* identical — and, the property
//! that checkpoint/resume actually rests on, merging decoded shards must
//! produce exactly the same state as merging the in-memory originals.
//! Non-finite observations and empty aggregates are part of the domain:
//! the sketch records non-finite values in `dropped` and an empty sketch
//! carries ±inf min/max, all of which must survive the round trip.

use proptest::prelude::*;
use roam_codec::{CodecError, Decoder, Encoder};
use roam_stats::{KeyedReservoir, QuantileSketch};

fn arb_observation() -> impl Strategy<Value = f64> {
    // Finite arm repeated for weight: non-finite values stay a minority
    // of each stream, as in a real run, but every case still sees some.
    prop_oneof![
        1e-3f64..1e6,
        1e-3f64..1e6,
        1e-3f64..1e6,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::log_spaced(1e-2, 1e5, 10);
    for &v in values {
        s.observe(v);
    }
    s
}

fn round_trip_sketch(s: &QuantileSketch) -> QuantileSketch {
    let mut e = Encoder::new();
    s.encode_fields(&mut e);
    let bytes = e.into_bytes();
    QuantileSketch::decode_fields(&mut Decoder::new(&bytes)).expect("clean round trip")
}

fn round_trip_reservoir(r: &KeyedReservoir<u64>) -> KeyedReservoir<u64> {
    let mut e = Encoder::new();
    r.encode_fields_with(&mut e, |se, item| se.u64(1, *item));
    let bytes = e.into_bytes();
    KeyedReservoir::decode_fields_with(&mut Decoder::new(&bytes), |se| {
        let (tag, v) = se.next_field()?.ok_or(CodecError::MissingField("item"))?;
        v.as_u64(tag)
    })
    .expect("clean round trip")
}

proptest! {
    #[test]
    fn sketch_round_trip_is_identity(
        xs in proptest::collection::vec(arb_observation(), 0..200),
    ) {
        let s = sketch_of(&xs);
        prop_assert_eq!(&round_trip_sketch(&s), &s);
    }

    #[test]
    fn decoded_sketch_shards_merge_like_in_memory_shards(
        xs in proptest::collection::vec(arb_observation(), 0..200),
        cut_frac in 0.0f64..=1.0,
    ) {
        let cut = ((xs.len() as f64) * cut_frac) as usize;
        let left = sketch_of(&xs[..cut]);
        let right = sketch_of(&xs[cut..]);
        // In-memory merge of the live shards...
        let mut mem = left.clone();
        mem.merge(&right);
        // ...equals the merge of shards that crossed the wire.
        let mut wire = round_trip_sketch(&left);
        wire.merge(&round_trip_sketch(&right));
        prop_assert_eq!(&wire, &mem);
        // And equals the single-stream sketch (partition invariance
        // survives serialization).
        prop_assert_eq!(&wire, &sketch_of(&xs));
    }

    #[test]
    fn reservoir_round_trip_is_identity(
        entries in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..120),
        cap in 0usize..16,
    ) {
        let mut r = KeyedReservoir::new(cap);
        for &(p, k) in &entries {
            r.offer(p, k, p ^ k);
        }
        prop_assert_eq!(&round_trip_reservoir(&r), &r);
    }

    #[test]
    fn decoded_reservoir_shards_merge_like_in_memory_shards(
        entries in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..120),
        cap in 1usize..16,
        cut_frac in 0.0f64..=1.0,
    ) {
        let cut = ((entries.len() as f64) * cut_frac) as usize;
        let fill = |slice: &[(u64, u64)]| {
            let mut r = KeyedReservoir::new(cap);
            for &(p, k) in slice {
                r.offer(p, k, p ^ k);
            }
            r
        };
        let left = fill(&entries[..cut]);
        let right = fill(&entries[cut..]);
        let mut mem = left.clone();
        mem.merge(&right);
        let mut wire = round_trip_reservoir(&left);
        wire.merge(&round_trip_reservoir(&right));
        prop_assert_eq!(&wire, &mem);
        prop_assert_eq!(&wire, &fill(&entries));
    }
}
