//! Property tests for the statistics kernels.

use proptest::prelude::*;
use roam_stats::dist::{f_sf, inc_beta, t_test_p_two_sided};
use roam_stats::test::LeveneCenter;
use roam_stats::{levene_test, mean, median, quantile, welch_t_test, BoxplotSummary, Ecdf};

fn arb_sample(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, min_len..200)
}

proptest! {
    #[test]
    fn quantile_is_bounded_and_monotone(xs in arb_sample(1), q1 in 0.0f64..=1.0,
                                        q2 in 0.0f64..=1.0) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v1 = quantile(&xs, q1).unwrap();
        prop_assert!((lo..=hi).contains(&v1));
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, qa).unwrap() <= quantile(&xs, qb).unwrap() + 1e-9);
    }

    #[test]
    fn mean_is_between_min_and_max(xs in arb_sample(1)) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn boxplot_invariants(xs in arb_sample(1)) {
        let b = BoxplotSummary::from(&xs).unwrap();
        // Note: whiskers are *observations* while quartiles are
        // interpolated, so on tiny samples a whisker may legitimately sit
        // inside the box; the medians still order everything.
        prop_assert!(b.whisker_lo <= b.median + 1e-9);
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        prop_assert!(b.median <= b.whisker_hi + 1e-9);
        prop_assert!(b.whisker_lo <= b.whisker_hi + 1e-9);
        prop_assert_eq!(b.n, xs.len());
        // Whiskers are actual observations.
        prop_assert!(xs.iter().any(|x| (x - b.whisker_lo).abs() < 1e-9));
        prop_assert!(xs.iter().any(|x| (x - b.whisker_hi).abs() < 1e-9));
    }

    #[test]
    fn ecdf_is_a_cdf(xs in arb_sample(1), probe in -1e6f64..1e6) {
        let e = Ecdf::new(&xs).unwrap();
        let f = e.eval(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert_eq!(e.eval(e.max()), 1.0);
        prop_assert!(e.eval(e.min() - 1.0) == 0.0);
        // frac_above complements.
        prop_assert!((e.eval(probe) + e.frac_above(probe) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_inverse_is_consistent(xs in arb_sample(1), q in 0.01f64..=1.0) {
        let e = Ecdf::new(&xs).unwrap();
        let v = e.inverse(q);
        // At least a q-fraction of the sample is ≤ v.
        prop_assert!(e.eval(v) >= q - 1e-9);
    }

    #[test]
    fn welch_is_antisymmetric(a in arb_sample(2), b in arb_sample(2)) {
        let r1 = welch_t_test(&a, &b).unwrap();
        let r2 = welch_t_test(&b, &a).unwrap();
        prop_assert!((r1.statistic + r2.statistic).abs() < 1e-9);
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
    }

    #[test]
    fn shifting_a_sample_does_not_change_levene(a in arb_sample(3), shift in -1e4f64..1e4) {
        let shifted: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let r = levene_test(&[&a, &shifted], LeveneCenter::Median).unwrap();
        // Identical spreads: W ~ 0 (up to fp noise), never significant.
        prop_assert!(r.p_value > 0.9, "p = {}", r.p_value);
    }

    #[test]
    fn inc_beta_is_a_cdf_in_x(a in 0.2f64..20.0, b in 0.2f64..20.0,
                              x1 in 0.0f64..=1.0, x2 in 0.0f64..=1.0) {
        let v1 = inc_beta(a, b, x1);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v1));
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(inc_beta(a, b, lo) <= inc_beta(a, b, hi) + 1e-9);
    }

    #[test]
    fn t_p_value_decreases_with_t(df in 1.0f64..200.0, t1 in 0.0f64..20.0, t2 in 0.0f64..20.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(t_test_p_two_sided(hi, df) <= t_test_p_two_sided(lo, df) + 1e-9);
    }

    #[test]
    fn f_sf_decreases_with_f(d1 in 1.0f64..50.0, d2 in 1.0f64..50.0,
                             f1 in 0.0f64..50.0, f2 in 0.0f64..50.0) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(f_sf(hi, d1, d2) <= f_sf(lo, d1, d2) + 1e-9);
    }

    #[test]
    fn median_is_the_half_quantile(xs in arb_sample(1)) {
        prop_assert_eq!(median(&xs).unwrap(), quantile(&xs, 0.5).unwrap());
    }
}
