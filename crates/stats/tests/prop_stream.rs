//! Property tests for the streaming sketches: the merge operations must be
//! exactly order- and partition-invariant (that is the whole point — it is
//! what makes `roam-fleet` reports byte-identical across shard counts), and
//! sketch quantiles must stay within the advertised error bound of the
//! exact order statistics.

use proptest::prelude::*;
use roam_stats::{quantile, KeyedReservoir, QuantileSketch};

fn arb_positive_sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-2f64..1e5, 1..300)
}

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::log_spaced(1e-2, 1e5, 10);
    for &v in values {
        s.observe(v);
    }
    s
}

proptest! {
    #[test]
    fn sketch_merge_is_partition_invariant(xs in arb_positive_sample(),
                                           cut_frac in 0.0f64..=1.0) {
        let cut = ((xs.len() as f64) * cut_frac) as usize;
        let whole = sketch_of(&xs);
        // Left-then-right and right-then-left partitions both reproduce
        // the single-stream sketch bit for bit.
        let mut lr = sketch_of(&xs[..cut]);
        lr.merge(&sketch_of(&xs[cut..]));
        let mut rl = sketch_of(&xs[cut..]);
        rl.merge(&sketch_of(&xs[..cut]));
        prop_assert_eq!(&whole, &lr);
        prop_assert_eq!(&whole, &rl);
    }

    #[test]
    fn sketch_merge_across_many_shards(xs in arb_positive_sample(),
                                       shards in 1usize..8) {
        let whole = sketch_of(&xs);
        let mut merged = QuantileSketch::log_spaced(1e-2, 1e5, 10);
        for i in 0..shards {
            let lo = xs.len() * i / shards;
            let hi = xs.len() * (i + 1) / shards;
            merged.merge(&sketch_of(&xs[lo..hi]));
        }
        prop_assert_eq!(whole, merged);
    }

    #[test]
    fn sketch_quantiles_respect_the_error_bound(xs in arb_positive_sample(),
                                                q in 0.0f64..=1.0) {
        let s = sketch_of(&xs);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        // The sketch is rank-based, so the advertised bound is against the
        // rank-⌈q·n⌉ order statistic (the interpolated `quantile` can sit
        // arbitrarily far from any observation on tiny wide-spread
        // samples). Within the configured range the estimate lands in the
        // same log bucket as that order statistic: one growth factor each
        // way.
        let rank = ((q * xs.len() as f64).ceil() as usize).max(1);
        let exact = sorted[rank - 1];
        let est = s.quantile(q).unwrap();
        let g = s.growth();
        prop_assert!(est <= exact * g + 1e-9, "est={est} exact={exact}");
        prop_assert!(est >= exact / g - 1e-9, "est={est} exact={exact}");
        // And always inside the exact data range.
        prop_assert!(est >= s.min() - 1e-12 && est <= s.max() + 1e-12);
        // The interpolated exact quantile is still bracketed by the
        // sketch's own min/max, which are exact.
        let interp = quantile(&sorted, q).unwrap();
        prop_assert!(interp >= s.min() - 1e-12 && interp <= s.max() + 1e-12);
    }

    #[test]
    fn sketch_observe_order_is_irrelevant(xs in arb_positive_sample()) {
        let mut rev = xs.clone();
        rev.reverse();
        prop_assert_eq!(sketch_of(&xs), sketch_of(&rev));
    }

    #[test]
    fn reservoir_merge_is_partition_invariant(
        entries in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..120),
        cap in 1usize..16,
        cut_frac in 0.0f64..=1.0,
    ) {
        let cut = ((entries.len() as f64) * cut_frac) as usize;
        let fill = |slice: &[(u64, u64)]| {
            let mut r = KeyedReservoir::new(cap);
            for &(p, k) in slice {
                r.offer(p, k, (p, k));
            }
            r
        };
        let whole = fill(&entries);
        let mut lr = fill(&entries[..cut]);
        lr.merge(&fill(&entries[cut..]));
        let mut rl = fill(&entries[cut..]);
        rl.merge(&fill(&entries[..cut]));
        prop_assert_eq!(&whole, &lr);
        prop_assert_eq!(&whole, &rl);
        prop_assert!(whole.len() <= cap);
    }

    #[test]
    fn reservoir_keeps_the_globally_smallest(
        entries in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..120),
        cap in 1usize..16,
    ) {
        // Deduplicate identities: the reservoir orders by (priority, key)
        // and duplicate pairs would make "the k smallest" ambiguous.
        let mut uniq = entries.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let mut r = KeyedReservoir::new(cap);
        for &(p, k) in &uniq {
            r.offer(p, k, (p, k));
        }
        let kept: Vec<(u64, u64)> = r.items().copied().collect();
        let expected: Vec<(u64, u64)> = uniq.iter().copied().take(cap).collect();
        prop_assert_eq!(kept, expected);
    }
}
