//! Ookla-style speedtest (§5.1 "Download and Upload Speeds", Fig. 13 b–c).
//!
//! The client picks the server nearest the device's **public-IP
//! geolocation** — for roaming eSIMs that is the breakout site, which is why
//! Fig. 11(c) is titled "latency to the nearest Ookla Speedtest server from
//! the PGW". Throughput is the policy/PHY-capped TCP transfer of the
//! selected [`roam_netsim::engine::Transport`]; latency is a real ping on
//! the measurement's own flow.

use crate::endpoint::Endpoint;
use crate::error::{MeasureError, MeasureStatus};
use crate::targets::{Service, ServiceTargets};
use roam_cellular::{Cqi, Rat};
use roam_geo::City;
use roam_netsim::throughput::TransferSpec;
use roam_netsim::Network;

/// Bytes moved by the downlink phase (Ookla-scale bulk transfer).
const DOWN_BYTES: f64 = 50e6;
/// Bytes moved by the uplink phase.
const UP_BYTES: f64 = 20e6;

/// One speedtest outcome.
#[derive(Debug, Clone, Copy)]
pub struct SpeedtestResult {
    /// Downlink goodput, Mbps.
    pub down_mbps: f64,
    /// Uplink goodput, Mbps.
    pub up_mbps: f64,
    /// Latency to the selected server, ms.
    pub latency_ms: f64,
    /// Echo attempts the latency phase consumed (probe loss shows up here).
    pub attempts: u32,
    /// Where the selected server sits.
    pub server_city: City,
    /// Channel quality during the test (the CQI the paper filters on).
    pub cqi: Cqi,
    /// RAT of the attachment.
    pub rat: Rat,
    /// How the measurement ended (ok, or ok-via-failover).
    pub status: MeasureStatus,
}

/// Run a speedtest as the flow named by `label`. `None` when no server is
/// reachable.
pub fn ookla_speedtest(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    label: &str,
) -> Option<SpeedtestResult> {
    ookla_speedtest_checked(net, endpoint, targets, label).ok()
}

/// [`ookla_speedtest`] with typed failure semantics: a missing server is
/// [`MeasureError::NoTarget`], a dead or fully-lossy path surfaces the
/// probe's error instead of a silent `None`.
///
/// # Errors
/// Propagates [`crate::endpoint::Probe::rtt_checked`] failures.
pub fn ookla_speedtest_checked(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    label: &str,
) -> Result<SpeedtestResult, MeasureError> {
    // Server selection by public-IP geolocation = breakout city.
    let server = targets
        .nearest(net, Service::Ookla, endpoint.att.breakout_city)
        .ok_or(MeasureError::NoTarget)?;
    let mut probe = endpoint.probe(net, label);
    let latency = probe.rtt_checked(server)?;
    let cqi = endpoint.channel.sample(probe.rng());

    let down = probe.goodput_mbps(&TransferSpec {
        bytes: DOWN_BYTES,
        rtt_ms: latency.rtt_ms,
        policy_rate_mbps: endpoint.effective_down_mbps(cqi),
        loss: endpoint.loss,
        setup_rtts: 1.0, // one TCP handshake; the tool reuses it for the test
        parallel: 8,     // Ookla's multi-connection measurement
    });
    let up = probe.goodput_mbps(&TransferSpec {
        bytes: UP_BYTES,
        rtt_ms: latency.rtt_ms,
        policy_rate_mbps: endpoint.effective_up_mbps(cqi),
        loss: endpoint.loss,
        setup_rtts: 1.0,
        parallel: 8,
    });

    Ok(SpeedtestResult {
        down_mbps: down,
        up_mbps: up,
        latency_ms: latency.rtt_ms,
        attempts: latency.attempts,
        server_city: net.node(server).city,
        cqi,
        rat: endpoint.rat(),
        status: latency.status(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_cellular::{ChannelSampler, MnoId, SimType};
    use roam_geo::Country;
    use roam_ipx::{Attachment, DnsMode, PgwProviderId, RoamingArch};
    use roam_netsim::link::{LatencyModel, LinkClass};
    use roam_netsim::{NodeId, NodeKind};

    fn world(tunnel_ms: f64, down: f64) -> (Network, Endpoint, ServiceTargets) {
        let mut net = Network::new(9);
        let ue = net.add_node(
            "ue",
            NodeKind::Host,
            City::Karachi,
            "10.0.0.2".parse().unwrap(),
        );
        let nat = net.add_node(
            "nat",
            NodeKind::CgNat,
            City::Singapore,
            "202.166.126.5".parse().unwrap(),
        );
        net.link_with(
            ue,
            nat,
            LinkClass::Tunnel,
            LatencyModel::fixed(tunnel_ms, 0.5),
            0.0,
        );
        let ookla_sgp = net.add_node(
            "ookla-sgp",
            NodeKind::SpEdge,
            City::Singapore,
            "202.150.1.1".parse().unwrap(),
        );
        let ookla_khi = net.add_node(
            "ookla-khi",
            NodeKind::SpEdge,
            City::Karachi,
            "119.160.1.1".parse().unwrap(),
        );
        net.link_with(
            nat,
            ookla_sgp,
            LinkClass::Peering,
            LatencyModel::fixed(1.0, 0.2),
            0.0,
        );
        net.link_with(
            nat,
            ookla_khi,
            LinkClass::Backbone,
            LatencyModel::fixed(40.0, 1.0),
            0.0,
        );
        let mut targets = ServiceTargets::new();
        targets.add(Service::Ookla, ookla_sgp);
        targets.add(Service::Ookla, ookla_khi);
        let endpoint = Endpoint {
            att: Attachment {
                ue,
                ran: ue,
                sgw: ue,
                cgnat: nat,
                public_ip: "202.166.126.5".parse().unwrap(),
                arch: RoamingArch::HomeRouted,
                provider: PgwProviderId(0),
                breakout_city: City::Singapore,
                tunnel_km: 4700.0,
                dns: DnsMode::OperatorResolver,
                teid: 2,
                v_mno: MnoId(0),
                b_mno: MnoId(1),
                rat: Rat::Lte,
                private_hops: 8,
                flow_stamp: 0x5EED,
            },
            sim_type: SimType::Esim,
            country: Country::PAK,
            label: "PAK eSIM".into(),
            policy_down_mbps: down,
            policy_up_mbps: down / 2.0,
            youtube_cap_mbps: None,
            loss: 0.0,
            channel: ChannelSampler {
                mode_cqi: 12,
                weak_tail: 0.0,
            },
        };
        (net, endpoint, targets)
    }

    #[test]
    fn server_selected_near_breakout_not_user() {
        let (mut net, ep, targets) = world(150.0, 10.0);
        let r = ookla_speedtest(&mut net, &ep, &targets, "t/0").unwrap();
        assert_eq!(
            r.server_city,
            City::Singapore,
            "HR eSIM must test against a server near the PGW"
        );
        assert!(r.latency_ms > 290.0, "tunnel dominates: {}", r.latency_ms);
        assert_eq!(r.attempts, 1, "lossless path needs one echo");
    }

    #[test]
    fn long_tunnel_degrades_goodput_at_same_policy() {
        let (mut short_net, short_ep, t1) = world(10.0, 20.0);
        let (mut long_net, long_ep, t2) = world(200.0, 20.0);
        let fast = ookla_speedtest(&mut short_net, &short_ep, &t1, "t/0").unwrap();
        let slow = ookla_speedtest(&mut long_net, &long_ep, &t2, "t/0").unwrap();
        assert!(
            slow.down_mbps < fast.down_mbps,
            "long RTT must cost goodput: {} vs {}",
            slow.down_mbps,
            fast.down_mbps
        );
    }

    #[test]
    fn policy_rate_is_approached_on_short_paths() {
        let (mut net, ep, targets) = world(5.0, 15.0);
        let r = ookla_speedtest(&mut net, &ep, &targets, "t/0").unwrap();
        assert!(
            (10.0..15.2).contains(&r.down_mbps),
            "goodput {}",
            r.down_mbps
        );
        assert!(r.up_mbps < r.down_mbps);
    }

    #[test]
    fn no_server_no_result() {
        let (mut net, ep, _) = world(5.0, 15.0);
        assert!(ookla_speedtest(&mut net, &ep, &ServiceTargets::new(), "t/0").is_none());
    }

    #[test]
    fn cqi_is_recorded_for_filtering() {
        let (mut net, mut ep, targets) = world(5.0, 15.0);
        ep.channel = ChannelSampler {
            mode_cqi: 8,
            weak_tail: 0.5,
        };
        let mut weak = 0;
        for i in 0..100 {
            let r = ookla_speedtest(&mut net, &ep, &targets, &format!("t/{i}")).unwrap();
            if !r.cqi.passes_quality_filter() {
                weak += 1;
            }
        }
        assert!(
            weak > 20,
            "weak-channel tests must appear for the filter to matter"
        );
    }

    #[test]
    fn same_label_same_result_regardless_of_history() {
        let (mut net, ep, targets) = world(5.0, 15.0);
        let a = ookla_speedtest(&mut net, &ep, &targets, "t/7").unwrap();
        // Interleave other flows; the repeat must be bit-identical.
        let _ = ookla_speedtest(&mut net, &ep, &targets, "t/8");
        let b = ookla_speedtest(&mut net, &ep, &targets, "t/7").unwrap();
        assert_eq!(a.latency_ms.to_bits(), b.latency_ms.to_bits());
        assert_eq!(a.down_mbps.to_bits(), b.down_mbps.to_bits());
        assert_eq!(a.cqi, b.cqi);
    }

    #[test]
    fn resolved_node_matches_netsim_equivalent_ids() {
        // Guard against NodeId confusion between crates.
        let (net, _, targets) = world(5.0, 15.0);
        let n = targets
            .nearest(&net, Service::Ookla, City::Singapore)
            .unwrap();
        assert_eq!(n, NodeId(2));
    }
}
