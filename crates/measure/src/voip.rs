//! VoIP quality probing — the paper's stated future work.
//!
//! §7: "future measurement campaigns could incorporate a broader suite of
//! network performance metrics, specifically including jitter and packet
//! loss, which are crucial for evaluating real-time services like Voice
//! over IP (VoIP)". This module does exactly that: a burst of probes
//! yields RTT, inter-probe jitter and loss, folded into a Mean Opinion
//! Score with the ITU-T G.107 E-model (the standard way to turn transport
//! metrics into call quality).

use crate::endpoint::Endpoint;
use crate::targets::{Service, ServiceTargets};
use roam_netsim::Network;

/// Result of a VoIP probe burst.
#[derive(Debug, Clone, Copy)]
pub struct VoipResult {
    /// Mean round-trip time, ms.
    pub rtt_ms: f64,
    /// Mean absolute inter-probe RTT difference (RFC 3550-style jitter), ms.
    pub jitter_ms: f64,
    /// Probe loss fraction (0..1).
    pub loss: f64,
    /// E-model R-factor (0–93.2 for G.711 without advantage factor).
    pub r_factor: f64,
    /// Mean Opinion Score (1.0–4.5).
    pub mos: f64,
}

impl VoipResult {
    /// ITU-T guidance buckets: ≥ 4.0 good, ≥ 3.6 fair ("users satisfied"),
    /// ≥ 3.1 "some users dissatisfied", below that poor.
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        match self.mos {
            m if m >= 4.0 => "good",
            m if m >= 3.6 => "fair",
            m if m >= 3.1 => "degraded",
            _ => "poor",
        }
    }
}

/// Compute the E-model R-factor and MOS from transport metrics.
///
/// G.107-style: `R = 93.2 − Id − Ie_eff`. The delay impairment combines
/// the linear echo-free term `0.024·d` with the interactivity impairment
/// `Idd` (the G.107 sixth-root form, zero below 100 ms one-way and
/// increasingly steep beyond). Loss uses the G.711+PLC effective equipment
/// impairment `Ie_eff = 95·p/(p + Bpl)` with `Bpl = 25` (random loss,
/// concealment on). Jitter consumed by the de-jitter buffer is charged as
/// extra delay (buffer ≈ 2× jitter).
#[must_use]
pub fn e_model(rtt_ms: f64, jitter_ms: f64, loss: f64) -> (f64, f64) {
    let one_way = rtt_ms / 2.0 + 2.0 * jitter_ms + 25.0; // + codec/packetisation
    let idd = if one_way <= 100.0 {
        0.0
    } else {
        let x = (one_way / 100.0).ln() / std::f64::consts::LN_2;
        let p6 = |v: f64| (1.0 + v.powi(6)).powf(1.0 / 6.0);
        25.0 * (p6(x) - 3.0 * p6(x / 3.0) + 2.0)
    };
    let id = 0.024 * one_way + idd;
    let p = loss * 100.0;
    let ie_eff = 95.0 * p / (p + 25.0);
    let r = (93.2 - id - ie_eff).clamp(0.0, 100.0);
    // Standard R→MOS mapping.
    let mos = if r <= 0.0 {
        1.0
    } else if r >= 100.0 {
        4.5
    } else {
        1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6
    };
    (r, mos.clamp(1.0, 4.5))
}

/// Probe the nearest Google edge with `probes` pings as the flow named by
/// `label`, and score the path for VoIP. `None` when no edge is reachable
/// at all.
pub fn voip_probe(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    probes: u32,
    label: &str,
) -> Option<VoipResult> {
    assert!(probes >= 2, "jitter needs at least two samples");
    let dst = targets.nearest(net, Service::Google, endpoint.att.breakout_city)?;
    let mut probe = endpoint.probe(net, label);
    let mut rtts = Vec::new();
    let mut lost = 0u32;
    for _ in 0..probes {
        match probe.ping(dst) {
            Some(r) => rtts.push(r.rtt_ms),
            None => lost += 1,
        }
    }
    if rtts.len() < 2 {
        // Effectively a dead path: report a floor-quality result.
        return Some(VoipResult {
            rtt_ms: f64::INFINITY,
            jitter_ms: f64::INFINITY,
            loss: 1.0,
            r_factor: 0.0,
            mos: 1.0,
        });
    }
    let mean = rtts.iter().sum::<f64>() / rtts.len() as f64;
    let jitter =
        rtts.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (rtts.len() - 1) as f64;
    let loss = f64::from(lost) / f64::from(probes);
    // The access network's residual loss applies even to delivered bursts.
    let loss = (loss + endpoint.loss).min(1.0);
    let (r_factor, mos) = e_model(mean, jitter, loss);
    Some(VoipResult {
        rtt_ms: mean,
        jitter_ms: jitter,
        loss,
        r_factor,
        mos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e_model_orders_paths_sensibly() {
        let (_, good) = e_model(40.0, 2.0, 0.001);
        let (_, hr) = e_model(400.0, 2.0, 0.001);
        let (_, extreme) = e_model(700.0, 2.0, 0.001);
        let (_, lossy) = e_model(40.0, 2.0, 0.05);
        let (_, jittery) = e_model(40.0, 40.0, 0.001);
        assert!(good > 4.0, "clean short path is 'good': {good}");
        assert!(
            hr < good - 0.3,
            "HR-scale delay noticeably degrades calls: {hr}"
        );
        assert!(
            extreme < good - 0.8,
            "extreme delay wrecks calls: {extreme}"
        );
        assert!(
            lossy < good - 0.5,
            "5% loss degrades calls even with PLC: {lossy}"
        );
        assert!(jittery < good, "jitter charges the de-jitter buffer");
    }

    #[test]
    fn mos_is_bounded() {
        for (rtt, j, l) in [(1.0, 0.0, 0.0), (2000.0, 500.0, 0.9), (100.0, 10.0, 0.01)] {
            let (r, mos) = e_model(rtt, j, l);
            assert!((0.0..=100.0).contains(&r));
            assert!((1.0..=4.5).contains(&mos));
        }
    }

    #[test]
    fn verdict_buckets() {
        let mk = |mos| VoipResult {
            rtt_ms: 0.0,
            jitter_ms: 0.0,
            loss: 0.0,
            r_factor: 0.0,
            mos,
        };
        assert_eq!(mk(4.2).verdict(), "good");
        assert_eq!(mk(3.8).verdict(), "fair");
        assert_eq!(mk(3.3).verdict(), "degraded");
        assert_eq!(mk(2.0).verdict(), "poor");
    }

    #[test]
    fn delay_penalty_kicks_in_past_the_knee() {
        // Below the 177.3 ms one-way knee the slope is gentle; above, steep.
        let (r1, _) = e_model(120.0, 0.0, 0.0); // one-way ≈ 85 (below knee)
        let (r2, _) = e_model(240.0, 0.0, 0.0); // one-way ≈ 145
        let (r3, _) = e_model(480.0, 0.0, 0.0); // one-way ≈ 265 (well past knee)
        let gentle = r1 - r2;
        let steep = r2 - r3;
        assert!(
            steep > gentle * 2.0,
            "gentle {gentle:.2} vs steep {steep:.2}"
        );
    }
}
