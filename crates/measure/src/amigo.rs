//! The AmiGo-style testbed: control server + instrumented endpoints.
//!
//! §3.2: the device campaign "extends the (open-source) AmiGo code, which
//! provides a control server to remotely manage mobile measurement
//! endpoints (MEs)". The MEs (1) report status — "device vitals like
//! battery level and connectivity, as well as radio-level metrics (RSSI,
//! SNR, CQI)" — and (2) retrieve instrumentation to execute. This module is
//! that machinery:
//!
//! * [`DeviceVitals`] — the status report;
//! * [`Instrumentation`] — one executable job (a measurement, or a SIM
//!   switch on the dual-SIM phone);
//! * [`ControlServer`] — queues jobs per ME, collects reports, and models
//!   the operational frictions behind Table 4's lopsided `SIM // eSIM`
//!   counts: MEs skip work below a battery floor, and Ookla-style
//!   server-side **rate limiting per public IP** rejects bursts — which
//!   bites physical SIMs hardest because a whole operator's customers share
//!   few CG-NAT addresses ("likely triggered by IP address aggregation by
//!   the local operator", §A.3);
//! * [`MeasurementEndpoint`] — executes jobs against an attached
//!   [`Endpoint`], draining battery and updating radio vitals per job.

use crate::campaign::{CampaignData, RecordTag, SpeedtestRecord, TraceRecord};
use crate::cdn::{fetch_jquery, CdnOptions, CdnProvider};
use crate::dns::resolve;
use crate::endpoint::Endpoint;
use crate::speedtest::ookla_speedtest;
use crate::targets::{Service, ServiceTargets};
use crate::trace::mtr_run;
use crate::video::play_youtube;
use rand::rngs::SmallRng;
use rand::Rng;
use roam_netsim::Network;
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

/// Which SIM slot the dual-SIM phone has active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimSlot {
    /// The local physical SIM.
    Physical,
    /// The aggregator eSIM.
    Esim,
}

/// The status report an ME posts to the control server.
#[derive(Debug, Clone, Copy)]
pub struct DeviceVitals {
    /// Battery level, 0–100.
    pub battery_pct: f64,
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Signal-to-noise ratio, dB.
    pub snr_db: f64,
    /// Channel quality indicator of the last sample.
    pub cqi: u8,
    /// Is a data bearer up?
    pub connected: bool,
}

/// One job the server hands an ME.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instrumentation {
    /// Switch the active SIM slot.
    SwitchSim(SimSlot),
    /// Ookla-style speedtest.
    Speedtest,
    /// `mtr` to a service.
    Traceroute(Service),
    /// Fetch jquery.min.js from a CDN.
    CdnFetch(CdnProvider),
    /// Resolver discovery + lookup timing.
    DnsCheck,
    /// YouTube stats-for-nerds session.
    Video,
    /// Plug the phone in for a while (volunteers charge overnight).
    Charge,
}

/// Why a job produced no record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// Battery below the floor; the ME reported status and went back to
    /// sleep.
    LowBattery,
    /// The measurement server rejected the request (per-IP rate limiting).
    RateLimited,
    /// The network path failed (no route / all probes lost).
    NetworkFailure,
}

/// The control server.
#[derive(Debug)]
pub struct ControlServer {
    queues: HashMap<u32, VecDeque<Instrumentation>>,
    vitals: HashMap<u32, DeviceVitals>,
    skips: Vec<(u32, Instrumentation, SkipReason)>,
    /// Ookla-style limiter: completed speedtests per public IP.
    ookla_counts: HashMap<Ipv4Addr, u32>,
    /// Speedtests allowed per public IP per campaign window.
    pub ookla_limit_per_ip: u32,
}

impl ControlServer {
    /// A server with the given per-IP speedtest allowance.
    #[must_use]
    pub fn new(ookla_limit_per_ip: u32) -> Self {
        ControlServer {
            queues: HashMap::new(),
            vitals: HashMap::new(),
            skips: Vec::new(),
            ookla_counts: HashMap::new(),
            ookla_limit_per_ip,
        }
    }

    /// Queue a job for an ME.
    pub fn push_job(&mut self, me: u32, job: Instrumentation) {
        self.queues.entry(me).or_default().push_back(job);
    }

    /// Queue the standard alternating day plan: switch to each slot and run
    /// the whole Table-1 suite on it.
    pub fn push_day_plan(&mut self, me: u32, rounds: u32) {
        for _ in 0..rounds {
            for slot in [SimSlot::Physical, SimSlot::Esim] {
                self.push_job(me, Instrumentation::SwitchSim(slot));
                self.push_job(me, Instrumentation::Speedtest);
                for svc in [Service::Google, Service::Facebook, Service::YouTube] {
                    self.push_job(me, Instrumentation::Traceroute(svc));
                }
                for p in CdnProvider::ALL {
                    self.push_job(me, Instrumentation::CdnFetch(p));
                }
                self.push_job(me, Instrumentation::DnsCheck);
                self.push_job(me, Instrumentation::Video);
            }
        }
        self.push_job(me, Instrumentation::Charge);
    }

    /// The restful "give me work" endpoint.
    pub fn next_instruction(&mut self, me: u32) -> Option<Instrumentation> {
        self.queues.get_mut(&me)?.pop_front()
    }

    /// The restful "here is my status" endpoint.
    pub fn report_status(&mut self, me: u32, vitals: DeviceVitals) {
        self.vitals.insert(me, vitals);
    }

    /// Last reported vitals of an ME.
    #[must_use]
    pub fn vitals_of(&self, me: u32) -> Option<DeviceVitals> {
        self.vitals.get(&me).copied()
    }

    /// Record a skip.
    fn record_skip(&mut self, me: u32, job: Instrumentation, why: SkipReason) {
        self.skips.push((me, job, why));
    }

    /// All skips observed, for campaign accounting.
    #[must_use]
    pub fn skips(&self) -> &[(u32, Instrumentation, SkipReason)] {
        &self.skips
    }

    /// Ookla admission control: count a speedtest attempt from `ip`,
    /// rejecting once the per-IP allowance is spent.
    fn admit_speedtest(&mut self, ip: Ipv4Addr) -> bool {
        let n = self.ookla_counts.entry(ip).or_insert(0);
        if *n >= self.ookla_limit_per_ip {
            false
        } else {
            *n += 1;
            true
        }
    }
}

/// A rooted dual-SIM phone carried by a volunteer.
#[derive(Debug)]
pub struct MeasurementEndpoint {
    /// ME identifier at the control server.
    pub id: u32,
    /// The physical-SIM attachment.
    pub physical: Endpoint,
    /// The eSIM attachment.
    pub esim: Endpoint,
    active: SimSlot,
    battery_pct: f64,
    /// MEs stop measuring below this battery level.
    pub battery_floor: f64,
    /// Jobs executed so far — names each job's measurement flow.
    jobs_run: u64,
}

/// Battery cost per job, percent.
fn battery_cost(job: Instrumentation) -> f64 {
    match job {
        Instrumentation::SwitchSim(_) => 0.2,
        Instrumentation::Speedtest => 2.2, // bulk transfer is expensive
        Instrumentation::Traceroute(_) => 0.4,
        Instrumentation::CdnFetch(_) => 0.3,
        Instrumentation::DnsCheck => 0.1,
        Instrumentation::Video => 3.0, // screen + decode + radio
        Instrumentation::Charge => 0.0,
    }
}

impl MeasurementEndpoint {
    /// A freshly provisioned ME, physical SIM active, full battery.
    #[must_use]
    pub fn new(id: u32, physical: Endpoint, esim: Endpoint) -> Self {
        MeasurementEndpoint {
            id,
            physical,
            esim,
            active: SimSlot::Physical,
            battery_pct: 100.0,
            battery_floor: 15.0,
            jobs_run: 0,
        }
    }

    /// Currently active endpoint.
    #[must_use]
    pub fn active_endpoint(&self) -> &Endpoint {
        match self.active {
            SimSlot::Physical => &self.physical,
            SimSlot::Esim => &self.esim,
        }
    }

    /// Current battery level.
    #[must_use]
    pub fn battery(&self) -> f64 {
        self.battery_pct
    }

    /// Build the vitals report from the active endpoint's channel state.
    pub fn vitals(&self, rng: &mut SmallRng) -> DeviceVitals {
        let cqi = self.active_endpoint().channel.sample(rng);
        // Map CQI to plausible RSSI/SNR (linear stand-ins).
        DeviceVitals {
            battery_pct: self.battery_pct,
            rssi_dbm: -110.0 + 3.2 * f64::from(cqi.value()),
            snr_db: -5.0 + 1.8 * f64::from(cqi.value()),
            cqi: cqi.value(),
            connected: true,
        }
    }

    /// Poll the server once: fetch one instruction, execute it, deliver the
    /// record into `data`. Returns the executed instruction (if any work was
    /// queued).
    pub fn poll(
        &mut self,
        server: &mut ControlServer,
        net: &mut Network,
        targets: &ServiceTargets,
        data: &mut CampaignData,
        rng: &mut SmallRng,
    ) -> Option<Instrumentation> {
        let job = server.next_instruction(self.id)?;
        server.report_status(self.id, self.vitals(rng));

        // Battery gate: below the floor the ME only reports status.
        if self.battery_pct < self.battery_floor
            && !matches!(job, Instrumentation::Charge | Instrumentation::SwitchSim(_))
        {
            server.record_skip(self.id, job, SkipReason::LowBattery);
            return Some(job);
        }
        self.battery_pct = (self.battery_pct - battery_cost(job)).max(0.0);

        let ep = match self.active {
            SimSlot::Physical => self.physical.clone(),
            SimSlot::Esim => self.esim.clone(),
        };
        let tag = RecordTag {
            country: ep.country,
            sim_type: ep.sim_type,
            arch: ep.att.arch,
            rat: ep.att.rat,
        };
        // Each executed job is its own flow: the label carries the ME id
        // and a monotone job counter.
        let label = format!("amigo/{}/{}", self.id, self.jobs_run);
        self.jobs_run += 1;
        match job {
            Instrumentation::SwitchSim(slot) => self.active = slot,
            Instrumentation::Charge => self.battery_pct = 100.0,
            Instrumentation::Speedtest => {
                if !server.admit_speedtest(ep.att.public_ip) {
                    server.record_skip(self.id, job, SkipReason::RateLimited);
                } else if let Some(r) = ookla_speedtest(net, &ep, targets, &label) {
                    data.speedtests.push(SpeedtestRecord {
                        tag,
                        down_mbps: r.down_mbps,
                        up_mbps: r.up_mbps,
                        latency_ms: r.latency_ms,
                        attempts: r.attempts,
                        cqi: Some(r.cqi),
                        status: r.status,
                    });
                } else {
                    server.record_skip(self.id, job, SkipReason::NetworkFailure);
                }
            }
            Instrumentation::Traceroute(service) => {
                match mtr_run(net, &ep, targets, service, self.jobs_run as u32) {
                    Some(out) => {
                        let status = if out.analysis.reached {
                            crate::error::MeasureStatus::Ok
                        } else {
                            crate::error::MeasureStatus::Timeout
                        };
                        data.traces.push(TraceRecord {
                            tag,
                            service,
                            analysis: out.analysis,
                            status,
                        });
                    }
                    None => server.record_skip(self.id, job, SkipReason::NetworkFailure),
                }
            }
            Instrumentation::CdnFetch(provider) => {
                match fetch_jquery(net, &ep, targets, provider, CdnOptions::default(), &label) {
                    Some(r) => data.cdns.push(crate::campaign::CdnRecord {
                        tag,
                        provider,
                        total_ms: r.total_ms,
                        dns_ms: r.dns_ms,
                        cache_hit: r.cache_hit,
                        status: r.status,
                    }),
                    None => server.record_skip(self.id, job, SkipReason::NetworkFailure),
                }
            }
            Instrumentation::DnsCheck => {
                match resolve(net, &ep, targets, "test.nextdns.io", &label) {
                    Some(r) => data.dns.push(crate::campaign::DnsRecord {
                        tag,
                        lookup_ms: r.lookup_ms,
                        attempts: r.attempts,
                        resolver_city: Some(r.resolver_city),
                        doh: r.doh,
                        status: r.status,
                    }),
                    None => server.record_skip(self.id, job, SkipReason::NetworkFailure),
                }
            }
            Instrumentation::Video => match play_youtube(net, &ep, targets, &label) {
                Some(r) => data.videos.push(crate::campaign::VideoRecord {
                    tag,
                    resolution: Some(r.resolution),
                    rebuffered: r.rebuffered,
                    status: r.status,
                }),
                None => server.record_skip(self.id, job, SkipReason::NetworkFailure),
            },
        }
        // Idle drain between polls.
        self.battery_pct = (self.battery_pct - rng.gen::<f64>() * 0.3).max(0.0);
        Some(job)
    }

    /// Drain the ME's whole queue.
    pub fn run_to_completion(
        &mut self,
        server: &mut ControlServer,
        net: &mut Network,
        targets: &ServiceTargets,
        data: &mut CampaignData,
        rng: &mut SmallRng,
    ) {
        while self.poll(server, net, targets, data, rng).is_some() {}
    }
}
