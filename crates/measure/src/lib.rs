//! Measurement clients and campaign orchestration.
//!
//! This crate is the simulator's counterpart of the paper's tooling stack —
//! the AmiGo-instrumented rooted Androids of the device campaign and the
//! JavaScript battery of the web campaign:
//!
//! | paper tool                | module        | observable                          |
//! |---------------------------|---------------|-------------------------------------|
//! | `mtr` to Google/FB/YT     | [`trace`]     | per-hop IP + RTT, path analysis     |
//! | Ookla speedtest           | [`speedtest`] | down/up Mbps + latency              |
//! | fast.com in an iframe     | [`webtest`]   | downlink + latency (web campaign)   |
//! | `curl` of jquery.min.js   | [`cdn`]       | download time, DNS time, HIT/MISS   |
//! | NextDNS resolver check    | [`dns`]       | resolver identity + lookup time     |
//! | YouTube stats-for-nerds   | [`video`]     | playback resolution, rebuffering    |
//!
//! [`endpoint::Endpoint`] bundles an attachment with the policy and channel
//! context a measurement needs; [`campaign`] drives the full device-based
//! and web-based campaigns with per-country sample counts mirroring
//! Tables 3 and 4. [`parallel`] is the deterministic shard runner the
//! campaign harness uses to spread per-country shards across worker
//! threads while keeping seeded output bit-identical to a sequential run.

pub mod amigo;
pub mod campaign;
pub mod cdn;
pub mod dns;
pub mod endpoint;
pub mod error;
pub mod export;
pub mod parallel;
pub mod speedtest;
pub mod suite;
pub mod targets;
pub mod trace;
pub mod video;
pub mod voip;
pub mod webtest;

pub use amigo::{
    ControlServer, DeviceVitals, Instrumentation, MeasurementEndpoint, SimSlot, SkipReason,
};
pub use campaign::{
    run_device_campaign, run_measurement, run_web_measurement, CampaignData, CdnRecord,
    DegradationSummary, DeviceCampaignSpec, DnsRecord, PlannedMeasurement, SpeedtestRecord,
    TraceRecord, VideoRecord, WebRecord,
};
pub use cdn::{fetch_jquery, fetch_jquery_checked, CdnProvider, CdnResult};
pub use dns::{
    resolve, resolve_checked, resolve_timing, resolve_timing_args, select_resolver, DnsResult,
    DnsTiming, ResolverPlan,
};
pub use endpoint::{Endpoint, Probe, ProbeRtt};
pub use error::{MeasureError, MeasureStatus};
pub use export::{
    status_code, tag_cells, CellValue, ColumnarSink, DataSink, Dataset, Exporter, MemorySink,
    SharedSink, VoipRecord, BOOL_LABELS, STATUS_LABELS,
};
pub use parallel::{run_shards, shard_seed, RunMode};
pub use speedtest::{ookla_speedtest, ookla_speedtest_checked, SpeedtestResult};
pub use suite::{measurement_suite, MeasurementKind};
pub use targets::{Service, ServiceTargets};
pub use trace::{mtr, mtr_run, mtr_run_checked, TraceOutcome};
pub use video::{play_youtube, play_youtube_checked, Resolution, VideoResult};
pub use voip::{e_model, voip_probe, VoipResult};
pub use webtest::{fastcom_test, fastcom_test_checked, WebTestResult};
