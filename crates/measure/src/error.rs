//! Typed measurement failures and the export-facing status column.
//!
//! Under the fault plane ([`roam_netsim::FaultSpec`]) a measurement can
//! fail for reasons the paper's field campaign hit daily: a probe eaten by
//! a burst-lossy link, a breakout gateway mid-outage, a blackholed anycast
//! resolver. Those outcomes surface as a [`MeasureError`], and campaigns
//! record them as explicit rows tagged with a [`MeasureStatus`] rather
//! than silent gaps, so a degraded run is distinguishable from a short one.

use roam_ipx::AttachError;

/// Why a measurement produced no sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureError {
    /// Every echo — including backoff retry rounds — was lost in transit.
    Timeout {
        /// Total echo attempts consumed before giving up.
        attempts: u32,
    },
    /// The destination is unroutable, or it will never answer probes.
    Unreachable,
    /// The scenario registered no target for the service. This is a gap in
    /// the world, not a network failure; campaigns skip it silently.
    NoTarget,
    /// Session establishment itself failed.
    Attach(AttachError),
}

impl MeasureError {
    /// The status a record of this failure carries in exports.
    #[must_use]
    pub fn status(&self) -> MeasureStatus {
        match self {
            MeasureError::Timeout { .. } => MeasureStatus::Timeout,
            MeasureError::Unreachable | MeasureError::NoTarget | MeasureError::Attach(_) => {
                MeasureStatus::Unreachable
            }
        }
    }

    /// Echo attempts the failed measurement consumed, when known.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        match self {
            MeasureError::Timeout { attempts } => *attempts,
            _ => 0,
        }
    }
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::Timeout { attempts } => {
                write!(f, "probe timed out after {attempts} echo attempts")
            }
            MeasureError::Unreachable => write!(f, "destination unreachable"),
            MeasureError::NoTarget => write!(f, "no target registered for the service"),
            MeasureError::Attach(e) => write!(f, "attach failed: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MeasureError::Attach(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AttachError> for MeasureError {
    fn from(e: AttachError) -> Self {
        MeasureError::Attach(e)
    }
}

/// The `status` column every exported row carries: how the measurement
/// behind the record ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MeasureStatus {
    /// Completed on the primary path.
    #[default]
    Ok,
    /// Completed, but traffic detoured via a failover gateway.
    Failover,
    /// All probes (and retries) were lost.
    Timeout,
    /// The destination was unroutable or silent.
    Unreachable,
}

impl MeasureStatus {
    /// The stable column value (`ok`/`failover`/`timeout`/`unreachable`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MeasureStatus::Ok => "ok",
            MeasureStatus::Failover => "failover",
            MeasureStatus::Timeout => "timeout",
            MeasureStatus::Unreachable => "unreachable",
        }
    }

    /// Did the measurement produce a sample (possibly via failover)?
    #[must_use]
    pub fn is_ok(self) -> bool {
        matches!(self, MeasureStatus::Ok | MeasureStatus::Failover)
    }
}

impl std::fmt::Display for MeasureStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_strings_are_stable() {
        assert_eq!(MeasureStatus::Ok.as_str(), "ok");
        assert_eq!(MeasureStatus::Failover.as_str(), "failover");
        assert_eq!(MeasureStatus::Timeout.as_str(), "timeout");
        assert_eq!(MeasureStatus::Unreachable.as_str(), "unreachable");
    }

    #[test]
    fn error_maps_to_status() {
        assert_eq!(
            MeasureError::Timeout { attempts: 9 }.status(),
            MeasureStatus::Timeout
        );
        assert_eq!(MeasureError::Timeout { attempts: 9 }.attempts(), 9);
        assert_eq!(
            MeasureError::Unreachable.status(),
            MeasureStatus::Unreachable
        );
        assert_eq!(MeasureError::NoTarget.status(), MeasureStatus::Unreachable);
    }

    #[test]
    fn ok_and_failover_count_as_samples() {
        assert!(MeasureStatus::Ok.is_ok());
        assert!(MeasureStatus::Failover.is_ok());
        assert!(!MeasureStatus::Timeout.is_ok());
        assert!(!MeasureStatus::Unreachable.is_ok());
    }
}
