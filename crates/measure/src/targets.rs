//! Service targets: where the things we measure against live.
//!
//! The world builder registers the edge/server nodes of every service the
//! campaigns touch; measurement clients then ask for "the nearest Ookla
//! server to this city" etc. Selection by proximity to the *egress* city is
//! deliberate: Ookla, fast.com and anycast DNS all pick servers near the
//! client's **public IP geolocation**, which for a roaming eSIM is the PGW,
//! not the user (§5.1 — the source of much of the measured inflation).

use crate::cdn::CdnProvider;
use roam_geo::City;
use roam_netsim::{Network, NodeId};
use std::collections::HashMap;

/// A measurable service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Service {
    /// Google front-end (traceroute + RTT target).
    Google,
    /// Facebook edge (traceroute + RTT target).
    Facebook,
    /// YouTube front-end (traceroute target + video source).
    YouTube,
    /// Ookla speedtest server.
    Ookla,
    /// Netflix fast.com server (web campaign).
    FastCom,
    /// A CDN edge.
    Cdn(CdnProvider),
}

impl Service {
    /// The service's name as it appears in exported datasets — identical
    /// to the `Debug` rendering the CSV emitters have always used, so the
    /// columnar `service` dictionary and the historical CSV column hold
    /// the same strings (pinned by a test).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Service::Google => "Google",
            Service::Facebook => "Facebook",
            Service::YouTube => "YouTube",
            Service::Ookla => "Ookla",
            Service::FastCom => "FastCom",
            Service::Cdn(CdnProvider::Cloudflare) => "Cdn(Cloudflare)",
            Service::Cdn(CdnProvider::GoogleCdn) => "Cdn(GoogleCdn)",
            Service::Cdn(CdnProvider::JsDelivr) => "Cdn(JsDelivr)",
            Service::Cdn(CdnProvider::JQuery) => "Cdn(JQuery)",
            Service::Cdn(CdnProvider::MicrosoftAjax) => "Cdn(MicrosoftAjax)",
        }
    }
}

/// Registry of service nodes, plus DNS resolvers.
#[derive(Debug, Default)]
pub struct ServiceTargets {
    nodes: HashMap<Service, Vec<NodeId>>,
    /// CDN origin servers (used on cache misses), one per provider.
    origins: HashMap<CdnProvider, NodeId>,
    /// Google Public DNS anycast sites.
    google_dns: Vec<NodeId>,
    /// Operator-run resolvers, keyed by the MNO id that runs them.
    operator_dns: HashMap<u32, NodeId>,
}

impl ServiceTargets {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a service node.
    pub fn add(&mut self, service: Service, node: NodeId) {
        self.nodes.entry(service).or_default().push(node);
    }

    /// Register a CDN origin.
    pub fn set_origin(&mut self, provider: CdnProvider, node: NodeId) {
        self.origins.insert(provider, node);
    }

    /// Register a Google Public DNS anycast site.
    pub fn add_google_dns(&mut self, node: NodeId) {
        self.google_dns.push(node);
    }

    /// Register an operator resolver.
    pub fn set_operator_dns(&mut self, mno: roam_cellular::MnoId, node: NodeId) {
        self.operator_dns.insert(mno.0, node);
    }

    /// All nodes of a service.
    #[must_use]
    pub fn all(&self, service: Service) -> &[NodeId] {
        self.nodes.get(&service).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The service node geographically nearest to `city`.
    #[must_use]
    pub fn nearest(&self, net: &Network, service: Service, city: City) -> Option<NodeId> {
        Self::nearest_of(net, self.all(service), city)
    }

    /// The CDN origin for a provider.
    #[must_use]
    pub fn origin(&self, provider: CdnProvider) -> Option<NodeId> {
        self.origins.get(&provider).copied()
    }

    /// Google DNS sites ordered by distance from `city` (anycast routing
    /// approximation; the caller may flip between the closest two to model
    /// anycast instability).
    #[must_use]
    pub fn google_dns_by_distance(&self, net: &Network, city: City) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.google_dns.clone();
        let here = city.location();
        v.sort_by(|a, b| {
            let da = net.node(*a).city.location().distance_km(here);
            let db = net.node(*b).city.location().distance_km(here);
            da.partial_cmp(&db).expect("no NaN distances")
        });
        v
    }

    /// The resolver run by `mno`, if registered.
    #[must_use]
    pub fn operator_dns(&self, mno: roam_cellular::MnoId) -> Option<NodeId> {
        self.operator_dns.get(&mno.0).copied()
    }

    fn nearest_of(net: &Network, nodes: &[NodeId], city: City) -> Option<NodeId> {
        let here = city.location();
        nodes.iter().copied().min_by(|a, b| {
            let da = net.node(*a).city.location().distance_km(here);
            let db = net.node(*b).city.location().distance_km(here);
            da.partial_cmp(&db).expect("no NaN distances")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_netsim::NodeKind;

    fn net_with_edges() -> (Network, ServiceTargets, NodeId, NodeId) {
        let mut net = Network::new(1);
        let fra = net.add_node(
            "g-fra",
            NodeKind::SpEdge,
            City::Frankfurt,
            "142.250.1.1".parse().unwrap(),
        );
        let sgp = net.add_node(
            "g-sgp",
            NodeKind::SpEdge,
            City::Singapore,
            "142.250.2.1".parse().unwrap(),
        );
        let mut t = ServiceTargets::new();
        t.add(Service::Google, fra);
        t.add(Service::Google, sgp);
        (net, t, fra, sgp)
    }

    #[test]
    fn nearest_picks_by_geography() {
        let (net, t, fra, sgp) = net_with_edges();
        assert_eq!(t.nearest(&net, Service::Google, City::Berlin), Some(fra));
        assert_eq!(
            t.nearest(&net, Service::Google, City::KualaLumpur),
            Some(sgp)
        );
    }

    #[test]
    fn missing_service_yields_none() {
        let (net, t, _, _) = net_with_edges();
        assert!(t.nearest(&net, Service::Ookla, City::Berlin).is_none());
        assert!(t.all(Service::Facebook).is_empty());
    }

    #[test]
    fn google_dns_ordering() {
        let mut net = Network::new(1);
        let ams = net.add_node(
            "dns-ams",
            NodeKind::DnsResolver,
            City::Amsterdam,
            "8.8.8.1".parse().unwrap(),
        );
        let sgp = net.add_node(
            "dns-sgp",
            NodeKind::DnsResolver,
            City::Singapore,
            "8.8.8.2".parse().unwrap(),
        );
        let mut t = ServiceTargets::new();
        t.add_google_dns(ams);
        t.add_google_dns(sgp);
        let ordered = t.google_dns_by_distance(&net, City::Lille);
        assert_eq!(ordered, vec![ams, sgp]);
        let ordered = t.google_dns_by_distance(&net, City::Bangkok);
        assert_eq!(ordered, vec![sgp, ams]);
    }

    #[test]
    fn operator_dns_lookup() {
        let mut net = Network::new(1);
        let r = net.add_node(
            "singtel-dns",
            NodeKind::DnsResolver,
            City::Singapore,
            "165.21.83.88".parse().unwrap(),
        );
        let mut t = ServiceTargets::new();
        t.set_operator_dns(roam_cellular::MnoId(4), r);
        assert_eq!(t.operator_dns(roam_cellular::MnoId(4)), Some(r));
        assert!(t.operator_dns(roam_cellular::MnoId(5)).is_none());
    }

    #[test]
    fn service_names_match_the_debug_rendering() {
        // The trace CSV has always written `{:?}`; `name()` must stay
        // byte-identical so columnar dictionaries agree with old exports.
        let all = [
            Service::Google,
            Service::Facebook,
            Service::YouTube,
            Service::Ookla,
            Service::FastCom,
            Service::Cdn(CdnProvider::Cloudflare),
            Service::Cdn(CdnProvider::GoogleCdn),
            Service::Cdn(CdnProvider::JsDelivr),
            Service::Cdn(CdnProvider::JQuery),
            Service::Cdn(CdnProvider::MicrosoftAjax),
        ];
        for s in all {
            assert_eq!(s.name(), format!("{s:?}"));
        }
    }
}
