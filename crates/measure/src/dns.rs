//! DNS resolution timing and resolver discovery (§5.1 "DNS Lookup Time").
//!
//! Behaviour by configuration, exactly as the paper reports it:
//!
//! * physical SIMs, native eSIMs and HR eSIMs resolve at **their operator's
//!   resolver** ("DNS resolution occurs locally within the b-MNO") over
//!   plain Do53 — MNO resolvers "mostly do not support DoH";
//! * IHBO eSIMs use **Google Public DNS** via anycast, which lands on a
//!   resolver near the *PGW* (74% same-country in the paper), and — because
//!   recent Android defaults it on and the authors "forgot" to disable it —
//!   pay the **DoH** TLS setup on top.
//!
//! The query itself round-trips a real RFC 1035 message through the wire
//! codec, so malformed-response bugs would surface here.

use crate::endpoint::Endpoint;
use crate::error::{MeasureError, MeasureStatus};
use crate::targets::ServiceTargets;
use rand::rngs::SmallRng;
use rand::Rng;
use roam_geo::City;
use roam_ipx::DnsMode;
use roam_netsim::wire::DnsMessage;
use roam_netsim::{Network, NodeId};
use std::net::Ipv4Addr;

/// Outcome of one resolver lookup.
#[derive(Debug, Clone)]
pub struct DnsResult {
    /// Total lookup time, ms.
    pub lookup_ms: f64,
    /// Echo attempts the resolver RTT phase consumed.
    pub attempts: u32,
    /// The resolver that answered.
    pub resolver: NodeId,
    /// Resolver's (unicast) address — what the NextDNS trick uncovers.
    pub resolver_ip: Ipv4Addr,
    /// Resolver's city.
    pub resolver_city: City,
    /// Was DoH used?
    pub doh: bool,
    /// The answer records.
    pub answers: Vec<Ipv4Addr>,
    /// How the lookup ended (ok, or ok-via-failover).
    pub status: MeasureStatus,
}

/// The precomputed resolver selection for one endpoint: which resolver(s)
/// its queries can land on, with the anycast pair already ordered by
/// distance. Everything in [`select_resolver`] except the per-lookup
/// anycast coin is a pure function of the topology and the endpoint's DNS
/// mode, so population-scale callers build one plan per endpoint and skip
/// the per-lookup clone-and-sort of the whole Google site list.
#[derive(Debug, Clone, Copy)]
pub struct ResolverPlan {
    choice: ResolverChoice,
}

#[derive(Debug, Clone, Copy)]
enum ResolverChoice {
    /// No resolver registered for this mode — every lookup is `NoTarget`.
    Unreachable,
    /// A single resolver; no draw is consumed picking it.
    Fixed(NodeId),
    /// Nearest and second-nearest anycast sites; each lookup draws the
    /// instability coin.
    Anycast(NodeId, NodeId),
}

impl ResolverPlan {
    /// Resolve the endpoint's DNS mode against the registry once.
    #[must_use]
    pub fn new(net: &Network, endpoint: &Endpoint, targets: &ServiceTargets) -> Self {
        let choice = match endpoint.att.dns {
            DnsMode::OperatorResolver => match targets.operator_dns(endpoint.att.b_mno) {
                Some(n) => ResolverChoice::Fixed(n),
                None => ResolverChoice::Unreachable,
            },
            DnsMode::GooglePublic { .. } => {
                let ordered = targets.google_dns_by_distance(net, endpoint.att.breakout_city);
                match ordered.len() {
                    0 => ResolverChoice::Unreachable,
                    1 => ResolverChoice::Fixed(ordered[0]),
                    _ => ResolverChoice::Anycast(ordered[0], ordered[1]),
                }
            }
        };
        ResolverPlan { choice }
    }

    /// The resolver one lookup lands on, drawing the anycast coin from the
    /// flow's stream exactly as [`select_resolver`] does.
    #[must_use]
    pub fn pick(&self, rng: &mut SmallRng) -> Option<NodeId> {
        match self.choice {
            ResolverChoice::Unreachable => None,
            ResolverChoice::Fixed(n) => Some(n),
            ResolverChoice::Anycast(near, next) => {
                Some(if rng.gen_bool(0.25) { next } else { near })
            }
        }
    }
}

/// Pick the resolver an endpoint's queries land on.
///
/// Anycast instability: with probability ~0.25 the query lands on the
/// *second*-nearest Google site instead of the nearest — reproducing the
/// paper's Dallas-PGW eSIM flipping between Fort Worth (20 km) and Tulsa
/// (380 km), and the overall "74% of queries in the same country as the
/// PGW".
pub fn select_resolver(
    net: &Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    rng: &mut SmallRng,
) -> Option<NodeId> {
    ResolverPlan::new(net, endpoint, targets).pick(rng)
}

/// Resolve `qname` from the endpoint as the flow named by `label`,
/// returning timing and resolver identity. `None` when no resolver is
/// reachable.
pub fn resolve(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    qname: &str,
    label: &str,
) -> Option<DnsResult> {
    resolve_checked(net, endpoint, targets, qname, label).ok()
}

/// [`resolve`] with typed failure semantics: a scenario without a
/// resolver is [`MeasureError::NoTarget`]; a blackholed or unreachable
/// resolver surfaces the probe's error.
///
/// # Errors
/// Propagates [`crate::endpoint::Probe::rtt_checked`] failures.
pub fn resolve_checked(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    qname: &str,
    label: &str,
) -> Result<DnsResult, MeasureError> {
    let mut probe = endpoint.probe(net, label);
    let resolver = {
        let (net_ref, flow) = probe.parts();
        select_resolver(net_ref, endpoint, targets, flow.rng()).ok_or(MeasureError::NoTarget)?
    };
    let sample = probe.rtt_checked(resolver)?;
    let rtt = sample.rtt_ms;

    let doh = matches!(endpoint.att.dns, DnsMode::GooglePublic { doh: true });
    let (query_id, answer_ip, lookup_ms) = draw_lookup_tail(probe.rng(), rtt, doh);

    // Encode the query and the response through the real codec.
    let query = DnsMessage::query(query_id, qname);
    let wire = query.encode();
    let parsed = DnsMessage::decode(&wire).expect("self-encoded query");
    let response = DnsMessage::response(&parsed, vec![answer_ip]);
    let decoded = DnsMessage::decode(&response.encode()).expect("self-encoded response");

    // Only two fields of the node are needed — copy them instead of
    // cloning the whole node (its name is a heap String) per lookup.
    let (resolver_ip, resolver_city) = {
        let (net_ref, _) = probe.parts();
        let n = net_ref.node(resolver);
        (n.ip, n.city)
    };
    Ok(DnsResult {
        lookup_ms,
        attempts: sample.attempts,
        resolver,
        resolver_ip,
        resolver_city,
        doh,
        answers: decoded.answers,
        status: sample.status(),
    })
}

/// The draws every lookup makes after its resolver RTT, in order: query
/// id, two answer octets, server think time, DoH setup coin. Shared by
/// the full and lean paths so their flow streams cannot drift.
#[inline]
fn draw_lookup_tail(rng: &mut SmallRng, rtt: f64, doh: bool) -> (u16, Ipv4Addr, f64) {
    let query_id: u16 = rng.gen();
    let answer_ip = Ipv4Addr::new(93, 184, rng.gen(), rng.gen::<u8>().max(1));
    // Server-side resolution work (cache fill, upstream fetch) 2–9 ms.
    let server_ms = 2.0 + rng.gen::<f64>() * 7.0;
    // DoH: TCP + TLS1.3 handshake (2 RTTs) before the query can go out —
    // but Android keeps the DoH connection warm, so only a fraction of
    // lookups pay the full setup; warm queries pay record-layer overhead.
    let doh_ms = if doh {
        if rng.gen_bool(0.4) {
            2.0 * rtt + 4.0
        } else {
            4.0
        }
    } else {
        0.0
    };
    (query_id, answer_ip, rtt + server_ms + doh_ms)
}

/// What the lean resolve path reports: the timing observables and nothing
/// that needs a node lookup or an allocation.
#[derive(Debug, Clone, Copy)]
pub struct DnsTiming {
    /// Total lookup time, ms — identical to [`DnsResult::lookup_ms`].
    pub lookup_ms: f64,
    /// Echo attempts the resolver RTT phase consumed.
    pub attempts: u32,
    /// How the lookup ended (ok, or ok-via-failover).
    pub status: MeasureStatus,
}

/// The population-scale resolve path: a precomputed [`ResolverPlan`], a
/// `format_args!` label, and no wire-codec round trip (the query/response
/// encoding is pure ceremony when nobody reads the answer records — the
/// lean path draws the *same* query-id and answer octets so the flow's
/// RNG stream, and therefore `lookup_ms`, is bit-identical to
/// [`resolve_checked`] with the same label).
///
/// # Errors
/// Exactly [`resolve_checked`]'s: `NoTarget` without a resolver,
/// otherwise the probe's failure.
pub fn resolve_timing_args(
    net: &mut Network,
    endpoint: &Endpoint,
    plan: &ResolverPlan,
    label: std::fmt::Arguments<'_>,
) -> Result<DnsTiming, MeasureError> {
    let probe = endpoint.probe_args(net, label);
    resolve_timing_probe(probe, endpoint, plan)
}

/// [`resolve_timing_args`] with a plain `&str` label — for callers that
/// already hold the label bytes (hashing them skips the `fmt` machinery
/// entirely).
///
/// # Errors
/// Exactly [`resolve_checked`]'s.
pub fn resolve_timing(
    net: &mut Network,
    endpoint: &Endpoint,
    plan: &ResolverPlan,
    label: &str,
) -> Result<DnsTiming, MeasureError> {
    let probe = endpoint.probe(net, label);
    resolve_timing_probe(probe, endpoint, plan)
}

fn resolve_timing_probe(
    mut probe: crate::endpoint::Probe<'_>,
    endpoint: &Endpoint,
    plan: &ResolverPlan,
) -> Result<DnsTiming, MeasureError> {
    let resolver = plan.pick(probe.rng()).ok_or(MeasureError::NoTarget)?;
    let sample = probe.rtt_checked(resolver)?;
    let doh = matches!(endpoint.att.dns, DnsMode::GooglePublic { doh: true });
    let (_, _, lookup_ms) = draw_lookup_tail(probe.rng(), sample.rtt_ms, doh);
    Ok(DnsTiming {
        lookup_ms,
        attempts: sample.attempts,
        status: sample.status(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_cellular::{ChannelSampler, MnoId, Rat, SimType};
    use roam_geo::Country;
    use roam_ipx::{Attachment, PgwProviderId, RoamingArch};
    use roam_netsim::link::{LatencyModel, LinkClass};
    use roam_netsim::NodeKind;

    /// Build: ue —(20ms)— cgnat(AMS) —— resolvers in AMS + SGP.
    fn world(dns: DnsMode) -> (Network, Endpoint, ServiceTargets) {
        let mut net = Network::new(5);
        let ue = net.add_node(
            "ue",
            NodeKind::Host,
            City::Berlin,
            "10.0.0.2".parse().unwrap(),
        );
        let nat = net.add_node(
            "nat",
            NodeKind::CgNat,
            City::Amsterdam,
            "147.75.81.1".parse().unwrap(),
        );
        net.link_with(
            ue,
            nat,
            LinkClass::Tunnel,
            LatencyModel::fixed(20.0, 0.0),
            0.0,
        );
        let dns_ams = net.add_node(
            "gdns-ams",
            NodeKind::DnsResolver,
            City::Amsterdam,
            "8.8.8.10".parse().unwrap(),
        );
        let dns_sgp = net.add_node(
            "gdns-sgp",
            NodeKind::DnsResolver,
            City::Singapore,
            "8.8.8.20".parse().unwrap(),
        );
        let op_dns = net.add_node(
            "op-dns",
            NodeKind::DnsResolver,
            City::Amsterdam,
            "165.21.83.88".parse().unwrap(),
        );
        net.link_with(
            nat,
            dns_ams,
            LinkClass::Metro,
            LatencyModel::fixed(1.0, 0.0),
            0.0,
        );
        net.link_with(
            nat,
            dns_sgp,
            LinkClass::Backbone,
            LatencyModel::fixed(80.0, 0.0),
            0.0,
        );
        net.link_with(
            nat,
            op_dns,
            LinkClass::Metro,
            LatencyModel::fixed(1.0, 0.0),
            0.0,
        );
        let mut targets = ServiceTargets::new();
        targets.add_google_dns(dns_ams);
        targets.add_google_dns(dns_sgp);
        targets.set_operator_dns(MnoId(1), op_dns);
        let endpoint = Endpoint {
            att: Attachment {
                ue,
                ran: ue,
                sgw: ue,
                cgnat: nat,
                public_ip: "147.75.81.1".parse().unwrap(),
                arch: RoamingArch::IpxHubBreakout,
                provider: PgwProviderId(0),
                breakout_city: City::Amsterdam,
                tunnel_km: 600.0,
                dns,
                teid: 1,
                v_mno: MnoId(0),
                b_mno: MnoId(1),
                rat: Rat::Lte,
                private_hops: 3,
                flow_stamp: 0xD45,
            },
            sim_type: SimType::Esim,
            country: Country::DEU,
            label: "test".into(),
            policy_down_mbps: 10.0,
            policy_up_mbps: 5.0,
            youtube_cap_mbps: None,
            loss: 0.0,
            channel: ChannelSampler::default(),
        };
        (net, endpoint, targets)
    }

    #[test]
    fn ihbo_uses_google_resolver_near_pgw() {
        let (mut net, ep, targets) = world(DnsMode::GooglePublic { doh: false });
        let mut ams = 0;
        let mut sgp = 0;
        for i in 0..200 {
            let r = resolve(&mut net, &ep, &targets, "google.com", &format!("d/{i}")).unwrap();
            match r.resolver_city {
                City::Amsterdam => ams += 1,
                City::Singapore => sgp += 1,
                other => panic!("unexpected resolver in {other}"),
            }
        }
        // ~75% nearest, ~25% anycast flip.
        assert!(ams > 120 && sgp > 20, "ams={ams} sgp={sgp}");
    }

    #[test]
    fn operator_mode_uses_bmno_resolver() {
        let (mut net, ep, targets) = world(DnsMode::OperatorResolver);
        let r = resolve(&mut net, &ep, &targets, "google.com", "d/0").unwrap();
        assert_eq!(r.resolver_ip, "165.21.83.88".parse::<Ipv4Addr>().unwrap());
        assert!(!r.doh, "operator resolvers do not speak DoH");
        assert_eq!(r.attempts, 1, "lossless resolver path needs one echo");
    }

    #[test]
    fn doh_costs_extra_round_trips() {
        let (mut net, ep_doh, targets) = world(DnsMode::GooglePublic { doh: true });
        let mut doh_times = vec![];
        let mut plain_times = vec![];
        for i in 0..50 {
            let r = resolve(&mut net, &ep_doh, &targets, "x.com", &format!("doh/{i}")).unwrap();
            if r.resolver_city == City::Amsterdam {
                doh_times.push(r.lookup_ms);
            }
        }
        let (mut net2, ep_plain, targets2) = world(DnsMode::GooglePublic { doh: false });
        for i in 0..50 {
            let r = resolve(&mut net2, &ep_plain, &targets2, "x.com", &format!("p/{i}")).unwrap();
            if r.resolver_city == City::Amsterdam {
                plain_times.push(r.lookup_ms);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // Cold DoH setups (≈40% of lookups) average out to a clear penalty
        // over a 20 ms resolver path.
        assert!(
            avg(&doh_times) > avg(&plain_times) + 12.0,
            "DoH {:.1} vs Do53 {:.1}",
            avg(&doh_times),
            avg(&plain_times)
        );
    }

    #[test]
    fn answers_survive_the_wire_codec() {
        let (mut net, ep, targets) = world(DnsMode::GooglePublic { doh: false });
        let r = resolve(&mut net, &ep, &targets, "cdn.example.org", "d/0").unwrap();
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn missing_resolver_returns_none() {
        let (mut net, ep, _) = world(DnsMode::OperatorResolver);
        let empty = ServiceTargets::new();
        assert!(resolve(&mut net, &ep, &empty, "x.com", "d/0").is_none());
    }

    #[test]
    fn lean_path_matches_full_resolve_bit_for_bit() {
        for dns in [
            DnsMode::OperatorResolver,
            DnsMode::GooglePublic { doh: false },
            DnsMode::GooglePublic { doh: true },
        ] {
            let (mut net, ep, targets) = world(dns);
            let plan = ResolverPlan::new(&net, &ep, &targets);
            for i in 0..100 {
                let full = resolve_checked(
                    &mut net,
                    &ep,
                    &targets,
                    "fleet.airalo.com",
                    &format!("eq/{i}"),
                )
                .unwrap();
                let lean =
                    resolve_timing_args(&mut net, &ep, &plan, format_args!("eq/{i}")).unwrap();
                assert_eq!(
                    full.lookup_ms.to_bits(),
                    lean.lookup_ms.to_bits(),
                    "{dns:?} lookup {i} diverged: {} vs {}",
                    full.lookup_ms,
                    lean.lookup_ms
                );
                assert_eq!(full.attempts, lean.attempts);
                assert_eq!(full.status, lean.status);
            }
        }
    }

    #[test]
    fn lean_path_reports_missing_resolver_as_no_target() {
        let (mut net, ep, _) = world(DnsMode::OperatorResolver);
        let empty = ServiceTargets::new();
        let plan = ResolverPlan::new(&net, &ep, &empty);
        assert!(matches!(
            resolve_timing_args(&mut net, &ep, &plan, format_args!("d/0")),
            Err(MeasureError::NoTarget)
        ));
    }
}
