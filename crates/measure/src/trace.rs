//! `mtr`-style traceroute to a service provider (§4.3, Figs. 6–10, 12).

use crate::endpoint::Endpoint;
use crate::error::MeasureError;
use crate::targets::{Service, ServiceTargets};
use roam_core::{analyze_traceroute, PathAnalysis};
use roam_netsim::{Network, Traceroute, TracerouteOpts};

/// A traceroute plus its decomposition.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// The service that was traced.
    pub service: Service,
    /// Raw hop data.
    pub traceroute: Traceroute,
    /// The paper's private/public decomposition.
    pub analysis: PathAnalysis,
}

/// Run `mtr` from the endpoint to the nearest edge of `service` (edge
/// selection is anycast-like: nearest to the breakout, where the client's
/// DNS resolves it). `None` when no edge is registered.
///
/// Convenience wrapper for a single run; campaigns that repeat the trace
/// use [`mtr_run`] so each repetition gets its own flow.
pub fn mtr(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    service: Service,
) -> Option<TraceOutcome> {
    mtr_run(net, endpoint, targets, service, 0)
}

/// Run the `run`-th `mtr` repetition toward `service` on its own flow
/// (`"mtr/{service}/{run}"`).
pub fn mtr_run(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    service: Service,
    run: u32,
) -> Option<TraceOutcome> {
    mtr_run_checked(net, endpoint, targets, service, run).ok()
}

/// [`mtr_run`] with typed failure semantics: a service with no registered
/// edge is [`MeasureError::NoTarget`]. A traceroute that does not reach
/// its target is still a valid outcome (the paper's unreached traces are
/// data, not errors) — `analysis.reached` carries that distinction.
///
/// # Errors
/// [`MeasureError::NoTarget`] when no edge is registered for `service`.
pub fn mtr_run_checked(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    service: Service,
    run: u32,
) -> Result<TraceOutcome, MeasureError> {
    let dst = targets
        .nearest(net, service, endpoint.att.breakout_city)
        .ok_or(MeasureError::NoTarget)?;
    let label = format!("mtr/{service:?}/{run}");
    let mut probe = endpoint.probe(net, &label);
    let traceroute = probe.traceroute(dst, TracerouteOpts::default());
    let analysis = analyze_traceroute(&traceroute, net.registry());
    Ok(TraceOutcome {
        service,
        traceroute,
        analysis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_cellular::{ChannelSampler, MnoId, Rat, SimType};
    use roam_geo::{City, Country};
    use roam_ipx::{Attachment, DnsMode, PgwProviderId, RoamingArch};
    use roam_netsim::link::{LatencyModel, LinkClass};
    use roam_netsim::registry::well_known;
    use roam_netsim::{Ipv4Net, NodeKind};

    #[test]
    fn mtr_produces_consistent_analysis() {
        let mut net = Network::new(41);
        let ue = net.add_node(
            "ue",
            NodeKind::Host,
            City::Doha,
            "10.0.0.2".parse().unwrap(),
        );
        let core = net.add_node(
            "core",
            NodeKind::Router,
            City::Lille,
            "10.0.0.9".parse().unwrap(),
        );
        let nat = net.add_node(
            "nat",
            NodeKind::CgNat,
            City::Lille,
            "141.95.2.2".parse().unwrap(),
        );
        let g = net.add_node(
            "g-par",
            NodeKind::SpEdge,
            City::Paris,
            "142.250.3.3".parse().unwrap(),
        );
        net.link_with(
            ue,
            core,
            LinkClass::Tunnel,
            LatencyModel::fixed(45.0, 2.0),
            0.0,
        );
        net.link_with(
            core,
            nat,
            LinkClass::Metro,
            LatencyModel::fixed(0.4, 0.1),
            0.0,
        );
        net.link_geo(nat, g, LinkClass::Peering);
        net.registry_mut().register(
            Ipv4Net::parse("141.95.0.0/16").unwrap(),
            well_known::OVH,
            "OVH SAS",
            City::Lille,
        );
        net.registry_mut().register(
            Ipv4Net::parse("142.250.0.0/16").unwrap(),
            well_known::GOOGLE,
            "Google",
            City::Paris,
        );
        let mut targets = ServiceTargets::new();
        targets.add(Service::Google, g);
        let ep = Endpoint {
            att: Attachment {
                ue,
                ran: ue,
                sgw: ue,
                cgnat: nat,
                public_ip: "141.95.2.2".parse().unwrap(),
                arch: RoamingArch::IpxHubBreakout,
                provider: PgwProviderId(0),
                breakout_city: City::Lille,
                tunnel_km: 4800.0,
                dns: DnsMode::GooglePublic { doh: true },
                teid: 6,
                v_mno: MnoId(0),
                b_mno: MnoId(1),
                rat: Rat::Lte,
                private_hops: 2,
                flow_stamp: 0x0071_24CE,
            },
            sim_type: SimType::Esim,
            country: Country::QAT,
            label: "QAT eSIM".into(),
            policy_down_mbps: 10.0,
            policy_up_mbps: 5.0,
            youtube_cap_mbps: None,
            loss: 0.0,
            channel: ChannelSampler::default(),
        };
        let out = mtr(&mut net, &ep, &targets, Service::Google).unwrap();
        assert!(out.analysis.reached);
        assert_eq!(out.analysis.pgw_asn, Some(well_known::OVH));
        assert_eq!(out.analysis.pgw_city, Some(City::Lille));
        assert_eq!(out.analysis.unique_public_asns, 2);
        // PGW RTT dominated by the 45 ms tunnel: share near 1.
        assert!(out.analysis.private_share.unwrap() > 0.85);
        // Missing service yields None.
        assert!(mtr(&mut net, &ep, &targets, Service::Facebook).is_none());
    }
}
