//! A measurement endpoint: an attached SIM/eSIM plus its policy context.

use roam_cellular::{phy_rate_mbps, ChannelSampler, Cqi, Rat, SimType};
use roam_geo::Country;
use roam_ipx::Attachment;
use roam_netsim::Network;

/// Everything a measurement client needs to know about the device it runs
/// on: the attachment (node handles, breakout, DNS mode) and the resolved
/// subscriber policy the v-MNO applies to it.
#[derive(Debug, Clone)]
pub struct Endpoint {
    /// The live attachment in the network.
    pub att: Attachment,
    /// Physical SIM or eSIM — the comparison axis of every figure.
    pub sim_type: SimType,
    /// Country the endpoint measures from.
    pub country: Country,
    /// Label for report rows, e.g. `"PAK eSIM"`.
    pub label: String,
    /// Downlink policy rate the serving network enforces, Mbps.
    pub policy_down_mbps: f64,
    /// Uplink policy rate, Mbps.
    pub policy_up_mbps: f64,
    /// Optional video-service cap (traffic differentiation, §5.2).
    pub youtube_cap_mbps: Option<f64>,
    /// End-to-end loss characteristic of the serving access network.
    pub loss: f64,
    /// Channel-condition sampler for per-test CQI draws.
    pub channel: ChannelSampler,
}

impl Endpoint {
    /// Effective downlink ceiling for a test taken at channel quality
    /// `cqi`: the policy rate capped by what the air interface can carry.
    #[must_use]
    pub fn effective_down_mbps(&self, cqi: Cqi) -> f64 {
        self.policy_down_mbps.min(phy_rate_mbps(self.att.rat, cqi))
    }

    /// Effective uplink ceiling (uplink PHY is roughly half of downlink
    /// for the TDD/FDD mixes in play).
    #[must_use]
    pub fn effective_up_mbps(&self, cqi: Cqi) -> f64 {
        self.policy_up_mbps
            .min(phy_rate_mbps(self.att.rat, cqi) * 0.5)
    }

    /// RAT of the attachment.
    #[must_use]
    pub fn rat(&self) -> Rat {
        self.att.rat
    }

    /// Base RTT from the device to a node, ms (measured by ping with
    /// retries).
    pub fn rtt_to(&self, net: &mut Network, dst: roam_netsim::NodeId) -> Option<f64> {
        net.rtt_ms(self.att.ue, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_ipx::{DnsMode, PgwProviderId, RoamingArch};
    use roam_netsim::NodeId;

    fn endpoint(rat: Rat, down: f64) -> Endpoint {
        Endpoint {
            att: Attachment {
                ue: NodeId(0),
                ran: NodeId(1),
                sgw: NodeId(2),
                cgnat: NodeId(3),
                public_ip: "198.51.100.7".parse().unwrap(),
                arch: RoamingArch::IpxHubBreakout,
                provider: PgwProviderId(0),
                breakout_city: roam_geo::City::Amsterdam,
                tunnel_km: 600.0,
                dns: DnsMode::GooglePublic { doh: true },
                teid: 7,
                v_mno: roam_cellular::MnoId(0),
                b_mno: roam_cellular::MnoId(1),
                rat,
                private_hops: 8,
            },
            sim_type: SimType::Esim,
            country: Country::DEU,
            label: "DEU eSIM".into(),
            policy_down_mbps: down,
            policy_up_mbps: 10.0,
            youtube_cap_mbps: None,
            loss: 0.001,
            channel: ChannelSampler::default(),
        }
    }

    #[test]
    fn policy_binds_when_channel_is_good() {
        let e = endpoint(Rat::Nr5g, 20.0);
        // CQI 15 on NR carries ~250 Mbps; policy 20 binds.
        assert_eq!(e.effective_down_mbps(Cqi::new(15)), 20.0);
    }

    #[test]
    fn channel_binds_when_weak() {
        let e = endpoint(Rat::Lte, 100.0);
        // CQI 7 on LTE ≈ 22 Mbps < policy 100.
        let eff = e.effective_down_mbps(Cqi::new(7));
        assert!(eff < 30.0, "PHY-limited: {eff}");
    }

    #[test]
    fn uplink_is_half_phy() {
        let e = endpoint(Rat::Lte, 100.0);
        let up = e.effective_up_mbps(Cqi::new(7));
        let down = e.effective_down_mbps(Cqi::new(7));
        assert!(up <= down / 2.0 + 1e-9);
    }
}
