//! A measurement endpoint: an attached SIM/eSIM plus its policy context,
//! and the probe API every measurement client opens its flows through.

use crate::error::{MeasureError, MeasureStatus};
use rand::rngs::SmallRng;
use rand::Rng;
use roam_cellular::{phy_rate_mbps, ChannelSampler, Cqi, Rat, SimType};
use roam_geo::Country;
use roam_ipx::Attachment;
use roam_netsim::engine::{flow_seed, flow_seed_args, Flow, FlowId, Transport, TransportKind};
use roam_netsim::{
    Network, NodeId, PingResult, ProbeError, RttSample, Traceroute, TracerouteOpts, TransferSpec,
};
use roam_telemetry::{Counter, Event, EventScope, Hist, Sink};
use std::fmt;

/// Everything a measurement client needs to know about the device it runs
/// on: the attachment (node handles, breakout, DNS mode) and the resolved
/// subscriber policy the v-MNO applies to it.
#[derive(Debug, Clone)]
pub struct Endpoint {
    /// The live attachment in the network.
    pub att: Attachment,
    /// Physical SIM or eSIM — the comparison axis of every figure.
    pub sim_type: SimType,
    /// Country the endpoint measures from.
    pub country: Country,
    /// Label for report rows, e.g. `"PAK eSIM"`.
    pub label: String,
    /// Downlink policy rate the serving network enforces, Mbps.
    pub policy_down_mbps: f64,
    /// Uplink policy rate, Mbps.
    pub policy_up_mbps: f64,
    /// Optional video-service cap (traffic differentiation, §5.2).
    pub youtube_cap_mbps: Option<f64>,
    /// End-to-end loss characteristic of the serving access network.
    pub loss: f64,
    /// Channel-condition sampler for per-test CQI draws.
    pub channel: ChannelSampler,
}

impl Endpoint {
    /// Effective downlink ceiling for a test taken at channel quality
    /// `cqi`: the policy rate capped by what the air interface can carry.
    #[must_use]
    pub fn effective_down_mbps(&self, cqi: Cqi) -> f64 {
        self.policy_down_mbps.min(phy_rate_mbps(self.att.rat, cqi))
    }

    /// Effective uplink ceiling (uplink PHY is roughly half of downlink
    /// for the TDD/FDD mixes in play).
    #[must_use]
    pub fn effective_up_mbps(&self, cqi: Cqi) -> f64 {
        self.policy_up_mbps
            .min(phy_rate_mbps(self.att.rat, cqi) * 0.5)
    }

    /// RAT of the attachment.
    #[must_use]
    pub fn rat(&self) -> Rat {
        self.att.rat
    }

    /// Open a measurement flow on this endpoint. `label` names the
    /// measurement (`"ookla/0"`, `"cdn/Cloudflare/2"`…); together with the
    /// attachment's flow stamp it determines the flow's entire RNG stream,
    /// so the probe's results do not depend on what ran before it.
    pub fn probe<'n>(&self, net: &'n mut Network, label: &str) -> Probe<'n> {
        // Hash the label bytes directly — no `fmt` machinery on this path.
        let seed = flow_seed(self.att.flow_stamp, label);
        self.probe_seeded(net, seed, || label.to_string())
    }

    /// [`Endpoint::probe`] taking the label as [`fmt::Arguments`]
    /// (`format_args!(…)`). The flow seed hashes the formatted bytes
    /// directly, so `probe_args(net, format_args!("a/{i}"))` opens the
    /// *same* flow as `probe(net, &format!("a/{i}"))` without the
    /// per-probe `String` — the hot-loop variant for population-scale
    /// callers.
    pub fn probe_args<'n>(&self, net: &'n mut Network, label: fmt::Arguments<'_>) -> Probe<'n> {
        let seed = flow_seed_args(self.att.flow_stamp, label);
        self.probe_seeded(net, seed, || label.to_string())
    }

    fn probe_seeded<'n>(
        &self,
        net: &'n mut Network,
        seed: u64,
        label: impl FnOnce() -> String,
    ) -> Probe<'n> {
        net.telemetry_mut().add(Counter::FlowsOpened, 1);
        // The event label is only materialised when the run keeps an event
        // stream — the disabled path must not allocate.
        let ev_label = if net.telemetry().wants_events() {
            Some(label())
        } else {
            None
        };
        Probe {
            ue: self.att.ue,
            flow: Flow::open(seed),
            transport: TransportKind::current().transport(),
            ev_label,
            net,
        }
    }
}

/// A successful checked RTT measurement (see [`Probe::rtt_checked`]).
#[derive(Debug, Clone, Copy)]
pub struct ProbeRtt {
    /// Round-trip time of the successful echo, ms.
    pub rtt_ms: f64,
    /// Echo attempts consumed across every retry round.
    pub attempts: u32,
    /// Did the exchange traverse a failover gateway?
    pub failover: bool,
}

impl ProbeRtt {
    /// The status this sample stamps on its record.
    #[must_use]
    pub fn status(&self) -> MeasureStatus {
        if self.failover {
            MeasureStatus::Failover
        } else {
            MeasureStatus::Ok
        }
    }
}

/// Base backoff delay after a fully-lost probe, ms.
const BACKOFF_BASE_MS: f64 = 200.0;
/// Extra retry rounds a probe gets when the fault plane is active. Each
/// round is itself a 3-echo [`Network::rtt_probe`]-style exchange.
const BACKOFF_ROUNDS: u32 = 2;
/// A probe (including its backoff waits) never runs longer than this.
const PROBE_DEADLINE_MS: f64 = 2_000.0;

/// One measurement flow in flight: the endpoint's UE, a private RNG
/// stream, and the transport that times bulk transfers. All network I/O a
/// client performs — pings, traceroutes, transfers, server think-time
/// draws — goes through here; clients never touch the network's shared
/// RNG or the throughput formulas directly.
pub struct Probe<'n> {
    net: &'n mut Network,
    ue: NodeId,
    flow: Flow,
    transport: &'static dyn Transport,
    ev_label: Option<String>,
}

impl Probe<'_> {
    /// The flow's identity (its derived seed).
    #[must_use]
    pub fn flow_id(&self) -> FlowId {
        self.flow.id()
    }

    /// RTT to `dst` with retries, reporting the echo attempts consumed.
    ///
    /// Successful samples land in the [`Hist::ProbeRttMs`] histogram and —
    /// in `jsonl` mode — as a flow-scoped `rtt` event. RTTs are walked
    /// packet-by-packet, independent of the transport backend, so they are
    /// safe observables for the byte-stable telemetry plane.
    pub fn rtt(&mut self, dst: NodeId) -> Option<RttSample> {
        self.rtt_checked(dst).ok().map(|p| RttSample {
            rtt_ms: p.rtt_ms,
            attempts: p.attempts,
        })
    }

    /// [`Probe::rtt`] with typed failure semantics and — when the fault
    /// plane is active — deterministic retry with exponential backoff.
    ///
    /// An unroutable or silent destination fails immediately as
    /// [`MeasureError::Unreachable`]; a fully-lost exchange earns up to
    /// [`BACKOFF_ROUNDS`] extra rounds, each preceded by a backoff of
    /// `BACKOFF_BASE_MS · 2^round · (1 + jitter)` with the jitter drawn
    /// from the flow's own RNG stream, so retry behaviour is a pure
    /// function of the flow identity. Each retry re-phases against the
    /// fault calendar, giving it a real chance to escape the burst or
    /// outage window that ate the previous round. With faults off the
    /// retry machinery is inert and the draw sequence matches the plain
    /// 3-echo probe exactly.
    ///
    /// # Errors
    /// [`MeasureError::Unreachable`] for dead destinations,
    /// [`MeasureError::Timeout`] when every round was lost.
    pub fn rtt_checked(&mut self, dst: NodeId) -> Result<ProbeRtt, MeasureError> {
        let failovers_before = self.net.fault_failovers();
        let rounds = if self.net.faults_enabled() {
            BACKOFF_ROUNDS
        } else {
            0
        };
        let mut attempts = 0u32;
        let mut waited_ms = 0.0;
        for round in 0..=rounds {
            match self.net.rtt_probe_checked(self.ue, dst, &mut self.flow) {
                Ok(s) => {
                    attempts += s.attempts;
                    self.net.telemetry_mut().observe(Hist::ProbeRttMs, s.rtt_ms);
                    if let Some(label) = &self.ev_label {
                        let ev = Event {
                            at_ns: 0,
                            scope: EventScope::Flow(self.flow.id().0),
                            kind: "rtt",
                            label: label.clone(),
                            value: Some(s.rtt_ms),
                            attempts: Some(attempts),
                        };
                        self.net.telemetry_mut().push_event(ev);
                    }
                    return Ok(ProbeRtt {
                        rtt_ms: s.rtt_ms,
                        attempts,
                        failover: self.net.fault_failovers() > failovers_before,
                    });
                }
                Err(ProbeError::Lost) => {
                    attempts += 3;
                    if round == rounds {
                        break;
                    }
                    let jitter: f64 = self.flow.rng().gen_range(0.0..1.0);
                    let wait = BACKOFF_BASE_MS * f64::from(1u32 << round) * (1.0 + jitter);
                    if waited_ms + wait > PROBE_DEADLINE_MS {
                        break;
                    }
                    waited_ms += wait;
                    self.net.telemetry_mut().add(Counter::ProbeBackoffs, 1);
                }
                Err(ProbeError::NoRoute | ProbeError::Silent) => {
                    return Err(MeasureError::Unreachable);
                }
            }
        }
        Err(MeasureError::Timeout { attempts })
    }

    /// A single echo exchange with `dst`.
    pub fn ping(&mut self, dst: NodeId) -> Option<PingResult> {
        let r = self.net.ping_flow(self.ue, dst, &mut self.flow);
        if let Some(p) = &r {
            self.net.telemetry_mut().observe(Hist::ProbeRttMs, p.rtt_ms);
        }
        r
    }

    /// TTL-walk toward `dst`.
    pub fn traceroute(&mut self, dst: NodeId, opts: TracerouteOpts) -> Traceroute {
        let trace = self.net.traceroute_flow(self.ue, dst, opts, &mut self.flow);
        let t = self.net.telemetry_mut();
        t.add(Counter::TracerouteRuns, 1);
        t.observe(Hist::TraceHops, trace.hops.len() as f64);
        trace
    }

    /// Completion time of a bulk transfer under the selected transport, ms.
    ///
    /// The byte count enters [`Counter::TransferBytes`]; the *duration*
    /// deliberately does not reach the telemetry plane — the two transports
    /// agree only to sub-microsecond rounding, and durations would break
    /// the byte-identical-across-`ROAM_TRANSPORT` guarantee.
    #[must_use]
    pub fn transfer_ms(&mut self, spec: &TransferSpec) -> f64 {
        self.net
            .telemetry_mut()
            .add(Counter::TransferBytes, spec.bytes as u64);
        self.transport.transfer_ms(spec)
    }

    /// Goodput of a bulk transfer under the selected transport, Mbps.
    /// Same telemetry rule as [`Probe::transfer_ms`]: bytes are counted,
    /// the transport-dependent rate is not recorded.
    #[must_use]
    pub fn goodput_mbps(&mut self, spec: &TransferSpec) -> f64 {
        self.net
            .telemetry_mut()
            .add(Counter::TransferBytes, spec.bytes as u64);
        self.transport.goodput_mbps(spec)
    }

    /// The flow's private RNG, for application-level draws (server think
    /// time, cache luck, channel quality).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.flow.rng()
    }

    /// Split borrow: the network and the flow at once, for clients that
    /// need both (e.g. resolver selection reads topology while drawing
    /// from the flow's stream).
    pub fn parts(&mut self) -> (&mut Network, &mut Flow) {
        (&mut *self.net, &mut self.flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_ipx::{DnsMode, PgwProviderId, RoamingArch};
    use roam_netsim::NodeId;

    fn endpoint(rat: Rat, down: f64) -> Endpoint {
        Endpoint {
            att: Attachment {
                ue: NodeId(0),
                ran: NodeId(1),
                sgw: NodeId(2),
                cgnat: NodeId(3),
                public_ip: "198.51.100.7".parse().unwrap(),
                arch: RoamingArch::IpxHubBreakout,
                provider: PgwProviderId(0),
                breakout_city: roam_geo::City::Amsterdam,
                tunnel_km: 600.0,
                dns: DnsMode::GooglePublic { doh: true },
                teid: 7,
                v_mno: roam_cellular::MnoId(0),
                b_mno: roam_cellular::MnoId(1),
                rat,
                private_hops: 8,
                flow_stamp: 0x00A1_1A10,
            },
            sim_type: SimType::Esim,
            country: Country::DEU,
            label: "DEU eSIM".into(),
            policy_down_mbps: down,
            policy_up_mbps: 10.0,
            youtube_cap_mbps: None,
            loss: 0.001,
            channel: ChannelSampler::default(),
        }
    }

    #[test]
    fn policy_binds_when_channel_is_good() {
        let e = endpoint(Rat::Nr5g, 20.0);
        // CQI 15 on NR carries ~250 Mbps; policy 20 binds.
        assert_eq!(e.effective_down_mbps(Cqi::new(15)), 20.0);
    }

    #[test]
    fn channel_binds_when_weak() {
        let e = endpoint(Rat::Lte, 100.0);
        // CQI 7 on LTE ≈ 22 Mbps < policy 100.
        let eff = e.effective_down_mbps(Cqi::new(7));
        assert!(eff < 30.0, "PHY-limited: {eff}");
    }

    #[test]
    fn uplink_is_half_phy() {
        let e = endpoint(Rat::Lte, 100.0);
        let up = e.effective_up_mbps(Cqi::new(7));
        let down = e.effective_down_mbps(Cqi::new(7));
        assert!(up <= down / 2.0 + 1e-9);
    }
}
