//! Dataset export: one row walk, many sinks.
//!
//! The paper's artifacts are per-measurement datasets ("our approach
//! compiles a dataset for each traceroute, detailing path length, PGW
//! provider, private and public hop counts…", §4.3). Each [`Dataset`]
//! has a typed schema ([`Dataset::schema`]); record containers flatten
//! themselves **once** into [`CellValue`] rows, and a [`DataSink`]
//! decides what those rows become:
//!
//! * `String` — the CSV thin view: rows append in the historical CSV
//!   dialect (quote-on-demand free text, fixed float precision, empty
//!   fields for null/non-finite), byte-identical to the pre-sink
//!   exporter;
//! * [`MemorySink`] — buffered CSV tables with headers, the backing of
//!   [`Exporter::export_all`];
//! * [`ColumnarSink`] — `roam-columnar` tables: typed column pages
//!   with null bitmaps, sealable into integrity-hashed frames and
//!   queryable without re-parsing.
//!
//! The API surface is the [`Exporter`] trait over the [`Dataset`]
//! enum: `data.export(Dataset::Speedtests)` names a table,
//! `datasets()` lists what a container can emit, and every table is
//! discoverable through [`Dataset::ALL`].

use crate::campaign::{CampaignData, RecordTag};
use crate::error::MeasureStatus;
use crate::voip::VoipResult;
use roam_columnar::csv::push_value;
use roam_columnar::{field, ColKind, Schema, Table, TableBuilder};
use std::sync::OnceLock;

pub use roam_columnar::CellValue;

/// Status labels in wire-code order ([`status_code`] indexes into it).
pub const STATUS_LABELS: [&str; 4] = ["ok", "failover", "timeout", "unreachable"];

/// Boolean column labels (`code = b as u8`).
pub const BOOL_LABELS: [&str; 2] = ["false", "true"];

/// Enum code of a measurement status, in [`STATUS_LABELS`] order.
#[must_use]
pub fn status_code(s: MeasureStatus) -> u8 {
    match s {
        MeasureStatus::Ok => 0,
        MeasureStatus::Failover => 1,
        MeasureStatus::Timeout => 2,
        MeasureStatus::Unreachable => 3,
    }
}

fn sim_code(s: roam_cellular::SimType) -> u8 {
    match s {
        roam_cellular::SimType::Physical => 0,
        roam_cellular::SimType::Esim => 1,
    }
}

fn arch_code(a: roam_ipx::RoamingArch) -> u8 {
    match a {
        roam_ipx::RoamingArch::Native => 0,
        roam_ipx::RoamingArch::HomeRouted => 1,
        roam_ipx::RoamingArch::LocalBreakout => 2,
        roam_ipx::RoamingArch::IpxHubBreakout => 3,
    }
}

fn rat_code(r: roam_cellular::Rat) -> u8 {
    match r {
        roam_cellular::Rat::Lte => 0,
        roam_cellular::Rat::Nr5g => 1,
    }
}

/// The shared `country,sim,arch,rat` cell prefix.
#[must_use]
pub fn tag_cells(tag: &RecordTag) -> [CellValue<'static>; 4] {
    [
        CellValue::Str(Some(tag.country.alpha3())),
        CellValue::Code(sim_code(tag.sim_type)),
        CellValue::Code(arch_code(tag.arch)),
        CellValue::Code(rat_code(tag.rat)),
    ]
}

/// One of the flat tables a campaign can emit — the paper's
/// per-measurement datasets, one variant per table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Ookla speedtests.
    Speedtests,
    /// Traceroutes with the §4.3 path decomposition.
    Traces,
    /// CDN object fetches.
    Cdn,
    /// DNS lookups.
    Dns,
    /// Video playback sessions.
    Videos,
    /// Scored VoIP probe bursts.
    Voip,
    /// Fleet-plane user sessions (emitted by `roam-fleet`'s sink hook).
    Sessions,
}

impl Dataset {
    /// Every dataset, in the stable order exports are enumerated in.
    pub const ALL: [Dataset; 7] = [
        Dataset::Speedtests,
        Dataset::Traces,
        Dataset::Cdn,
        Dataset::Dns,
        Dataset::Videos,
        Dataset::Voip,
        Dataset::Sessions,
    ];

    /// File-name stem for artifact directories (`speedtests.csv`, …).
    #[must_use]
    pub fn file_stem(self) -> &'static str {
        match self {
            Dataset::Speedtests => "speedtests",
            Dataset::Traces => "traces",
            Dataset::Cdn => "cdn",
            Dataset::Dns => "dns",
            Dataset::Videos => "videos",
            Dataset::Voip => "voip",
            Dataset::Sessions => "sessions",
        }
    }

    /// The table's CSV header row (no trailing newline). Column names
    /// equal the schema's field names in order (pinned by a test).
    #[must_use]
    pub fn header(self) -> &'static str {
        match self {
            Dataset::Speedtests => {
                "country,sim,arch,rat,down_mbps,up_mbps,latency_ms,attempts,cqi,status"
            }
            Dataset::Traces => {
                "country,sim,arch,rat,service,private_len,public_len,pgw_ip,pgw_asn,pgw_city,\
                 pgw_rtt_ms,final_rtt_ms,private_share,unique_asns,reached,status"
            }
            Dataset::Cdn => "country,sim,arch,rat,provider,total_ms,dns_ms,cache,status",
            Dataset::Dns => "country,sim,arch,rat,lookup_ms,attempts,resolver_city,doh,status",
            Dataset::Videos => "country,sim,arch,rat,resolution,rebuffered,status",
            Dataset::Voip => "country,sim,arch,rat,rtt_ms,jitter_ms,loss,r_factor,mos,status",
            Dataset::Sessions => "country,sim,arch,rat,kind,rtt_ms,lookup_ms,mb,status",
        }
    }

    /// The header row with its trailing newline, as an owned buffer ready
    /// to have rows appended — the start of every streamed export.
    #[must_use]
    pub fn header_csv(self) -> String {
        let mut out = String::with_capacity(self.header().len() + 1);
        out.push_str(self.header());
        out.push('\n');
        out
    }

    /// The dataset's typed column layout. Built once per process; field
    /// names match [`Dataset::header`] column for column.
    #[must_use]
    pub fn schema(self) -> &'static Schema {
        static SCHEMAS: OnceLock<[Schema; 7]> = OnceLock::new();
        let all = SCHEMAS.get_or_init(|| Dataset::ALL.map(build_schema));
        &all[self.index()]
    }

    fn index(self) -> usize {
        Dataset::ALL
            .iter()
            .position(|&d| d == self)
            .expect("dataset in ALL")
    }
}

fn build_schema(ds: Dataset) -> Schema {
    let status = || ColKind::enumeration(&STATUS_LABELS);
    let boolean = || ColKind::enumeration(&BOOL_LABELS);
    let f3 = ColKind::F64 { prec: 3 };
    let tag = |rest: Vec<roam_columnar::Field>| {
        let mut fields = vec![
            field("country", ColKind::Dict),
            field("sim", ColKind::enumeration(&["sim", "esim"])),
            field(
                "arch",
                ColKind::enumeration(&["Native", "HR", "LBO", "IHBO"]),
            ),
            field("rat", ColKind::enumeration(&["4G", "5G"])),
        ];
        fields.extend(rest);
        Schema::new(fields)
    };
    match ds {
        Dataset::Speedtests => tag(vec![
            field("down_mbps", f3.clone()),
            field("up_mbps", f3.clone()),
            field("latency_ms", f3.clone()),
            field("attempts", ColKind::U32),
            field("cqi", ColKind::U32),
            field("status", status()),
        ]),
        Dataset::Traces => tag(vec![
            field("service", ColKind::Dict),
            field("private_len", ColKind::U32),
            field("public_len", ColKind::U32),
            field("pgw_ip", ColKind::Ipv4),
            field("pgw_asn", ColKind::U32),
            field("pgw_city", ColKind::Dict),
            field("pgw_rtt_ms", f3.clone()),
            field("final_rtt_ms", f3.clone()),
            field("private_share", ColKind::F64 { prec: 4 }),
            field("unique_asns", ColKind::U32),
            field("reached", boolean()),
            field("status", status()),
        ]),
        Dataset::Cdn => tag(vec![
            field("provider", ColKind::Dict),
            field("total_ms", f3.clone()),
            field("dns_ms", f3.clone()),
            field("cache", ColKind::Dict),
            field("status", status()),
        ]),
        Dataset::Dns => tag(vec![
            field("lookup_ms", f3.clone()),
            field("attempts", ColKind::U32),
            field("resolver_city", ColKind::Dict),
            field("doh", boolean()),
            field("status", status()),
        ]),
        Dataset::Videos => tag(vec![
            field("resolution", ColKind::Dict),
            field("rebuffered", boolean()),
            field("status", status()),
        ]),
        Dataset::Voip => tag(vec![
            field("rtt_ms", f3.clone()),
            field("jitter_ms", f3.clone()),
            field("loss", ColKind::F64 { prec: 4 }),
            field("r_factor", ColKind::F64 { prec: 2 }),
            field("mos", ColKind::F64 { prec: 2 }),
            field("status", status()),
        ]),
        Dataset::Sessions => tag(vec![
            field("kind", ColKind::enumeration(&["rtt", "dns", "transfer"])),
            field("rtt_ms", f3.clone()),
            field("lookup_ms", f3.clone()),
            field("mb", f3),
            field("status", status()),
        ]),
    }
}

/// A sink shared between a runner and its caller: the runner streams
/// rows in while the caller keeps a handle to drain afterwards. The
/// `Mutex` serialises whole rows, so interleaving between datasets is
/// impossible; runners lock once per export walk, not per row.
pub type SharedSink = std::sync::Arc<std::sync::Mutex<dyn DataSink + Send>>;

/// Where exported rows land. One trait method, three stock
/// implementations:
///
/// * `String` — CSV rows append directly (no header), the thin view
///   every streamed CSV path writes through;
/// * [`MemorySink`] — per-dataset CSV tables with headers;
/// * [`ColumnarSink`] — per-dataset `roam-columnar` tables.
///
/// A sink receives rows in record order and must not reorder them:
/// every sink over the same walk sees the same deterministic stream.
pub trait DataSink {
    /// Accept one row of `ds`, cells in [`Dataset::schema`] order.
    fn row(&mut self, ds: Dataset, cells: &[CellValue<'_>]);
}

/// The CSV thin view: each row renders under the dataset schema's
/// kinds (dict quoting, float precision, empty null fields) straight
/// onto the buffer — byte-identical to the historical CSV emitters.
impl DataSink for String {
    fn row(&mut self, ds: Dataset, cells: &[CellValue<'_>]) {
        let fields = ds.schema().fields();
        debug_assert_eq!(fields.len(), cells.len(), "{ds:?} row arity");
        for (i, (f, cell)) in fields.iter().zip(cells).enumerate() {
            if i > 0 {
                self.push(',');
            }
            push_value(self, &f.kind, cell);
        }
        self.push('\n');
    }
}

/// Buffered CSV tables, one `header + rows` `String` per dataset.
/// Pre-registering datasets (see [`MemorySink::with_datasets`]) pins
/// the output order and yields header-only tables for empty datasets,
/// keeping artifact layouts uniform.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    tables: Vec<(Dataset, String)>,
}

impl MemorySink {
    /// An empty sink; tables appear as rows arrive, in first-row order.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink with `datasets` pre-registered as header-only tables.
    #[must_use]
    pub fn with_datasets(datasets: &[Dataset]) -> Self {
        MemorySink {
            tables: datasets.iter().map(|&ds| (ds, ds.header_csv())).collect(),
        }
    }

    /// The rendered table for `ds`, if any rows (or a registration)
    /// arrived.
    #[must_use]
    pub fn table(&self, ds: Dataset) -> Option<&str> {
        self.tables
            .iter()
            .find(|(d, _)| *d == ds)
            .map(|(_, t)| t.as_str())
    }

    /// All tables in registration/arrival order.
    #[must_use]
    pub fn into_tables(self) -> Vec<(Dataset, String)> {
        self.tables
    }
}

impl DataSink for MemorySink {
    fn row(&mut self, ds: Dataset, cells: &[CellValue<'_>]) {
        let table = match self.tables.iter().position(|(d, _)| *d == ds) {
            Some(i) => &mut self.tables[i].1,
            None => {
                self.tables.push((ds, ds.header_csv()));
                &mut self.tables.last_mut().expect("just pushed").1
            }
        };
        table.row(ds, cells);
    }
}

/// Columnar tables, one `roam-columnar` [`TableBuilder`] per dataset,
/// built straight from the row walk — no intermediate CSV.
#[derive(Debug, Clone, Default)]
pub struct ColumnarSink {
    builders: Vec<(Dataset, TableBuilder)>,
}

impl ColumnarSink {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish every builder, yielding immutable queryable tables in
    /// first-row order.
    #[must_use]
    pub fn into_tables(self) -> Vec<(Dataset, Table)> {
        self.builders
            .into_iter()
            .map(|(ds, b)| (ds, b.finish()))
            .collect()
    }

    /// Finish and return the single table for `ds`, if any rows arrived.
    #[must_use]
    pub fn into_table(self, ds: Dataset) -> Option<Table> {
        self.builders
            .into_iter()
            .find(|(d, _)| *d == ds)
            .map(|(_, b)| b.finish())
    }
}

impl DataSink for ColumnarSink {
    fn row(&mut self, ds: Dataset, cells: &[CellValue<'_>]) {
        let builder = match self.builders.iter().position(|(d, _)| *d == ds) {
            Some(i) => &mut self.builders[i].1,
            None => {
                self.builders
                    .push((ds, TableBuilder::new(ds.schema().clone())));
                &mut self.builders.last_mut().expect("just pushed").1
            }
        };
        builder.push_row(cells);
    }
}

/// Anything that can flatten (some of) its records into the canonical
/// datasets. The one export entry point: `data.export(Dataset::Speedtests)`.
///
/// The required method is the *streaming* half, [`Exporter::export_rows`]:
/// it walks records once and hands each row to the sink, so
/// population-scale callers (the fleet runner, chunked writers) can emit a
/// table incrementally — header once via [`Dataset::header_csv`], then rows
/// batch by batch — without ever materialising the whole table. A plain
/// `&mut String` is a CSV sink, so pre-redesign call sites stream
/// unchanged; `tests/prop_export_stream.rs` pins that buffered and
/// streamed spellings render identical bytes.
pub trait Exporter {
    /// The datasets this container actually holds records for.
    fn datasets(&self) -> &'static [Dataset];

    /// Walk this container's rows for `ds` (no header) into `sink`. A
    /// dataset outside [`Exporter::datasets`] emits nothing.
    fn export_rows(&self, ds: Dataset, sink: &mut dyn DataSink);

    /// The full CSV table for `ds`: header plus one row per record. A
    /// dataset outside [`Exporter::datasets`] yields the header alone, so
    /// artifact layouts stay uniform across container types.
    fn export(&self, ds: Dataset) -> String {
        let mut out = ds.header_csv();
        self.export_rows(ds, &mut out);
        out
    }

    /// Every held dataset with its rendered CSV table, in
    /// [`Exporter::datasets`] order — one row walk per dataset through
    /// the in-memory sink, the same code path streamed callers use.
    fn export_all(&self) -> Vec<(Dataset, String)> {
        let mut sink = MemorySink::with_datasets(self.datasets());
        for &ds in self.datasets() {
            self.export_rows(ds, &mut sink);
        }
        sink.into_tables()
    }

    /// Every held dataset as a columnar [`Table`], in
    /// [`Exporter::datasets`] order.
    fn export_tables(&self) -> Vec<(Dataset, Table)> {
        let mut sink = ColumnarSink::new();
        for &ds in self.datasets() {
            // Register even empty datasets so layouts stay uniform.
            sink.builders
                .push((ds, TableBuilder::new(ds.schema().clone())));
            self.export_rows(ds, &mut sink);
        }
        sink.into_tables()
    }
}

impl Exporter for CampaignData {
    fn datasets(&self) -> &'static [Dataset] {
        &[
            Dataset::Speedtests,
            Dataset::Traces,
            Dataset::Cdn,
            Dataset::Dns,
            Dataset::Videos,
        ]
    }

    fn export_rows(&self, ds: Dataset, sink: &mut dyn DataSink) {
        match ds {
            Dataset::Speedtests => speedtest_rows(self, sink),
            Dataset::Traces => trace_rows(self, sink),
            Dataset::Cdn => cdn_rows(self, sink),
            Dataset::Dns => dns_rows(self, sink),
            Dataset::Videos => video_rows(self, sink),
            // VoIP bursts live outside CampaignData (see [`VoipRecord`]);
            // session rows outside the campaign plane entirely.
            Dataset::Voip | Dataset::Sessions => {}
        }
    }
}

impl Exporter for [VoipRecord] {
    fn datasets(&self) -> &'static [Dataset] {
        &[Dataset::Voip]
    }

    fn export_rows(&self, ds: Dataset, sink: &mut dyn DataSink) {
        if ds == Dataset::Voip {
            voip_rows(self, sink);
        }
    }
}

fn speedtest_rows(data: &CampaignData, sink: &mut dyn DataSink) {
    for r in &data.speedtests {
        let [c, s, a, t] = tag_cells(&r.tag);
        sink.row(
            Dataset::Speedtests,
            &[
                c,
                s,
                a,
                t,
                CellValue::F64(Some(r.down_mbps)),
                CellValue::F64(Some(r.up_mbps)),
                CellValue::F64(Some(r.latency_ms)),
                CellValue::U32(Some(r.attempts)),
                CellValue::U32(r.cqi.map(|c| u32::from(c.value()))),
                CellValue::Code(status_code(r.status)),
            ],
        );
    }
}

fn trace_rows(data: &CampaignData, sink: &mut dyn DataSink) {
    for r in &data.traces {
        let [c, s, a, t] = tag_cells(&r.tag);
        let an = &r.analysis;
        sink.row(
            Dataset::Traces,
            &[
                c,
                s,
                a,
                t,
                CellValue::Str(Some(r.service.name())),
                CellValue::U32(Some(an.private_len as u32)),
                CellValue::U32(Some(an.public_len as u32)),
                CellValue::U32(an.pgw_ip.map(u32::from)),
                CellValue::U32(an.pgw_asn.map(|x| x.0)),
                CellValue::Str(an.pgw_city.map(|c| c.name())),
                CellValue::F64(an.pgw_rtt_ms),
                CellValue::F64(an.final_rtt_ms),
                CellValue::F64(an.private_share),
                CellValue::U32(Some(an.unique_public_asns as u32)),
                CellValue::Code(u8::from(an.reached)),
                CellValue::Code(status_code(r.status)),
            ],
        );
    }
}

fn cdn_rows(data: &CampaignData, sink: &mut dyn DataSink) {
    for r in &data.cdns {
        let [c, s, a, t] = tag_cells(&r.tag);
        let cache = if r.status.is_ok() {
            Some(if r.cache_hit { "HIT" } else { "MISS" })
        } else {
            None
        };
        sink.row(
            Dataset::Cdn,
            &[
                c,
                s,
                a,
                t,
                CellValue::Str(Some(r.provider.name())),
                CellValue::F64(Some(r.total_ms)),
                CellValue::F64(Some(r.dns_ms)),
                CellValue::Str(cache),
                CellValue::Code(status_code(r.status)),
            ],
        );
    }
}

fn dns_rows(data: &CampaignData, sink: &mut dyn DataSink) {
    for r in &data.dns {
        let [c, s, a, t] = tag_cells(&r.tag);
        sink.row(
            Dataset::Dns,
            &[
                c,
                s,
                a,
                t,
                CellValue::F64(Some(r.lookup_ms)),
                CellValue::U32(Some(r.attempts)),
                CellValue::Str(r.resolver_city.map(|c| c.name())),
                CellValue::Code(u8::from(r.doh)),
                CellValue::Code(status_code(r.status)),
            ],
        );
    }
}

fn video_rows(data: &CampaignData, sink: &mut dyn DataSink) {
    for r in &data.videos {
        let [c, s, a, t] = tag_cells(&r.tag);
        sink.row(
            Dataset::Videos,
            &[
                c,
                s,
                a,
                t,
                CellValue::Str(r.resolution.map(|res| res.label())),
                CellValue::Code(u8::from(r.rebuffered)),
                CellValue::Code(status_code(r.status)),
            ],
        );
    }
}

/// One scored VoIP probe burst with its context tag.
#[derive(Debug, Clone, Copy)]
pub struct VoipRecord {
    /// Context.
    pub tag: RecordTag,
    /// The burst's transport metrics and E-model score.
    pub result: VoipResult,
    /// How the burst ended.
    pub status: MeasureStatus,
}

/// Dead-path bursts report `rtt_ms = jitter_ms = ∞`; non-finite cells
/// render as empty CSV fields / columnar nulls, so the table stays
/// parseable.
fn voip_rows(records: &[VoipRecord], sink: &mut dyn DataSink) {
    for r in records {
        let [c, s, a, t] = tag_cells(&r.tag);
        let v = &r.result;
        sink.row(
            Dataset::Voip,
            &[
                c,
                s,
                a,
                t,
                CellValue::F64(Some(v.rtt_ms)),
                CellValue::F64(Some(v.jitter_ms)),
                CellValue::F64(Some(v.loss)),
                CellValue::F64(Some(v.r_factor)),
                CellValue::F64(Some(v.mos)),
                CellValue::Code(status_code(r.status)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CdnRecord, SpeedtestRecord, TraceRecord, VideoRecord};
    use crate::cdn::CdnProvider;
    use crate::targets::Service;
    use crate::video::Resolution;
    use roam_cellular::{Cqi, Rat, SimType};
    use roam_columnar::{render_csv, ColumnarSource, Query};
    use roam_core::PathAnalysis;
    use roam_geo::{City, Country};
    use roam_ipx::RoamingArch;

    fn tag() -> RecordTag {
        RecordTag {
            country: Country::PAK,
            sim_type: SimType::Esim,
            arch: RoamingArch::HomeRouted,
            rat: Rat::Lte,
        }
    }

    fn data() -> CampaignData {
        let mut d = CampaignData::default();
        d.speedtests.push(SpeedtestRecord {
            tag: tag(),
            down_mbps: 6.25,
            up_mbps: 1.5,
            latency_ms: 361.2,
            attempts: 2,
            cqi: Some(Cqi::new(11)),
            status: MeasureStatus::Ok,
        });
        d.traces.push(TraceRecord {
            tag: tag(),
            service: Service::Google,
            analysis: PathAnalysis {
                private_len: 8,
                public_len: 3,
                pgw_ip: Some("202.166.126.3".parse().unwrap()),
                pgw_asn: Some(roam_netsim::Asn(45143)),
                pgw_city: Some(City::Singapore),
                pgw_rtt_ms: Some(355.1),
                final_rtt_ms: Some(361.0),
                private_share: Some(0.9835),
                unique_public_asns: 2,
                reached: true,
            },
            status: MeasureStatus::Ok,
        });
        d.cdns.push(CdnRecord {
            tag: tag(),
            provider: CdnProvider::Cloudflare,
            total_ms: 3111.0,
            dns_ms: 390.0,
            cache_hit: true,
            status: MeasureStatus::Ok,
        });
        d.dns.push(crate::campaign::DnsRecord {
            tag: tag(),
            lookup_ms: 391.5,
            attempts: 1,
            resolver_city: Some(City::Singapore),
            doh: false,
            status: MeasureStatus::Ok,
        });
        d.videos.push(VideoRecord {
            tag: tag(),
            resolution: Some(Resolution::P720),
            rebuffered: false,
            status: MeasureStatus::Ok,
        });
        d
    }

    #[test]
    fn every_export_has_header_plus_rows() {
        let d = data();
        for (ds, csv) in d.export_all() {
            assert_eq!(csv.lines().count(), 2, "{ds:?}: {csv}");
            assert_eq!(csv.lines().next().unwrap(), ds.header());
            let header_cols = ds.header().split(',').count();
            for line in csv.lines().skip(1) {
                assert_eq!(line.split(',').count(), header_cols, "ragged row: {line}");
            }
        }
    }

    #[test]
    fn campaign_data_holds_five_of_the_seven_datasets() {
        let d = data();
        assert_eq!(d.datasets().len(), 5);
        assert!(!d.datasets().contains(&Dataset::Voip));
        assert!(!d.datasets().contains(&Dataset::Sessions));
        // Asking anyway yields the uniform header-only table.
        assert_eq!(
            d.export(Dataset::Voip),
            format!("{}\n", Dataset::Voip.header())
        );
        assert_eq!(Dataset::ALL.len(), 7);
        assert_eq!(Dataset::Voip.file_stem(), "voip");
        assert_eq!(Dataset::Sessions.file_stem(), "sessions");
    }

    #[test]
    fn schema_names_match_headers_for_every_dataset() {
        for ds in Dataset::ALL {
            let names: Vec<&str> = ds
                .schema()
                .fields()
                .iter()
                .map(|f| f.name.as_str())
                .collect();
            let header: Vec<&str> = ds.header().split(',').collect();
            assert_eq!(names, header, "{ds:?}");
        }
    }

    #[test]
    fn string_sink_memory_sink_and_buffered_export_agree() {
        let d = data();
        let mut sink = MemorySink::with_datasets(d.datasets());
        for &ds in d.datasets() {
            d.export_rows(ds, &mut sink);
        }
        for &ds in d.datasets() {
            assert_eq!(sink.table(ds), Some(d.export(ds).as_str()), "{ds:?}");
        }
    }

    #[test]
    fn columnar_sink_renders_the_same_bytes_as_csv() {
        let d = data();
        for (ds, table) in d.export_tables() {
            let mut csv = ds.header_csv();
            render_csv(&table, &mut csv);
            assert_eq!(csv, d.export(ds), "{ds:?}");
        }
    }

    #[test]
    fn columnar_tables_are_queryable() {
        let d = data();
        let table = d
            .export_tables()
            .into_iter()
            .find(|(ds, _)| *ds == Dataset::Speedtests)
            .map(|(_, t)| t)
            .unwrap();
        assert_eq!(table.rows(), 1);
        assert_eq!(
            Query::new(&table).eq("country", "PAK").values("down_mbps"),
            vec![6.25]
        );
        assert_eq!(table.schema(), Dataset::Speedtests.schema());
    }

    #[test]
    fn trace_row_carries_the_papers_columns() {
        let csv = data().export(Dataset::Traces);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("PAK,esim,HR,4G,"));
        assert!(row.contains("202.166.126.3"));
        assert!(row.contains("45143"));
        assert!(row.contains("Singapore"));
        assert!(row.contains("0.9835"));
    }

    #[test]
    fn non_finite_floats_export_as_empty_fields() {
        // Regression: a dead-path VoIP burst reports rtt = jitter = ∞; the
        // CSV must emit empty fields, not "inf".
        let rec = VoipRecord {
            tag: tag(),
            result: crate::voip::VoipResult {
                rtt_ms: f64::INFINITY,
                jitter_ms: f64::INFINITY,
                loss: 1.0,
                r_factor: 0.0,
                mos: 1.0,
            },
            status: MeasureStatus::Timeout,
        };
        let csv = [rec].export(Dataset::Voip);
        assert!(!csv.contains("inf"), "non-finite leaked: {csv}");
        let row = csv.lines().nth(1).unwrap();
        assert_eq!(row, "PAK,esim,HR,4G,,,1.0000,0.00,1.00,timeout");
        let header_cols = csv.lines().next().unwrap().split(',').count();
        assert_eq!(row.split(',').count(), header_cols);
        // The columnar sink nulls the same fields.
        let table = [rec].export_tables().into_iter().next().unwrap().1;
        let rtt_col = table.schema().col("rtt_ms").unwrap();
        assert_eq!(table.page(0, rtt_col).f64_at(0), None);
        let loss_col = table.schema().col("loss").unwrap();
        assert_eq!(table.page(0, loss_col).f64_at(0), Some(1.0));
    }

    #[test]
    fn voip_rows_with_finite_metrics_are_fully_populated() {
        let (r_factor, mos) = crate::voip::e_model(80.0, 3.0, 0.01);
        let rec = VoipRecord {
            tag: tag(),
            result: crate::voip::VoipResult {
                rtt_ms: 80.0,
                jitter_ms: 3.0,
                loss: 0.01,
                r_factor,
                mos,
            },
            status: MeasureStatus::Ok,
        };
        let csv = [rec].export(Dataset::Voip);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.contains("80.000") && row.contains("3.000"));
        assert!(!row.contains(",,"), "no empty fields expected: {row}");
    }

    #[test]
    fn empty_campaign_yields_headers_only() {
        let d = CampaignData::default();
        for ds in Dataset::ALL {
            assert_eq!(d.export(ds).lines().count(), 1, "{ds:?}");
        }
    }

    #[test]
    fn status_codes_match_labels() {
        for (code, label) in STATUS_LABELS.iter().enumerate() {
            let status = [
                MeasureStatus::Ok,
                MeasureStatus::Failover,
                MeasureStatus::Timeout,
                MeasureStatus::Unreachable,
            ][code];
            assert_eq!(status_code(status) as usize, code);
            assert_eq!(status.as_str(), *label);
        }
    }
}
