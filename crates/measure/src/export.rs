//! Dataset export: flatten campaign records to CSV.
//!
//! The paper's artifacts are per-measurement datasets ("our approach
//! compiles a dataset for each traceroute, detailing path length, PGW
//! provider, private and public hop counts…", §4.3). These emitters write
//! the same flat tables so downstream analysis can run in any toolchain.
//! No third-party CSV crate: the fields are all numeric/enum-like, and the
//! single free-text column (city names) is quoted defensively.
//!
//! The API surface is the [`Exporter`] trait over the [`Dataset`] enum:
//! `data.export(Dataset::Speedtests)` names the table, `datasets()` lists
//! what a container can emit, and every table is discoverable through
//! [`Dataset::ALL`]. The six pre-trait free functions (`speedtests_csv`
//! and friends) remain as deprecated wrappers.

use crate::campaign::{CampaignData, RecordTag};
use crate::voip::VoipResult;
use std::fmt::{self, Display, Write as _};

/// A CSV field, quoted on the fly only when it needs to be — no per-row
/// `String`: the emitters run once per measurement record, and the old
/// `quote()`/`tag_cols()` helpers allocated several strings per row.
struct Csv<'a>(&'a str);

impl Display for Csv<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.contains(',') || self.0.contains('"') {
            f.write_char('"')?;
            for ch in self.0.chars() {
                if ch == '"' {
                    f.write_str("\"\"")?;
                } else {
                    f.write_char(ch)?;
                }
            }
            f.write_char('"')
        } else {
            f.write_str(self.0)
        }
    }
}

/// An optional field: the value (with the caller's format spec, e.g.
/// `{:.3}`) or the empty string.
struct Opt<T>(Option<T>);

impl<T: Display> Display for Opt<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(v) => v.fmt(f),
            None => Ok(()),
        }
    }
}

/// A float field that must stay machine-readable: finite values forward
/// the caller's format spec; `inf`/`NaN` (e.g. a dead-path VoIP probe's
/// RTT) become the empty field instead of a literal `inf` that chokes
/// downstream parsers.
struct Fin(f64);

impl Display for Fin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_finite() {
            self.0.fmt(f)
        } else {
            Ok(())
        }
    }
}

/// The shared `country,sim,arch,rat` prefix, written straight into the
/// output buffer.
struct TagCols<'a>(&'a RecordTag);

impl Display for TagCols<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{},{},{},{}",
            self.0.country.alpha3(),
            match self.0.sim_type {
                roam_cellular::SimType::Physical => "sim",
                roam_cellular::SimType::Esim => "esim",
            },
            self.0.arch.label(),
            self.0.rat
        )
    }
}

/// One of the flat tables a campaign can emit — the paper's
/// per-measurement datasets, one variant per table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Ookla speedtests.
    Speedtests,
    /// Traceroutes with the §4.3 path decomposition.
    Traces,
    /// CDN object fetches.
    Cdn,
    /// DNS lookups.
    Dns,
    /// Video playback sessions.
    Videos,
    /// Scored VoIP probe bursts.
    Voip,
}

impl Dataset {
    /// Every dataset, in the stable order exports are enumerated in.
    pub const ALL: [Dataset; 6] = [
        Dataset::Speedtests,
        Dataset::Traces,
        Dataset::Cdn,
        Dataset::Dns,
        Dataset::Videos,
        Dataset::Voip,
    ];

    /// File-name stem for artifact directories (`speedtests.csv`, …).
    #[must_use]
    pub fn file_stem(self) -> &'static str {
        match self {
            Dataset::Speedtests => "speedtests",
            Dataset::Traces => "traces",
            Dataset::Cdn => "cdn",
            Dataset::Dns => "dns",
            Dataset::Videos => "videos",
            Dataset::Voip => "voip",
        }
    }

    /// The table's CSV header row (no trailing newline).
    #[must_use]
    pub fn header(self) -> &'static str {
        match self {
            Dataset::Speedtests => {
                "country,sim,arch,rat,down_mbps,up_mbps,latency_ms,attempts,cqi,status"
            }
            Dataset::Traces => {
                "country,sim,arch,rat,service,private_len,public_len,pgw_ip,pgw_asn,pgw_city,\
                 pgw_rtt_ms,final_rtt_ms,private_share,unique_asns,reached,status"
            }
            Dataset::Cdn => "country,sim,arch,rat,provider,total_ms,dns_ms,cache,status",
            Dataset::Dns => "country,sim,arch,rat,lookup_ms,attempts,resolver_city,doh,status",
            Dataset::Videos => "country,sim,arch,rat,resolution,rebuffered,status",
            Dataset::Voip => "country,sim,arch,rat,rtt_ms,jitter_ms,loss,r_factor,mos,status",
        }
    }

    /// The header row with its trailing newline, as an owned buffer ready
    /// to have rows appended — the start of every streamed export.
    #[must_use]
    pub fn header_csv(self) -> String {
        let mut out = String::with_capacity(self.header().len() + 1);
        out.push_str(self.header());
        out.push('\n');
        out
    }
}

/// Anything that can flatten (some of) its records into the canonical CSV
/// tables. The one export entry point: `data.export(Dataset::Speedtests)`.
///
/// The required method is the *streaming* half, [`Exporter::export_rows`]:
/// it appends rows into a caller-owned buffer, so population-scale callers
/// (the fleet runner, chunked writers) can emit a table incrementally —
/// header once via [`Dataset::header_csv`], then rows batch by batch —
/// without ever materialising the whole table. [`Exporter::export`] is the
/// buffered convenience built on top; `tests/prop_export_stream.rs` pins
/// that the two spellings render identical bytes.
pub trait Exporter {
    /// The datasets this container actually holds records for.
    fn datasets(&self) -> &'static [Dataset];

    /// Append this container's rows for `ds` (no header) onto `out`. A
    /// dataset outside [`Exporter::datasets`] appends nothing.
    fn export_rows(&self, ds: Dataset, out: &mut String);

    /// The full CSV table for `ds`: header plus one row per record. A
    /// dataset outside [`Exporter::datasets`] yields the header alone, so
    /// artifact layouts stay uniform across container types.
    fn export(&self, ds: Dataset) -> String {
        let mut out = ds.header_csv();
        self.export_rows(ds, &mut out);
        out
    }

    /// Every held dataset with its rendered table, in [`Dataset::ALL`]
    /// order.
    fn export_all(&self) -> Vec<(Dataset, String)> {
        self.datasets()
            .iter()
            .map(|&ds| (ds, self.export(ds)))
            .collect()
    }
}

impl Exporter for CampaignData {
    fn datasets(&self) -> &'static [Dataset] {
        &[
            Dataset::Speedtests,
            Dataset::Traces,
            Dataset::Cdn,
            Dataset::Dns,
            Dataset::Videos,
        ]
    }

    fn export_rows(&self, ds: Dataset, out: &mut String) {
        match ds {
            Dataset::Speedtests => speedtest_rows(self, out),
            Dataset::Traces => trace_rows(self, out),
            Dataset::Cdn => cdn_rows(self, out),
            Dataset::Dns => dns_rows(self, out),
            Dataset::Videos => video_rows(self, out),
            // VoIP bursts live outside CampaignData (see [`VoipRecord`]).
            Dataset::Voip => {}
        }
    }
}

impl Exporter for [VoipRecord] {
    fn datasets(&self) -> &'static [Dataset] {
        &[Dataset::Voip]
    }

    fn export_rows(&self, ds: Dataset, out: &mut String) {
        if ds == Dataset::Voip {
            voip_rows(self, out);
        }
    }
}

fn speedtest_rows(data: &CampaignData, out: &mut String) {
    for r in &data.speedtests {
        let _ = writeln!(
            out,
            "{},{:.3},{:.3},{:.3},{},{},{}",
            TagCols(&r.tag),
            Fin(r.down_mbps),
            Fin(r.up_mbps),
            Fin(r.latency_ms),
            r.attempts,
            Opt(r.cqi.map(|c| c.value())),
            r.status
        );
    }
}

fn trace_rows(data: &CampaignData, out: &mut String) {
    for r in &data.traces {
        let a = &r.analysis;
        let _ = writeln!(
            out,
            "{},{:?},{},{},{},{},{},{:.3},{:.3},{:.4},{},{},{}",
            TagCols(&r.tag),
            r.service,
            a.private_len,
            a.public_len,
            Opt(a.pgw_ip),
            Opt(a.pgw_asn.map(|x| x.0)),
            Csv(a.pgw_city.map(|c| c.name()).unwrap_or("")),
            Opt(a.pgw_rtt_ms),
            Opt(a.final_rtt_ms),
            Opt(a.private_share),
            a.unique_public_asns,
            a.reached,
            r.status
        );
    }
}

fn cdn_rows(data: &CampaignData, out: &mut String) {
    for r in &data.cdns {
        let _ = writeln!(
            out,
            "{},{},{:.3},{:.3},{},{}",
            TagCols(&r.tag),
            Csv(r.provider.name()),
            Fin(r.total_ms),
            Fin(r.dns_ms),
            if r.status.is_ok() {
                if r.cache_hit {
                    "HIT"
                } else {
                    "MISS"
                }
            } else {
                ""
            },
            r.status
        );
    }
}

fn dns_rows(data: &CampaignData, out: &mut String) {
    for r in &data.dns {
        let _ = writeln!(
            out,
            "{},{:.3},{},{},{},{}",
            TagCols(&r.tag),
            Fin(r.lookup_ms),
            r.attempts,
            Csv(r.resolver_city.map(|c| c.name()).unwrap_or("")),
            r.doh,
            r.status
        );
    }
}

fn video_rows(data: &CampaignData, out: &mut String) {
    for r in &data.videos {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            TagCols(&r.tag),
            Opt(r.resolution),
            r.rebuffered,
            r.status
        );
    }
}

/// One scored VoIP probe burst with its context tag.
#[derive(Debug, Clone, Copy)]
pub struct VoipRecord {
    /// Context.
    pub tag: RecordTag,
    /// The burst's transport metrics and E-model score.
    pub result: VoipResult,
    /// How the burst ended.
    pub status: crate::error::MeasureStatus,
}

/// Dead-path bursts report `rtt_ms = jitter_ms = ∞`; those fields are
/// emitted empty so the table stays parseable.
fn voip_rows(records: &[VoipRecord], out: &mut String) {
    for r in records {
        let v = &r.result;
        let _ = writeln!(
            out,
            "{},{:.3},{:.3},{:.4},{:.2},{:.2},{}",
            TagCols(&r.tag),
            Fin(v.rtt_ms),
            Fin(v.jitter_ms),
            Fin(v.loss),
            Fin(v.r_factor),
            Fin(v.mos),
            r.status
        );
    }
}

/// Speedtests table.
#[deprecated(note = "use `data.export(Dataset::Speedtests)` via the `Exporter` trait")]
#[must_use]
pub fn speedtests_csv(data: &CampaignData) -> String {
    data.export(Dataset::Speedtests)
}

/// Traceroutes table.
#[deprecated(note = "use `data.export(Dataset::Traces)` via the `Exporter` trait")]
#[must_use]
pub fn traces_csv(data: &CampaignData) -> String {
    data.export(Dataset::Traces)
}

/// CDN fetches table.
#[deprecated(note = "use `data.export(Dataset::Cdn)` via the `Exporter` trait")]
#[must_use]
pub fn cdn_csv(data: &CampaignData) -> String {
    data.export(Dataset::Cdn)
}

/// DNS lookups table.
#[deprecated(note = "use `data.export(Dataset::Dns)` via the `Exporter` trait")]
#[must_use]
pub fn dns_csv(data: &CampaignData) -> String {
    data.export(Dataset::Dns)
}

/// Video sessions table.
#[deprecated(note = "use `data.export(Dataset::Videos)` via the `Exporter` trait")]
#[must_use]
pub fn videos_csv(data: &CampaignData) -> String {
    data.export(Dataset::Videos)
}

/// VoIP probes table.
#[deprecated(note = "use `records.export(Dataset::Voip)` via the `Exporter` trait")]
#[must_use]
pub fn voip_csv(records: &[VoipRecord]) -> String {
    records.export(Dataset::Voip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CdnRecord, SpeedtestRecord, TraceRecord, VideoRecord};
    use crate::cdn::CdnProvider;
    use crate::error::MeasureStatus;
    use crate::targets::Service;
    use crate::video::Resolution;
    use roam_cellular::{Cqi, Rat, SimType};
    use roam_core::PathAnalysis;
    use roam_geo::{City, Country};
    use roam_ipx::RoamingArch;

    fn tag() -> RecordTag {
        RecordTag {
            country: Country::PAK,
            sim_type: SimType::Esim,
            arch: RoamingArch::HomeRouted,
            rat: Rat::Lte,
        }
    }

    fn data() -> CampaignData {
        let mut d = CampaignData::default();
        d.speedtests.push(SpeedtestRecord {
            tag: tag(),
            down_mbps: 6.25,
            up_mbps: 1.5,
            latency_ms: 361.2,
            attempts: 2,
            cqi: Some(Cqi::new(11)),
            status: MeasureStatus::Ok,
        });
        d.traces.push(TraceRecord {
            tag: tag(),
            service: Service::Google,
            analysis: PathAnalysis {
                private_len: 8,
                public_len: 3,
                pgw_ip: Some("202.166.126.3".parse().unwrap()),
                pgw_asn: Some(roam_netsim::Asn(45143)),
                pgw_city: Some(City::Singapore),
                pgw_rtt_ms: Some(355.1),
                final_rtt_ms: Some(361.0),
                private_share: Some(0.9835),
                unique_public_asns: 2,
                reached: true,
            },
            status: MeasureStatus::Ok,
        });
        d.cdns.push(CdnRecord {
            tag: tag(),
            provider: CdnProvider::Cloudflare,
            total_ms: 3111.0,
            dns_ms: 390.0,
            cache_hit: true,
            status: MeasureStatus::Ok,
        });
        d.dns.push(crate::campaign::DnsRecord {
            tag: tag(),
            lookup_ms: 391.5,
            attempts: 1,
            resolver_city: Some(City::Singapore),
            doh: false,
            status: MeasureStatus::Ok,
        });
        d.videos.push(VideoRecord {
            tag: tag(),
            resolution: Some(Resolution::P720),
            rebuffered: false,
            status: MeasureStatus::Ok,
        });
        d
    }

    #[test]
    fn every_export_has_header_plus_rows() {
        let d = data();
        for (ds, csv) in d.export_all() {
            assert_eq!(csv.lines().count(), 2, "{ds:?}: {csv}");
            assert_eq!(csv.lines().next().unwrap(), ds.header());
            let header_cols = ds.header().split(',').count();
            for line in csv.lines().skip(1) {
                assert_eq!(line.split(',').count(), header_cols, "ragged row: {line}");
            }
        }
    }

    #[test]
    fn campaign_data_holds_five_of_the_six_datasets() {
        let d = data();
        assert_eq!(d.datasets().len(), 5);
        assert!(!d.datasets().contains(&Dataset::Voip));
        // Asking anyway yields the uniform header-only table.
        assert_eq!(
            d.export(Dataset::Voip),
            format!("{}\n", Dataset::Voip.header())
        );
        assert_eq!(Dataset::ALL.len(), 6);
        assert_eq!(Dataset::Voip.file_stem(), "voip");
    }

    #[test]
    fn deprecated_wrappers_match_the_trait() {
        let d = data();
        #[allow(deprecated)]
        let old = speedtests_csv(&d);
        assert_eq!(old, d.export(Dataset::Speedtests));
    }

    #[test]
    fn trace_row_carries_the_papers_columns() {
        let csv = data().export(Dataset::Traces);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("PAK,esim,HR,4G,"));
        assert!(row.contains("202.166.126.3"));
        assert!(row.contains("45143"));
        assert!(row.contains("Singapore"));
        assert!(row.contains("0.9835"));
    }

    #[test]
    fn quoting_handles_commas() {
        assert_eq!(Csv("plain").to_string(), "plain");
        assert_eq!(Csv("a,b").to_string(), "\"a,b\"");
        assert_eq!(Csv("say \"hi\"").to_string(), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn optional_fields_respect_precision_and_absence() {
        assert_eq!(format!("{:.3}", Opt(Some(355.1))), "355.100");
        assert_eq!(format!("{:.3}", Opt::<f64>(None)), "");
        assert_eq!(format!("{}", Opt(Some(42))), "42");
    }

    #[test]
    fn non_finite_floats_export_as_empty_fields() {
        // Regression: a dead-path VoIP burst reports rtt = jitter = ∞; the
        // CSV must emit empty fields, not "inf".
        let rec = VoipRecord {
            tag: tag(),
            result: crate::voip::VoipResult {
                rtt_ms: f64::INFINITY,
                jitter_ms: f64::INFINITY,
                loss: 1.0,
                r_factor: 0.0,
                mos: 1.0,
            },
            status: MeasureStatus::Timeout,
        };
        let csv = [rec].export(Dataset::Voip);
        assert!(!csv.contains("inf"), "non-finite leaked: {csv}");
        let row = csv.lines().nth(1).unwrap();
        assert_eq!(row, "PAK,esim,HR,4G,,,1.0000,0.00,1.00,timeout");
        let header_cols = csv.lines().next().unwrap().split(',').count();
        assert_eq!(row.split(',').count(), header_cols);
        // NaN is swallowed the same way.
        assert_eq!(format!("{:.3}", Fin(f64::NAN)), "");
        assert_eq!(format!("{:.3}", Fin(1.5)), "1.500");
    }

    #[test]
    fn voip_rows_with_finite_metrics_are_fully_populated() {
        let (r_factor, mos) = crate::voip::e_model(80.0, 3.0, 0.01);
        let rec = VoipRecord {
            tag: tag(),
            result: crate::voip::VoipResult {
                rtt_ms: 80.0,
                jitter_ms: 3.0,
                loss: 0.01,
                r_factor,
                mos,
            },
            status: MeasureStatus::Ok,
        };
        let csv = [rec].export(Dataset::Voip);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.contains("80.000") && row.contains("3.000"));
        assert!(!row.contains(",,"), "no empty fields expected: {row}");
    }

    #[test]
    fn empty_campaign_yields_headers_only() {
        let d = CampaignData::default();
        for ds in Dataset::ALL {
            assert_eq!(d.export(ds).lines().count(), 1, "{ds:?}");
        }
    }
}
