//! CDN object fetch (§5.1 "CDN Download Time", Figs. 14a and 20).
//!
//! The device campaign `curl`s `jquery.min.js` (v3.6.0) from five CDN
//! providers and records the download time and the cache header. The fetch
//! decomposes into DNS lookup, TCP+TLS setup, and the object transfer; a
//! cache MISS adds an edge→origin fetch, which is how the Thai physical
//! SIM's 7.7% MISS rate showed up as an 18% higher median (§5.1).

use crate::dns::resolve_checked;
use crate::endpoint::Endpoint;
use crate::error::{MeasureError, MeasureStatus};
use crate::targets::{Service, ServiceTargets};
use rand::Rng;
use roam_geo::City;
use roam_netsim::throughput::TransferSpec;
use roam_netsim::Network;

/// Compressed transfer size of jquery.min.js v3.6.0 (~30 kB gzipped).
pub const JQUERY_BYTES: f64 = 30_345.0;

/// The five CDN providers of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CdnProvider {
    /// Cloudflare (the headline panel, Fig. 14a).
    Cloudflare,
    /// Google CDN (Hosted Libraries).
    GoogleCdn,
    /// jsDelivr.
    JsDelivr,
    /// code.jquery.com.
    JQuery,
    /// Microsoft Ajax CDN.
    MicrosoftAjax,
}

impl CdnProvider {
    /// All providers, in the order the appendix plots them.
    pub const ALL: [CdnProvider; 5] = [
        CdnProvider::Cloudflare,
        CdnProvider::GoogleCdn,
        CdnProvider::JsDelivr,
        CdnProvider::JQuery,
        CdnProvider::MicrosoftAjax,
    ];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CdnProvider::Cloudflare => "Cloudflare",
            CdnProvider::GoogleCdn => "Google CDN",
            CdnProvider::JsDelivr => "jsDelivr",
            CdnProvider::JQuery => "jQuery",
            CdnProvider::MicrosoftAjax => "Microsoft Ajax",
        }
    }

    /// Hostname used for the DNS lookup.
    #[must_use]
    pub fn hostname(&self) -> &'static str {
        match self {
            CdnProvider::Cloudflare => "cdnjs.cloudflare.com",
            CdnProvider::GoogleCdn => "ajax.googleapis.com",
            CdnProvider::JsDelivr => "cdn.jsdelivr.net",
            CdnProvider::JQuery => "code.jquery.com",
            CdnProvider::MicrosoftAjax => "ajax.aspnetcdn.com",
        }
    }
}

impl std::fmt::Display for CdnProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one CDN fetch.
#[derive(Debug, Clone, Copy)]
pub struct CdnResult {
    /// Provider fetched from.
    pub provider: CdnProvider,
    /// End-to-end download time (DNS + connect + transfer), ms.
    pub total_ms: f64,
    /// DNS component, ms.
    pub dns_ms: f64,
    /// Whether the edge had the object (HIT) or had to fetch it (MISS).
    pub cache_hit: bool,
    /// Edge that served the object.
    pub edge_city: City,
    /// How the fetch ended (ok, or ok-via-failover on either sub-flow).
    pub status: MeasureStatus,
}

/// Per-fetch options.
#[derive(Debug, Clone, Copy)]
pub struct CdnOptions {
    /// Probability the edge must go to the origin.
    pub miss_rate: f64,
}

impl Default for CdnOptions {
    fn default() -> Self {
        CdnOptions { miss_rate: 0.02 }
    }
}

/// Fetch jquery.min.js from `provider` as the flow named by `label` (the
/// DNS lookup runs as its own `{label}/dns` sub-flow). `None` when DNS
/// fails or no edge is reachable.
pub fn fetch_jquery(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    provider: CdnProvider,
    opts: CdnOptions,
    label: &str,
) -> Option<CdnResult> {
    fetch_jquery_checked(net, endpoint, targets, provider, opts, label).ok()
}

/// [`fetch_jquery`] with typed failure semantics: DNS failures and dead
/// edges surface as [`MeasureError`]s; a missing edge or resolver in the
/// scenario is [`MeasureError::NoTarget`].
///
/// # Errors
/// Propagates [`resolve_checked`] and
/// [`crate::endpoint::Probe::rtt_checked`] failures.
pub fn fetch_jquery_checked(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    provider: CdnProvider,
    opts: CdnOptions,
    label: &str,
) -> Result<CdnResult, MeasureError> {
    let dns = resolve_checked(
        net,
        endpoint,
        targets,
        provider.hostname(),
        &format!("{label}/dns"),
    )?;
    let edge = targets
        .nearest(net, Service::Cdn(provider), endpoint.att.breakout_city)
        .ok_or(MeasureError::NoTarget)?;

    let mut probe = endpoint.probe(net, label);
    let rtt = probe.rtt_checked(edge)?;
    let cqi = endpoint.channel.sample(probe.rng());

    let mut total = dns.lookup_ms
        + probe.transfer_ms(&TransferSpec {
            bytes: JQUERY_BYTES,
            rtt_ms: rtt.rtt_ms,
            policy_rate_mbps: endpoint.effective_down_mbps(cqi),
            loss: endpoint.loss,
            setup_rtts: 3.0, // TCP + TLS
            parallel: 1,     // curl fetches one object on one connection
        });

    let cache_hit = !probe.rng().gen_bool(opts.miss_rate.clamp(0.0, 1.0));
    if !cache_hit {
        // Edge→origin fetch before the first byte reaches the client.
        if let Some(origin) = targets.origin(provider) {
            let edge_city = net.node(edge).city.location();
            let origin_city = net.node(origin).city.location();
            let origin_rtt =
                2.0 * roam_geo::fiber_delay_ms(edge_city.distance_km(origin_city)) * 1.4 + 2.0;
            total += 1.5 * origin_rtt; // connect reuse + object fetch
        } else {
            total += 120.0; // no origin registered: generic penalty
        }
    }

    Ok(CdnResult {
        provider,
        total_ms: total,
        dns_ms: dns.lookup_ms,
        cache_hit,
        edge_city: net.node(edge).city,
        status: if rtt.failover || dns.status == MeasureStatus::Failover {
            MeasureStatus::Failover
        } else {
            MeasureStatus::Ok
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_cellular::{ChannelSampler, MnoId, Rat, SimType};
    use roam_geo::Country;
    use roam_ipx::{Attachment, DnsMode, PgwProviderId, RoamingArch};
    use roam_netsim::link::{LatencyModel, LinkClass};
    use roam_netsim::NodeKind;

    fn world(tunnel_ms: f64) -> (Network, Endpoint, ServiceTargets) {
        let mut net = Network::new(21);
        let ue = net.add_node(
            "ue",
            NodeKind::Host,
            City::Karachi,
            "10.0.0.2".parse().unwrap(),
        );
        let nat = net.add_node(
            "nat",
            NodeKind::CgNat,
            City::Singapore,
            "202.166.126.7".parse().unwrap(),
        );
        net.link_with(
            ue,
            nat,
            LinkClass::Tunnel,
            LatencyModel::fixed(tunnel_ms, 1.0),
            0.0,
        );
        let edge = net.add_node(
            "cf-sgp",
            NodeKind::SpEdge,
            City::Singapore,
            "104.16.1.1".parse().unwrap(),
        );
        let origin = net.add_node(
            "cf-origin",
            NodeKind::SpEdge,
            City::Ashburn,
            "104.16.9.9".parse().unwrap(),
        );
        let dns_node = net.add_node(
            "op-dns",
            NodeKind::DnsResolver,
            City::Singapore,
            "165.21.83.88".parse().unwrap(),
        );
        net.link_with(
            nat,
            edge,
            LinkClass::Peering,
            LatencyModel::fixed(1.0, 0.2),
            0.0,
        );
        net.link_with(
            nat,
            dns_node,
            LinkClass::Metro,
            LatencyModel::fixed(0.8, 0.1),
            0.0,
        );
        net.link_geo(edge, origin, LinkClass::Backbone);
        let mut targets = ServiceTargets::new();
        targets.add(Service::Cdn(CdnProvider::Cloudflare), edge);
        targets.set_origin(CdnProvider::Cloudflare, origin);
        targets.set_operator_dns(MnoId(1), dns_node);
        let ep = Endpoint {
            att: Attachment {
                ue,
                ran: ue,
                sgw: ue,
                cgnat: nat,
                public_ip: "202.166.126.7".parse().unwrap(),
                arch: RoamingArch::HomeRouted,
                provider: PgwProviderId(0),
                breakout_city: City::Singapore,
                tunnel_km: 4700.0,
                dns: DnsMode::OperatorResolver,
                teid: 4,
                v_mno: MnoId(0),
                b_mno: MnoId(1),
                rat: Rat::Lte,
                private_hops: 8,
                flow_stamp: 0xCD4,
            },
            sim_type: SimType::Esim,
            country: Country::PAK,
            label: "PAK eSIM".into(),
            policy_down_mbps: 12.0,
            policy_up_mbps: 6.0,
            youtube_cap_mbps: None,
            loss: 0.0,
            channel: ChannelSampler {
                mode_cqi: 12,
                weak_tail: 0.0,
            },
        };
        (net, ep, targets)
    }

    #[test]
    fn long_tunnel_multiplies_download_time() {
        let opts = CdnOptions { miss_rate: 0.0 };
        let (mut fast_net, fast_ep, t1) = world(10.0);
        let (mut slow_net, slow_ep, t2) = world(180.0);
        let fast = fetch_jquery(
            &mut fast_net,
            &fast_ep,
            &t1,
            CdnProvider::Cloudflare,
            opts,
            "cdn/0",
        )
        .unwrap();
        let slow = fetch_jquery(
            &mut slow_net,
            &slow_ep,
            &t2,
            CdnProvider::Cloudflare,
            opts,
            "cdn/0",
        )
        .unwrap();
        let ratio = slow.total_ms / fast.total_ms;
        assert!(ratio > 3.0, "HR-scale RTT inflation: {ratio:.1}x");
        assert!(
            slow.total_ms > 1500.0,
            "HR CDN fetches take seconds: {}",
            slow.total_ms
        );
    }

    #[test]
    fn misses_cost_more_than_hits() {
        let (mut net, ep, targets) = world(10.0);
        let mut hit_times = vec![];
        let mut miss_times = vec![];
        for i in 0..300 {
            let r = fetch_jquery(
                &mut net,
                &ep,
                &targets,
                CdnProvider::Cloudflare,
                CdnOptions { miss_rate: 0.3 },
                &format!("cdn/{i}"),
            )
            .unwrap();
            if r.cache_hit {
                hit_times.push(r.total_ms);
            } else {
                miss_times.push(r.total_ms);
            }
        }
        assert!(!miss_times.is_empty() && !hit_times.is_empty());
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&miss_times) > avg(&hit_times) + 100.0,
            "origin fetch must hurt: hit {:.0} vs miss {:.0}",
            avg(&hit_times),
            avg(&miss_times)
        );
    }

    #[test]
    fn dns_time_is_part_of_total() {
        let (mut net, ep, targets) = world(10.0);
        let r = fetch_jquery(
            &mut net,
            &ep,
            &targets,
            CdnProvider::Cloudflare,
            CdnOptions { miss_rate: 0.0 },
            "cdn/0",
        )
        .unwrap();
        assert!(r.dns_ms > 0.0 && r.dns_ms < r.total_ms);
        assert_eq!(r.edge_city, City::Singapore);
    }

    #[test]
    fn provider_metadata() {
        assert_eq!(CdnProvider::ALL.len(), 5);
        for p in CdnProvider::ALL {
            assert!(!p.name().is_empty());
            assert!(p.hostname().contains('.'));
        }
    }

    #[test]
    fn unreachable_cdn_returns_none() {
        let (mut net, ep, targets) = world(10.0);
        assert!(fetch_jquery(
            &mut net,
            &ep,
            &targets,
            CdnProvider::JsDelivr,
            CdnOptions::default(),
            "cdn/0"
        )
        .is_none());
    }
}
