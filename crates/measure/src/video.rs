//! YouTube streaming via "stats-for-nerds" (§5.2, Fig. 15).
//!
//! The campaign plays a 4K-capable video through a browser extension and
//! records the resolution the ABR controller settles on. The model: the
//! controller probes the available bandwidth (policy ∧ PHY ∧ any
//! service-specific cap, discounted by a utilisation factor) and picks the
//! highest rung whose bitrate fits with headroom. Observed resolutions in
//! the paper top out at 1440p, with 720p the global mode and the HR
//! b-MNO's YouTube throttle pinning PAK/ARE at 720p despite sufficient
//! measured bandwidth — that cap is [`crate::endpoint::Endpoint::youtube_cap_mbps`].

use crate::endpoint::Endpoint;
use crate::error::{MeasureError, MeasureStatus};
use crate::targets::{Service, ServiceTargets};
use rand::Rng;
use roam_netsim::Network;

/// Playback resolutions with their ladder bitrates (Mbps, H.264-ish).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resolution {
    /// 480p — the worst the paper observed (2.2% of Thai eSIM playbacks).
    P480,
    /// 720p — the global mode.
    P720,
    /// 1080p.
    P1080,
    /// 1440p — the best observed.
    P1440,
    /// 2160p (4K) — offered by the test video, never reached in the paper.
    P2160,
}

impl Resolution {
    /// Ladder in ascending order.
    pub const LADDER: [Resolution; 5] = [
        Resolution::P480,
        Resolution::P720,
        Resolution::P1080,
        Resolution::P1440,
        Resolution::P2160,
    ];

    /// Nominal bitrate of the rung, Mbps.
    #[must_use]
    pub fn bitrate_mbps(&self) -> f64 {
        match self {
            Resolution::P480 => 1.2,
            Resolution::P720 => 2.8,
            Resolution::P1080 => 5.5,
            Resolution::P1440 => 9.5,
            Resolution::P2160 => 17.0,
        }
    }

    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Resolution::P480 => "480p",
            Resolution::P720 => "720p",
            Resolution::P1080 => "1080p",
            Resolution::P1440 => "1440p",
            Resolution::P2160 => "2160p",
        }
    }
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One playback session's stats-for-nerds summary.
#[derive(Debug, Clone, Copy)]
pub struct VideoResult {
    /// Resolution the ABR settled on.
    pub resolution: Resolution,
    /// Bandwidth the controller estimated, Mbps.
    pub estimated_bw_mbps: f64,
    /// Whether the buffer ran dry during the session.
    pub rebuffered: bool,
    /// How the session ended (ok, or ok-via-failover).
    pub status: MeasureStatus,
}

/// ABR headroom: a rung is selected only if its bitrate fits under
/// `bandwidth / HEADROOM`.
const HEADROOM: f64 = 1.25;

/// Play the 4K test video from the endpoint as the flow named by `label`.
/// `None` when no YouTube edge is reachable.
pub fn play_youtube(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    label: &str,
) -> Option<VideoResult> {
    play_youtube_checked(net, endpoint, targets, label).ok()
}

/// [`play_youtube`] with typed failure semantics: a missing YouTube edge
/// is [`MeasureError::NoTarget`]; a dead path surfaces the probe's error.
///
/// # Errors
/// Propagates [`crate::endpoint::Probe::rtt_checked`] failures.
pub fn play_youtube_checked(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    label: &str,
) -> Result<VideoResult, MeasureError> {
    let edge = targets
        .nearest(net, Service::YouTube, endpoint.att.breakout_city)
        .ok_or(MeasureError::NoTarget)?;
    let mut probe = endpoint.probe(net, label);
    let sample = probe.rtt_checked(edge)?;
    let rtt = sample.rtt_ms;
    let cqi = endpoint.channel.sample(probe.rng());

    // Long RTT also hurts the ABR's achievable throughput (chunk fetches
    // are request/response bound): apply a mild RTT discount.
    let rtt_factor = (1.0 - (rtt / 2000.0)).clamp(0.4, 1.0);
    let mut bw = endpoint.effective_down_mbps(cqi) * rtt_factor;
    if let Some(cap) = endpoint.youtube_cap_mbps {
        bw = bw.min(cap);
    }
    // Per-session utilisation wobble (cross traffic, pacing).
    let bw = bw * probe.rng().gen_range(0.7..0.98);

    let resolution = Resolution::LADDER
        .iter()
        .rev()
        .copied()
        .find(|r| r.bitrate_mbps() * HEADROOM <= bw)
        .unwrap_or(Resolution::P480);
    // Rebuffering when even the chosen rung has <5% headroom.
    let rebuffered = bw < resolution.bitrate_mbps() * 1.05;

    Ok(VideoResult {
        resolution,
        estimated_bw_mbps: bw,
        rebuffered,
        status: sample.status(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_cellular::{ChannelSampler, MnoId, Rat, SimType};
    use roam_geo::{City, Country};
    use roam_ipx::{Attachment, DnsMode, PgwProviderId, RoamingArch};
    use roam_netsim::link::{LatencyModel, LinkClass};
    use roam_netsim::NodeKind;

    fn world(down: f64, cap: Option<f64>) -> (Network, Endpoint, ServiceTargets) {
        let mut net = Network::new(31);
        let ue = net.add_node(
            "ue",
            NodeKind::Host,
            City::Berlin,
            "10.0.0.2".parse().unwrap(),
        );
        let nat = net.add_node(
            "nat",
            NodeKind::CgNat,
            City::Amsterdam,
            "147.75.81.2".parse().unwrap(),
        );
        net.link_with(
            ue,
            nat,
            LinkClass::Tunnel,
            LatencyModel::fixed(25.0, 1.0),
            0.0,
        );
        let yt = net.add_node(
            "yt-ams",
            NodeKind::SpEdge,
            City::Amsterdam,
            "142.250.9.1".parse().unwrap(),
        );
        net.link_with(
            nat,
            yt,
            LinkClass::Peering,
            LatencyModel::fixed(1.0, 0.2),
            0.0,
        );
        let mut targets = ServiceTargets::new();
        targets.add(Service::YouTube, yt);
        let ep = Endpoint {
            att: Attachment {
                ue,
                ran: ue,
                sgw: ue,
                cgnat: nat,
                public_ip: "147.75.81.2".parse().unwrap(),
                arch: RoamingArch::IpxHubBreakout,
                provider: PgwProviderId(0),
                breakout_city: City::Amsterdam,
                tunnel_km: 600.0,
                dns: DnsMode::GooglePublic { doh: true },
                teid: 5,
                v_mno: MnoId(0),
                b_mno: MnoId(1),
                rat: Rat::Nr5g,
                private_hops: 8,
                flow_stamp: 0x0007_1DE0,
            },
            sim_type: SimType::Esim,
            country: Country::DEU,
            label: "DEU eSIM".into(),
            policy_down_mbps: down,
            policy_up_mbps: 10.0,
            youtube_cap_mbps: cap,
            loss: 0.0,
            channel: ChannelSampler {
                mode_cqi: 13,
                weak_tail: 0.0,
            },
        };
        (net, ep, targets)
    }

    fn mode_resolution(down: f64, cap: Option<f64>, seed: u64) -> Resolution {
        let (mut net, ep, targets) = world(down, cap);
        let mut counts = std::collections::HashMap::new();
        for i in 0..60 {
            let r = play_youtube(&mut net, &ep, &targets, &format!("v/{seed}/{i}")).unwrap();
            *counts.entry(r.resolution).or_insert(0) += 1;
        }
        counts.into_iter().max_by_key(|(_, c)| *c).unwrap().0
    }

    #[test]
    fn ample_bandwidth_reaches_high_rungs() {
        let m = mode_resolution(80.0, None, 1);
        assert!(
            m >= Resolution::P1440,
            "80 Mbps should stream ≥1440p, got {m}"
        );
    }

    #[test]
    fn throttled_policy_pins_720p() {
        let m = mode_resolution(5.0, None, 2);
        assert_eq!(m, Resolution::P720, "5 Mbps policy → 720p mode");
    }

    #[test]
    fn youtube_cap_overrides_fast_policy() {
        // The §5.2 surprise: plenty of bandwidth, but the b-MNO throttles
        // YouTube specifically → constant 720p.
        let m = mode_resolution(50.0, Some(5.0), 3);
        assert_eq!(m, Resolution::P720);
    }

    #[test]
    fn starved_session_rebuffers_at_bottom_rung() {
        let (mut net, mut ep, targets) = world(1.0, None);
        ep.policy_down_mbps = 1.0;
        let r = play_youtube(&mut net, &ep, &targets, "v/starved").unwrap();
        assert_eq!(r.resolution, Resolution::P480);
        assert!(r.rebuffered, "1 Mbps cannot sustain 480p at 1.2 Mbps");
    }

    #[test]
    fn ladder_is_monotone_in_bitrate() {
        let mut last = 0.0;
        for r in Resolution::LADDER {
            assert!(r.bitrate_mbps() > last);
            last = r.bitrate_mbps();
        }
    }

    #[test]
    fn no_edge_returns_none() {
        let (mut net, ep, _) = world(10.0, None);
        assert!(play_youtube(&mut net, &ep, &ServiceTargets::new(), "v/0").is_none());
    }
}
