//! The device-campaign measurement suite — Table 1 of the paper.

/// One kind of network measurement the AmiGo-style endpoint runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasurementKind {
    /// Ookla speedtest near the public-IP geolocation.
    Speedtest,
    /// `mtr` traceroutes to Google / Facebook / YouTube.
    Traceroute,
    /// jquery.min.js download from five CDN providers.
    Cdn,
    /// Resolver discovery and lookup timing via NextDNS.
    Dns,
    /// YouTube stats-for-nerds while playing a 4K video.
    YouTube,
}

impl MeasurementKind {
    /// All kinds, in the table's row order.
    pub const ALL: [MeasurementKind; 5] = [
        MeasurementKind::Speedtest,
        MeasurementKind::Traceroute,
        MeasurementKind::Cdn,
        MeasurementKind::Dns,
        MeasurementKind::YouTube,
    ];

    /// Table 1 "Description" column.
    #[must_use]
    pub fn description(&self) -> &'static str {
        match self {
            MeasurementKind::Speedtest => "Speedtest to an Ookla server near user's IP-geolocation",
            MeasurementKind::Traceroute => "Traceroute to Google/Facebook/YouTube via mtr",
            MeasurementKind::Cdn => "Download jquery.min.js (v3.6.0) from different CDN providers",
            MeasurementKind::Dns => "Retrieve the current DNS resolver via NextDNS",
            MeasurementKind::YouTube => {
                "Collect video-streaming info from YouTube's stats-for-nerds while playing 4K video"
            }
        }
    }

    /// Table 1 "Visibility" column.
    #[must_use]
    pub fn visibility(&self) -> &'static str {
        match self {
            MeasurementKind::Speedtest => "Latency, Down/Up Bandwidth",
            MeasurementKind::Traceroute => "Latency, Network Path",
            MeasurementKind::Cdn => "Download Speed, DNS lookup time",
            MeasurementKind::Dns => "DNS resolver",
            MeasurementKind::YouTube => "Video Resolution, Buffer Occupancy",
        }
    }

    /// Row label.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MeasurementKind::Speedtest => "Speedtest",
            MeasurementKind::Traceroute => "Traceroute",
            MeasurementKind::Cdn => "CDN",
            MeasurementKind::Dns => "DNS",
            MeasurementKind::YouTube => "YouTube",
        }
    }
}

/// Render Table 1 as an aligned text table.
#[must_use]
pub fn measurement_suite() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<72} {}\n",
        "Measurement", "Description", "Visibility"
    ));
    for k in MeasurementKind::ALL {
        out.push_str(&format!(
            "{:<12} {:<72} {}\n",
            k.name(),
            k.description(),
            k.visibility()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_five_rows() {
        let t = measurement_suite();
        assert_eq!(t.lines().count(), 6);
        for k in MeasurementKind::ALL {
            assert!(t.contains(k.name()));
            assert!(t.contains(k.visibility()));
        }
    }

    #[test]
    fn descriptions_match_paper_wording() {
        assert!(MeasurementKind::Cdn.description().contains("jquery.min.js"));
        assert!(MeasurementKind::Dns.description().contains("NextDNS"));
        assert!(MeasurementKind::YouTube
            .visibility()
            .contains("Buffer Occupancy"));
    }
}
