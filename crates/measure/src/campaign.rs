//! Campaign orchestration: the device-based and web-based campaigns.
//!
//! [`run_device_campaign`] mirrors §3.2: a rooted device with a local
//! physical SIM and an Airalo-style eSIM alternates between them, running
//! the Table-1 suite with per-country sample counts (Table 4 shows them
//! as `<physical SIM> // <Airalo eSIM>`). [`run_web_measurement`] mirrors
//! §3.1: a volunteer's own phone uploads a DNS check plus a fast.com run.

use crate::cdn::{fetch_jquery, CdnOptions, CdnProvider};
use crate::dns::resolve;
use crate::endpoint::Endpoint;
use crate::speedtest::ookla_speedtest;
use crate::targets::{Service, ServiceTargets};
use crate::trace::mtr_run;
use crate::video::{play_youtube, Resolution};
use crate::webtest::fastcom_test;
use roam_cellular::{Cqi, Rat, SimType};
use roam_core::PathAnalysis;
use roam_geo::{City, Country};
use roam_ipx::RoamingArch;
use roam_netsim::Network;
use roam_telemetry::{Counter, Event, EventScope, Sink};
use std::net::Ipv4Addr;

/// Context tag attached to every record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordTag {
    /// Country the measurement ran in.
    pub country: Country,
    /// Physical SIM or eSIM.
    pub sim_type: SimType,
    /// Roaming architecture of the session.
    pub arch: RoamingArch,
    /// RAT of the attachment.
    pub rat: Rat,
}

impl RecordTag {
    fn of(ep: &Endpoint) -> Self {
        RecordTag {
            country: ep.country,
            sim_type: ep.sim_type,
            arch: ep.att.arch,
            rat: ep.rat(),
        }
    }
}

/// One Ookla speedtest record.
#[derive(Debug, Clone, Copy)]
pub struct SpeedtestRecord {
    /// Context.
    pub tag: RecordTag,
    /// Downlink, Mbps.
    pub down_mbps: f64,
    /// Uplink, Mbps.
    pub up_mbps: f64,
    /// Latency to the selected server, ms.
    pub latency_ms: f64,
    /// Echo attempts the latency phase consumed (probe loss).
    pub attempts: u32,
    /// Channel quality during the test.
    pub cqi: Cqi,
}

/// One traceroute record.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Context.
    pub tag: RecordTag,
    /// Target service.
    pub service: Service,
    /// Path decomposition.
    pub analysis: PathAnalysis,
}

/// One CDN fetch record.
#[derive(Debug, Clone, Copy)]
pub struct CdnRecord {
    /// Context.
    pub tag: RecordTag,
    /// Provider fetched from.
    pub provider: CdnProvider,
    /// Total download time, ms.
    pub total_ms: f64,
    /// DNS component, ms.
    pub dns_ms: f64,
    /// Cache state at the edge.
    pub cache_hit: bool,
}

/// One DNS lookup record.
#[derive(Debug, Clone, Copy)]
pub struct DnsRecord {
    /// Context.
    pub tag: RecordTag,
    /// Lookup time, ms.
    pub lookup_ms: f64,
    /// Echo attempts the resolver RTT phase consumed.
    pub attempts: u32,
    /// Resolver city.
    pub resolver_city: City,
    /// DoH in use?
    pub doh: bool,
}

/// One video playback record.
#[derive(Debug, Clone, Copy)]
pub struct VideoRecord {
    /// Context.
    pub tag: RecordTag,
    /// Resolution settled on.
    pub resolution: Resolution,
    /// Buffer underrun?
    pub rebuffered: bool,
}

/// All records of a campaign (possibly many countries merged).
#[derive(Debug, Default, Clone)]
pub struct CampaignData {
    /// Speedtests.
    pub speedtests: Vec<SpeedtestRecord>,
    /// Traceroutes.
    pub traces: Vec<TraceRecord>,
    /// CDN fetches.
    pub cdns: Vec<CdnRecord>,
    /// DNS lookups.
    pub dns: Vec<DnsRecord>,
    /// Video sessions.
    pub videos: Vec<VideoRecord>,
}

impl CampaignData {
    /// Merge another campaign's records into this one.
    pub fn extend(&mut self, other: CampaignData) {
        self.speedtests.extend(other.speedtests);
        self.traces.extend(other.traces);
        self.cdns.extend(other.cdns);
        self.dns.extend(other.dns);
        self.videos.extend(other.videos);
    }

    /// Speedtests passing the paper's CQI ≥ 7 filter.
    #[must_use]
    pub fn filtered_speedtests(&self) -> Vec<&SpeedtestRecord> {
        self.speedtests
            .iter()
            .filter(|r| r.cqi.passes_quality_filter())
            .collect()
    }

    /// Total records across every dataset.
    #[must_use]
    pub fn len(&self) -> usize {
        self.speedtests.len()
            + self.traces.len()
            + self.cdns.len()
            + self.dns.len()
            + self.videos.len()
    }

    /// No records at all?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-country sample counts, `(physical SIM, eSIM)` — the Table 4 format.
#[derive(Debug, Clone, Copy)]
pub struct DeviceCampaignSpec {
    /// Ookla speedtests.
    pub ookla: (u32, u32),
    /// `mtr` runs per target service (Google, Facebook, YouTube each).
    pub mtr_per_target: (u32, u32),
    /// CDN fetches per provider (five providers each).
    pub cdn_per_provider: (u32, u32),
    /// DNS lookups.
    pub dns: (u32, u32),
    /// Video playbacks.
    pub video: (u32, u32),
}

impl DeviceCampaignSpec {
    /// A small, fast spec for tests and examples.
    #[must_use]
    pub fn smoke() -> Self {
        DeviceCampaignSpec {
            ookla: (3, 3),
            mtr_per_target: (3, 3),
            cdn_per_provider: (2, 2),
            dns: (3, 3),
            video: (2, 2),
        }
    }
}

/// The traceroute targets of the device campaign.
const MTR_TARGETS: [Service; 3] = [Service::Google, Service::Facebook, Service::YouTube];

/// One planned measurement of the device campaign. The repetition index is
/// part of the plan entry, so every measurement names its own flow and the
/// outcome is a function of the entry alone — not of how many measurements
/// ran before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedMeasurement {
    /// The `i`-th Ookla speedtest.
    Ookla(u32),
    /// The `i`-th `mtr` run toward a service.
    Mtr(Service, u32),
    /// The `i`-th fetch from a CDN provider.
    Cdn(CdnProvider, u32),
    /// The `i`-th DNS check.
    Dns(u32),
    /// The `i`-th video playback.
    Video(u32),
}

impl DeviceCampaignSpec {
    /// Expand the per-country counts into the ordered measurement plan for
    /// one endpoint (`sim` selects the physical-SIM or eSIM column).
    #[must_use]
    pub fn plan(&self, sim: SimType) -> Vec<PlannedMeasurement> {
        let pick = |c: (u32, u32)| match sim {
            SimType::Physical => c.0,
            SimType::Esim => c.1,
        };
        let mut plan = Vec::new();
        for i in 0..pick(self.ookla) {
            plan.push(PlannedMeasurement::Ookla(i));
        }
        for service in MTR_TARGETS {
            for i in 0..pick(self.mtr_per_target) {
                plan.push(PlannedMeasurement::Mtr(service, i));
            }
        }
        for provider in CdnProvider::ALL {
            for i in 0..pick(self.cdn_per_provider) {
                plan.push(PlannedMeasurement::Cdn(provider, i));
            }
        }
        for i in 0..pick(self.dns) {
            plan.push(PlannedMeasurement::Dns(i));
        }
        for i in 0..pick(self.video) {
            plan.push(PlannedMeasurement::Video(i));
        }
        plan
    }
}

/// Execute one planned measurement on `ep`, appending any record it
/// produces to `data`. Each entry runs on its own flow, so a plan may be
/// executed in any order — the records come out the same.
pub fn run_measurement(
    net: &mut Network,
    ep: &Endpoint,
    targets: &ServiceTargets,
    m: PlannedMeasurement,
    data: &mut CampaignData,
) {
    let tag = RecordTag::of(ep);
    let before = data.len();
    execute_measurement(net, ep, targets, m, data, tag);
    let emitted = (data.len() - before) as u64;
    let t = net.telemetry_mut();
    t.add(Counter::PlansExecuted, 1);
    t.add(Counter::RecordsEmitted, emitted);
    if t.wants_events() {
        t.push_event(Event {
            at_ns: 0,
            scope: EventScope::Shard(format!("{:?}/{:?}", tag.country, tag.sim_type)),
            kind: "plan",
            label: format!("{m:?}"),
            value: Some(emitted as f64),
            attempts: None,
        });
    }
}

fn execute_measurement(
    net: &mut Network,
    ep: &Endpoint,
    targets: &ServiceTargets,
    m: PlannedMeasurement,
    data: &mut CampaignData,
    tag: RecordTag,
) {
    match m {
        PlannedMeasurement::Ookla(i) => {
            if let Some(r) = ookla_speedtest(net, ep, targets, &format!("ookla/{i}")) {
                data.speedtests.push(SpeedtestRecord {
                    tag,
                    down_mbps: r.down_mbps,
                    up_mbps: r.up_mbps,
                    latency_ms: r.latency_ms,
                    attempts: r.attempts,
                    cqi: r.cqi,
                });
            }
        }
        PlannedMeasurement::Mtr(service, run) => {
            if let Some(out) = mtr_run(net, ep, targets, service, run) {
                data.traces.push(TraceRecord {
                    tag,
                    service,
                    analysis: out.analysis,
                });
            }
        }
        PlannedMeasurement::Cdn(provider, i) => {
            let label = format!("cdn/{provider:?}/{i}");
            if let Some(r) = fetch_jquery(net, ep, targets, provider, CdnOptions::default(), &label)
            {
                data.cdns.push(CdnRecord {
                    tag,
                    provider,
                    total_ms: r.total_ms,
                    dns_ms: r.dns_ms,
                    cache_hit: r.cache_hit,
                });
            }
        }
        PlannedMeasurement::Dns(i) => {
            if let Some(r) = resolve(net, ep, targets, "test.nextdns.io", &format!("dns/{i}")) {
                data.dns.push(DnsRecord {
                    tag,
                    lookup_ms: r.lookup_ms,
                    attempts: r.attempts,
                    resolver_city: r.resolver_city,
                    doh: r.doh,
                });
            }
        }
        PlannedMeasurement::Video(i) => {
            if let Some(r) = play_youtube(net, ep, targets, &format!("video/{i}")) {
                data.videos.push(VideoRecord {
                    tag,
                    resolution: r.resolution,
                    rebuffered: r.rebuffered,
                });
            }
        }
    }
}

/// Run the full device campaign for one country: the given counts on the
/// physical-SIM endpoint and on the eSIM endpoint, alternating as the real
/// testbed did.
pub fn run_device_campaign(
    net: &mut Network,
    sim: &Endpoint,
    esim: &Endpoint,
    spec: &DeviceCampaignSpec,
    targets: &ServiceTargets,
) -> CampaignData {
    let mut data = CampaignData::default();
    for ep in [sim, esim] {
        for m in spec.plan(ep.sim_type) {
            run_measurement(net, ep, targets, m, &mut data);
        }
    }
    data
}

/// One completed web-campaign measurement: "the volunteer uploading their
/// current DNS configuration followed by the result of a fast.com speed
/// test" (§A.3).
#[derive(Debug, Clone, Copy)]
pub struct WebRecord {
    /// Country the volunteer measured from.
    pub country: Country,
    /// fast.com downlink, Mbps.
    pub down_mbps: f64,
    /// fast.com latency, ms.
    pub latency_ms: f64,
    /// Public IP the test saw (tomography input).
    pub public_ip: Ipv4Addr,
    /// Resolver the DNS check identified.
    pub resolver_city: City,
}

/// Run one web-campaign measurement on an (eSIM) endpoint as the flow
/// family named by `label`.
pub fn run_web_measurement(
    net: &mut Network,
    ep: &Endpoint,
    targets: &ServiceTargets,
    label: &str,
) -> Option<WebRecord> {
    let dns = resolve(net, ep, targets, "test.nextdns.io", &format!("{label}/dns"))?;
    let fast = fastcom_test(net, ep, targets, label)?;
    Some(WebRecord {
        country: ep.country,
        down_mbps: fast.down_mbps,
        latency_ms: fast.latency_ms,
        public_ip: fast.public_ip,
        resolver_city: dns.resolver_city,
    })
}
