//! Campaign orchestration: the device-based and web-based campaigns.
//!
//! [`run_device_campaign`] mirrors §3.2: a rooted device with a local
//! physical SIM and an Airalo-style eSIM alternates between them, running
//! the Table-1 suite with per-country sample counts (Table 4 shows them
//! as `<physical SIM> // <Airalo eSIM>`). [`run_web_measurement`] mirrors
//! §3.1: a volunteer's own phone uploads a DNS check plus a fast.com run.

use crate::cdn::{fetch_jquery_checked, CdnOptions, CdnProvider};
use crate::dns::resolve_checked;
use crate::endpoint::Endpoint;
use crate::error::{MeasureError, MeasureStatus};
use crate::speedtest::ookla_speedtest_checked;
use crate::targets::{Service, ServiceTargets};
use crate::trace::mtr_run_checked;
use crate::video::{play_youtube_checked, Resolution};
use crate::webtest::fastcom_test;
use roam_cellular::{Cqi, Rat, SimType};
use roam_core::PathAnalysis;
use roam_geo::{City, Country};
use roam_ipx::RoamingArch;
use roam_netsim::Network;
use roam_telemetry::{Counter, Event, EventScope, Sink};
use std::net::Ipv4Addr;

/// Context tag attached to every record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordTag {
    /// Country the measurement ran in.
    pub country: Country,
    /// Physical SIM or eSIM.
    pub sim_type: SimType,
    /// Roaming architecture of the session.
    pub arch: RoamingArch,
    /// RAT of the attachment.
    pub rat: Rat,
}

impl RecordTag {
    fn of(ep: &Endpoint) -> Self {
        RecordTag {
            country: ep.country,
            sim_type: ep.sim_type,
            arch: ep.att.arch,
            rat: ep.rat(),
        }
    }
}

/// One Ookla speedtest record.
#[derive(Debug, Clone, Copy)]
pub struct SpeedtestRecord {
    /// Context.
    pub tag: RecordTag,
    /// Downlink, Mbps (`NaN` on a failed run — exported empty).
    pub down_mbps: f64,
    /// Uplink, Mbps (`NaN` on a failed run).
    pub up_mbps: f64,
    /// Latency to the selected server, ms (`NaN` on a failed run).
    pub latency_ms: f64,
    /// Echo attempts the latency phase consumed (probe loss).
    pub attempts: u32,
    /// Channel quality during the test (`None` on a failed run — the test
    /// never got far enough to sample the channel).
    pub cqi: Option<Cqi>,
    /// How the measurement ended.
    pub status: MeasureStatus,
}

/// One traceroute record.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Context.
    pub tag: RecordTag,
    /// Target service.
    pub service: Service,
    /// Path decomposition.
    pub analysis: PathAnalysis,
    /// How the run ended (`timeout` when the walk never reached the
    /// target).
    pub status: MeasureStatus,
}

/// One CDN fetch record.
#[derive(Debug, Clone, Copy)]
pub struct CdnRecord {
    /// Context.
    pub tag: RecordTag,
    /// Provider fetched from.
    pub provider: CdnProvider,
    /// Total download time, ms (`NaN` on a failed run).
    pub total_ms: f64,
    /// DNS component, ms (`NaN` on a failed run).
    pub dns_ms: f64,
    /// Cache state at the edge.
    pub cache_hit: bool,
    /// How the fetch ended.
    pub status: MeasureStatus,
}

/// One DNS lookup record.
#[derive(Debug, Clone, Copy)]
pub struct DnsRecord {
    /// Context.
    pub tag: RecordTag,
    /// Lookup time, ms (`NaN` on a failed run).
    pub lookup_ms: f64,
    /// Echo attempts the resolver RTT phase consumed.
    pub attempts: u32,
    /// Resolver city (`None` when the lookup never got an answer).
    pub resolver_city: Option<City>,
    /// DoH in use?
    pub doh: bool,
    /// How the lookup ended.
    pub status: MeasureStatus,
}

/// One video playback record.
#[derive(Debug, Clone, Copy)]
pub struct VideoRecord {
    /// Context.
    pub tag: RecordTag,
    /// Resolution settled on (`None` when playback never started).
    pub resolution: Option<Resolution>,
    /// Buffer underrun?
    pub rebuffered: bool,
    /// How the session ended.
    pub status: MeasureStatus,
}

/// All records of a campaign (possibly many countries merged).
#[derive(Debug, Default, Clone)]
pub struct CampaignData {
    /// Speedtests.
    pub speedtests: Vec<SpeedtestRecord>,
    /// Traceroutes.
    pub traces: Vec<TraceRecord>,
    /// CDN fetches.
    pub cdns: Vec<CdnRecord>,
    /// DNS lookups.
    pub dns: Vec<DnsRecord>,
    /// Video sessions.
    pub videos: Vec<VideoRecord>,
}

impl CampaignData {
    /// Merge another campaign's records into this one.
    pub fn extend(&mut self, other: CampaignData) {
        self.speedtests.extend(other.speedtests);
        self.traces.extend(other.traces);
        self.cdns.extend(other.cdns);
        self.dns.extend(other.dns);
        self.videos.extend(other.videos);
    }

    /// Speedtests passing the paper's CQI ≥ 7 filter. Failed runs carry no
    /// CQI and are excluded along with the weak-channel samples.
    #[must_use]
    pub fn filtered_speedtests(&self) -> Vec<&SpeedtestRecord> {
        self.speedtests
            .iter()
            .filter(|r| r.cqi.is_some_and(|c| c.passes_quality_filter()))
            .collect()
    }

    /// Per-status record counts across every dataset: the degraded-run
    /// summary a campaign reports instead of aborting under faults.
    #[must_use]
    pub fn degradation(&self) -> DegradationSummary {
        let mut d = DegradationSummary::default();
        for r in &self.speedtests {
            d.count(r.status);
        }
        for r in &self.traces {
            d.count(r.status);
        }
        for r in &self.cdns {
            d.count(r.status);
        }
        for r in &self.dns {
            d.count(r.status);
        }
        for r in &self.videos {
            d.count(r.status);
        }
        d
    }

    /// Total records across every dataset.
    #[must_use]
    pub fn len(&self) -> usize {
        self.speedtests.len()
            + self.traces.len()
            + self.cdns.len()
            + self.dns.len()
            + self.videos.len()
    }

    /// No records at all?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-status record counts: how degraded a (possibly fault-injected)
/// run was. Additive — shard summaries merge by summing fields.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DegradationSummary {
    /// Records measured on the primary path.
    pub ok: u64,
    /// Records measured via a failover gateway.
    pub failover: u64,
    /// Explicit failure rows: every probe (and retry) lost.
    pub timeout: u64,
    /// Explicit failure rows: destination unroutable or silent.
    pub unreachable: u64,
}

impl DegradationSummary {
    fn count(&mut self, status: MeasureStatus) {
        match status {
            MeasureStatus::Ok => self.ok += 1,
            MeasureStatus::Failover => self.failover += 1,
            MeasureStatus::Timeout => self.timeout += 1,
            MeasureStatus::Unreachable => self.unreachable += 1,
        }
    }

    /// Records that produced no sample.
    #[must_use]
    pub fn failed(&self) -> u64 {
        self.timeout + self.unreachable
    }

    /// Records that touched the fault plane at all (failover or failed).
    #[must_use]
    pub fn degraded(&self) -> u64 {
        self.failover + self.failed()
    }

    /// Merge another shard's summary into this one.
    pub fn merge(&mut self, other: DegradationSummary) {
        self.ok += other.ok;
        self.failover += other.failover;
        self.timeout += other.timeout;
        self.unreachable += other.unreachable;
    }

    /// Write the summary's fields into `e` (roam-codec wire form; tags
    /// 1–4 = ok/failover/timeout/unreachable, see DESIGN.md §11).
    pub fn encode_fields(&self, e: &mut roam_codec::Encoder) {
        e.u64(1, self.ok);
        e.u64(2, self.failover);
        e.u64(3, self.timeout);
        e.u64(4, self.unreachable);
    }

    /// Rebuild a summary from fields written by
    /// [`DegradationSummary::encode_fields`]. Absent fields decode as 0
    /// (the summary is additive, so zero is the honest default) and
    /// unknown tags are skipped.
    pub fn decode_fields(d: &mut roam_codec::Decoder) -> Result<Self, roam_codec::CodecError> {
        let mut out = DegradationSummary::default();
        while let Some((tag, v)) = d.next_field()? {
            match tag {
                1 => out.ok = v.as_u64(tag)?,
                2 => out.failover = v.as_u64(tag)?,
                3 => out.timeout = v.as_u64(tag)?,
                4 => out.unreachable = v.as_u64(tag)?,
                _ => {}
            }
        }
        Ok(out)
    }
}

/// Per-country sample counts, `(physical SIM, eSIM)` — the Table 4 format.
#[derive(Debug, Clone, Copy)]
pub struct DeviceCampaignSpec {
    /// Ookla speedtests.
    pub ookla: (u32, u32),
    /// `mtr` runs per target service (Google, Facebook, YouTube each).
    pub mtr_per_target: (u32, u32),
    /// CDN fetches per provider (five providers each).
    pub cdn_per_provider: (u32, u32),
    /// DNS lookups.
    pub dns: (u32, u32),
    /// Video playbacks.
    pub video: (u32, u32),
}

impl DeviceCampaignSpec {
    /// A small, fast spec for tests and examples.
    #[must_use]
    pub fn smoke() -> Self {
        DeviceCampaignSpec {
            ookla: (3, 3),
            mtr_per_target: (3, 3),
            cdn_per_provider: (2, 2),
            dns: (3, 3),
            video: (2, 2),
        }
    }
}

/// The traceroute targets of the device campaign.
const MTR_TARGETS: [Service; 3] = [Service::Google, Service::Facebook, Service::YouTube];

/// One planned measurement of the device campaign. The repetition index is
/// part of the plan entry, so every measurement names its own flow and the
/// outcome is a function of the entry alone — not of how many measurements
/// ran before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedMeasurement {
    /// The `i`-th Ookla speedtest.
    Ookla(u32),
    /// The `i`-th `mtr` run toward a service.
    Mtr(Service, u32),
    /// The `i`-th fetch from a CDN provider.
    Cdn(CdnProvider, u32),
    /// The `i`-th DNS check.
    Dns(u32),
    /// The `i`-th video playback.
    Video(u32),
}

impl DeviceCampaignSpec {
    /// Expand the per-country counts into the ordered measurement plan for
    /// one endpoint (`sim` selects the physical-SIM or eSIM column).
    #[must_use]
    pub fn plan(&self, sim: SimType) -> Vec<PlannedMeasurement> {
        let pick = |c: (u32, u32)| match sim {
            SimType::Physical => c.0,
            SimType::Esim => c.1,
        };
        let mut plan = Vec::new();
        for i in 0..pick(self.ookla) {
            plan.push(PlannedMeasurement::Ookla(i));
        }
        for service in MTR_TARGETS {
            for i in 0..pick(self.mtr_per_target) {
                plan.push(PlannedMeasurement::Mtr(service, i));
            }
        }
        for provider in CdnProvider::ALL {
            for i in 0..pick(self.cdn_per_provider) {
                plan.push(PlannedMeasurement::Cdn(provider, i));
            }
        }
        for i in 0..pick(self.dns) {
            plan.push(PlannedMeasurement::Dns(i));
        }
        for i in 0..pick(self.video) {
            plan.push(PlannedMeasurement::Video(i));
        }
        plan
    }
}

/// Execute one planned measurement on `ep`, appending any record it
/// produces to `data`. Each entry runs on its own flow, so a plan may be
/// executed in any order — the records come out the same.
pub fn run_measurement(
    net: &mut Network,
    ep: &Endpoint,
    targets: &ServiceTargets,
    m: PlannedMeasurement,
    data: &mut CampaignData,
) {
    let tag = RecordTag::of(ep);
    let before = data.len();
    execute_measurement(net, ep, targets, m, data, tag);
    let emitted = (data.len() - before) as u64;
    let t = net.telemetry_mut();
    t.add(Counter::PlansExecuted, 1);
    t.add(Counter::RecordsEmitted, emitted);
    if t.wants_events() {
        t.push_event(Event {
            at_ns: 0,
            scope: EventScope::Shard(format!("{:?}/{:?}", tag.country, tag.sim_type)),
            kind: "plan",
            label: format!("{m:?}"),
            value: Some(emitted as f64),
            attempts: None,
        });
    }
}

/// Decide what a failed measurement leaves behind. With the fault plane
/// active, a network failure becomes an explicit record (status column,
/// `NaN` metrics) so degraded runs are auditable; [`MeasureError::NoTarget`]
/// — a gap in the scenario, not the network — stays a silent skip in both
/// modes, as does everything when faults are off, preserving the campaign's
/// byte-identical record stream.
fn failed_status(net: &mut Network, e: &MeasureError) -> Option<MeasureStatus> {
    if matches!(e, MeasureError::NoTarget) || !net.faults_enabled() {
        return None;
    }
    net.telemetry_mut().add(Counter::MeasurementsFailed, 1);
    Some(e.status())
}

fn execute_measurement(
    net: &mut Network,
    ep: &Endpoint,
    targets: &ServiceTargets,
    m: PlannedMeasurement,
    data: &mut CampaignData,
    tag: RecordTag,
) {
    match m {
        PlannedMeasurement::Ookla(i) => {
            match ookla_speedtest_checked(net, ep, targets, &format!("ookla/{i}")) {
                Ok(r) => data.speedtests.push(SpeedtestRecord {
                    tag,
                    down_mbps: r.down_mbps,
                    up_mbps: r.up_mbps,
                    latency_ms: r.latency_ms,
                    attempts: r.attempts,
                    cqi: Some(r.cqi),
                    status: r.status,
                }),
                Err(e) => {
                    if let Some(status) = failed_status(net, &e) {
                        data.speedtests.push(SpeedtestRecord {
                            tag,
                            down_mbps: f64::NAN,
                            up_mbps: f64::NAN,
                            latency_ms: f64::NAN,
                            attempts: e.attempts(),
                            cqi: None,
                            status,
                        });
                    }
                }
            }
        }
        PlannedMeasurement::Mtr(service, run) => {
            if let Ok(out) = mtr_run_checked(net, ep, targets, service, run) {
                let status = if out.analysis.reached {
                    MeasureStatus::Ok
                } else {
                    MeasureStatus::Timeout
                };
                data.traces.push(TraceRecord {
                    tag,
                    service,
                    analysis: out.analysis,
                    status,
                });
            }
        }
        PlannedMeasurement::Cdn(provider, i) => {
            let label = format!("cdn/{provider:?}/{i}");
            match fetch_jquery_checked(net, ep, targets, provider, CdnOptions::default(), &label) {
                Ok(r) => data.cdns.push(CdnRecord {
                    tag,
                    provider,
                    total_ms: r.total_ms,
                    dns_ms: r.dns_ms,
                    cache_hit: r.cache_hit,
                    status: r.status,
                }),
                Err(e) => {
                    if let Some(status) = failed_status(net, &e) {
                        data.cdns.push(CdnRecord {
                            tag,
                            provider,
                            total_ms: f64::NAN,
                            dns_ms: f64::NAN,
                            cache_hit: false,
                            status,
                        });
                    }
                }
            }
        }
        PlannedMeasurement::Dns(i) => {
            match resolve_checked(net, ep, targets, "test.nextdns.io", &format!("dns/{i}")) {
                Ok(r) => data.dns.push(DnsRecord {
                    tag,
                    lookup_ms: r.lookup_ms,
                    attempts: r.attempts,
                    resolver_city: Some(r.resolver_city),
                    doh: r.doh,
                    status: r.status,
                }),
                Err(e) => {
                    if let Some(status) = failed_status(net, &e) {
                        data.dns.push(DnsRecord {
                            tag,
                            lookup_ms: f64::NAN,
                            attempts: e.attempts(),
                            resolver_city: None,
                            doh: false,
                            status,
                        });
                    }
                }
            }
        }
        PlannedMeasurement::Video(i) => {
            match play_youtube_checked(net, ep, targets, &format!("video/{i}")) {
                Ok(r) => data.videos.push(VideoRecord {
                    tag,
                    resolution: Some(r.resolution),
                    rebuffered: r.rebuffered,
                    status: r.status,
                }),
                Err(e) => {
                    if let Some(status) = failed_status(net, &e) {
                        data.videos.push(VideoRecord {
                            tag,
                            resolution: None,
                            rebuffered: false,
                            status,
                        });
                    }
                }
            }
        }
    }
}

/// Run the full device campaign for one country: the given counts on the
/// physical-SIM endpoint and on the eSIM endpoint, alternating as the real
/// testbed did.
pub fn run_device_campaign(
    net: &mut Network,
    sim: &Endpoint,
    esim: &Endpoint,
    spec: &DeviceCampaignSpec,
    targets: &ServiceTargets,
) -> CampaignData {
    let mut data = CampaignData::default();
    for ep in [sim, esim] {
        for m in spec.plan(ep.sim_type) {
            run_measurement(net, ep, targets, m, &mut data);
        }
    }
    data
}

/// One completed web-campaign measurement: "the volunteer uploading their
/// current DNS configuration followed by the result of a fast.com speed
/// test" (§A.3).
#[derive(Debug, Clone, Copy)]
pub struct WebRecord {
    /// Country the volunteer measured from.
    pub country: Country,
    /// fast.com downlink, Mbps.
    pub down_mbps: f64,
    /// fast.com latency, ms.
    pub latency_ms: f64,
    /// Public IP the test saw (tomography input).
    pub public_ip: Ipv4Addr,
    /// Resolver the DNS check identified.
    pub resolver_city: City,
}

/// Run one web-campaign measurement on an (eSIM) endpoint as the flow
/// family named by `label`.
pub fn run_web_measurement(
    net: &mut Network,
    ep: &Endpoint,
    targets: &ServiceTargets,
    label: &str,
) -> Option<WebRecord> {
    let dns = resolve_checked(net, ep, targets, "test.nextdns.io", &format!("{label}/dns")).ok()?;
    let fast = fastcom_test(net, ep, targets, label)?;
    Some(WebRecord {
        country: ep.country,
        down_mbps: fast.down_mbps,
        latency_ms: fast.latency_ms,
        public_ip: fast.public_ip,
        resolver_city: dns.resolver_city,
    })
}
