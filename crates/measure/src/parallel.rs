//! Deterministic shard execution for campaign runs.
//!
//! The paper's campaigns are embarrassingly parallel across countries: each
//! country's measurements touch only that country's attachments. The shard
//! runner exploits that while keeping the simulator's core guarantee —
//! **bit-identical output for a given seed** — regardless of how many
//! worker threads execute the shards:
//!
//! 1. every shard derives its RNG seed from the master seed and a *stable
//!    shard key* (country + campaign kind), never from execution order;
//! 2. shards share no mutable state — each builds its own world from the
//!    master seed;
//! 3. results are merged in shard-key order, not completion order.
//!
//! With those three rules, [`RunMode::Sequential`] and
//! [`RunMode::Parallel`]`(n)` produce the same bytes for every `n`, so
//! parallelism is purely a wall-clock knob. Workers are plain
//! [`std::thread::scope`] threads — no third-party runtime.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How to execute a set of independent campaign shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Run shards one after another on the calling thread.
    Sequential,
    /// Run shards on up to `n` scoped worker threads. Output is
    /// bit-identical to [`RunMode::Sequential`] for any `n`.
    Parallel(usize),
}

impl RunMode {
    /// Worker count this mode will use for `shards` shards.
    #[must_use]
    pub fn workers(self, shards: usize) -> usize {
        match self {
            RunMode::Sequential => 1,
            RunMode::Parallel(n) => n.max(1).min(shards.max(1)),
        }
    }

    /// Read the mode from the `ROAM_PARALLEL` environment variable:
    /// unset, empty, `0` or `1` mean sequential; `auto` means one worker
    /// per available core; any other integer is the worker count.
    #[must_use]
    pub fn from_env() -> RunMode {
        match std::env::var("ROAM_PARALLEL") {
            Err(_) => RunMode::Sequential,
            Ok(v) => match v.trim() {
                "" | "0" | "1" => RunMode::Sequential,
                "auto" => RunMode::Parallel(
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
                ),
                other => match other.parse::<usize>() {
                    Ok(n) if n > 1 => RunMode::Parallel(n),
                    _ => RunMode::Sequential,
                },
            },
        }
    }
}

/// Derive a shard's RNG seed from the master seed and its stable key.
///
/// The key names *what* the shard measures (`"device/PAK"`,
/// `"web/DEU"`…), so adding, removing or reordering shards never changes
/// another shard's stream. Shard seeds and per-measurement flow seeds are
/// the same derivation — [`roam_netsim::engine::flow_seed`] — applied at
/// different granularities, so the whole campaign hangs off one master
/// seed through stable string keys.
#[must_use]
pub fn shard_seed(master: u64, key: &str) -> u64 {
    roam_netsim::engine::flow_seed(master, key)
}

/// Run `count` independent shards and return their results in shard order.
///
/// `f(i)` must be a pure function of the shard index (plus captured
/// immutable state): it is called exactly once per index, possibly from a
/// worker thread. Results come back as `vec![f(0), f(1), …]` no matter
/// which worker finished first, which is what makes parallel runs
/// bit-identical to sequential ones.
///
/// # Panics
/// Propagates a panic from any shard.
pub fn run_shards<T, F>(mode: RunMode, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = mode.workers(count);
    if workers <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    // Work-stealing by atomic counter: threads grab the next unclaimed
    // shard, so a slow country does not stall the queue behind it.
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_seed_is_stable_and_key_sensitive() {
        assert_eq!(shard_seed(7, "device/PAK"), shard_seed(7, "device/PAK"));
        assert_ne!(shard_seed(7, "device/PAK"), shard_seed(7, "device/DEU"));
        assert_ne!(shard_seed(7, "device/PAK"), shard_seed(8, "device/PAK"));
        assert_ne!(shard_seed(7, "web/PAK"), shard_seed(7, "device/PAK"));
    }

    #[test]
    fn shard_seed_spreads_adjacent_masters() {
        // SplitMix finalisation: consecutive master seeds must not yield
        // consecutive shard seeds.
        let a = shard_seed(1, "x");
        let b = shard_seed(2, "x");
        assert!(a.abs_diff(b) > 1 << 32, "{a} vs {b}");
    }

    #[test]
    fn sequential_and_parallel_agree_in_order() {
        let work = |i: usize| {
            // Uneven workloads so completion order differs from index order.
            let spin = (13 * (i % 7)) % 5;
            let mut acc = i as u64;
            for _ in 0..spin * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        };
        let seq = run_shards(RunMode::Sequential, 25, work);
        for n in [2, 4, 16, 64] {
            assert_eq!(run_shards(RunMode::Parallel(n), 25, work), seq, "n={n}");
        }
    }

    #[test]
    fn zero_and_one_shard_edge_cases() {
        assert!(run_shards(RunMode::Parallel(8), 0, |i| i).is_empty());
        assert_eq!(run_shards(RunMode::Parallel(8), 1, |i| i), vec![0]);
    }

    #[test]
    fn workers_clamp_to_shard_count() {
        assert_eq!(RunMode::Parallel(64).workers(3), 3);
        assert_eq!(RunMode::Parallel(0).workers(3), 1);
        assert_eq!(RunMode::Sequential.workers(100), 1);
    }
}
