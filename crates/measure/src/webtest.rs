//! The web campaign's fast.com-style speedtest (§3.1, Fig. 13 a).
//!
//! fast.com measures downlink against Netflix edge servers; like every
//! CDN-backed speedtest, server selection follows the client's public-IP
//! geolocation (the breakout site for roaming eSIMs). The web campaign ran
//! inside a browser, so the test includes TLS setup and has no uplink
//! phase; it also records the public IP the server saw — the input to the
//! tomography classification.

use crate::endpoint::Endpoint;
use crate::error::{MeasureError, MeasureStatus};
use crate::targets::{Service, ServiceTargets};
use roam_geo::City;
use roam_netsim::throughput::TransferSpec;
use roam_netsim::Network;
use std::net::Ipv4Addr;

/// Bytes fetched by the browser-based test.
const TEST_BYTES: f64 = 25e6;

/// One fast.com-style measurement.
#[derive(Debug, Clone, Copy)]
pub struct WebTestResult {
    /// Downlink goodput, Mbps.
    pub down_mbps: f64,
    /// Latency shown by the widget, ms.
    pub latency_ms: f64,
    /// Server location.
    pub server_city: City,
    /// Public IP the server observed (classification input).
    pub public_ip: Ipv4Addr,
    /// How the test ended (ok, or ok-via-failover).
    pub status: MeasureStatus,
}

/// Run the browser speedtest as the flow named by `label`. `None` when no
/// server is reachable.
pub fn fastcom_test(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    label: &str,
) -> Option<WebTestResult> {
    fastcom_test_checked(net, endpoint, targets, label).ok()
}

/// [`fastcom_test`] with typed failure semantics: a missing Netflix edge
/// is [`MeasureError::NoTarget`]; a dead path surfaces the probe's error.
///
/// # Errors
/// Propagates [`crate::endpoint::Probe::rtt_checked`] failures.
pub fn fastcom_test_checked(
    net: &mut Network,
    endpoint: &Endpoint,
    targets: &ServiceTargets,
    label: &str,
) -> Result<WebTestResult, MeasureError> {
    let server = targets
        .nearest(net, Service::FastCom, endpoint.att.breakout_city)
        .ok_or(MeasureError::NoTarget)?;
    let mut probe = endpoint.probe(net, label);
    let latency = probe.rtt_checked(server)?;
    let cqi = endpoint.channel.sample(probe.rng());
    let down = probe.goodput_mbps(&TransferSpec {
        bytes: TEST_BYTES,
        rtt_ms: latency.rtt_ms,
        policy_rate_mbps: endpoint.effective_down_mbps(cqi),
        loss: endpoint.loss,
        setup_rtts: 3.0, // TCP + TLS from a cold browser context
        parallel: 6,     // fast.com's parallel object fetches
    });
    Ok(WebTestResult {
        down_mbps: down,
        latency_ms: latency.rtt_ms,
        server_city: net.node(server).city,
        public_ip: endpoint.att.public_ip,
        status: latency.status(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roam_cellular::{ChannelSampler, MnoId, Rat, SimType};
    use roam_geo::Country;
    use roam_ipx::{Attachment, DnsMode, PgwProviderId, RoamingArch};
    use roam_netsim::link::{LatencyModel, LinkClass};
    use roam_netsim::NodeKind;

    fn world() -> (Network, Endpoint, ServiceTargets) {
        let mut net = Network::new(11);
        let ue = net.add_node(
            "ue",
            NodeKind::Host,
            City::Paris,
            "10.0.0.2".parse().unwrap(),
        );
        let nat = net.add_node(
            "nat",
            NodeKind::CgNat,
            City::Ashburn,
            "147.28.128.9".parse().unwrap(),
        );
        net.link_with(
            ue,
            nat,
            LinkClass::Tunnel,
            LatencyModel::fixed(55.0, 1.0),
            0.0,
        );
        let nfx = net.add_node(
            "nflx-iad",
            NodeKind::SpEdge,
            City::Ashburn,
            "45.57.1.1".parse().unwrap(),
        );
        net.link_with(
            nat,
            nfx,
            LinkClass::Peering,
            LatencyModel::fixed(1.0, 0.2),
            0.0,
        );
        let mut targets = ServiceTargets::new();
        targets.add(Service::FastCom, nfx);
        let ep = Endpoint {
            att: Attachment {
                ue,
                ran: ue,
                sgw: ue,
                cgnat: nat,
                public_ip: "147.28.128.9".parse().unwrap(),
                arch: RoamingArch::IpxHubBreakout,
                provider: PgwProviderId(0),
                breakout_city: City::Ashburn,
                tunnel_km: 6200.0,
                dns: DnsMode::GooglePublic { doh: true },
                teid: 3,
                v_mno: MnoId(0),
                b_mno: MnoId(1),
                rat: Rat::Lte,
                private_hops: 8,
                flow_stamp: 0xFA57,
            },
            sim_type: SimType::Esim,
            country: Country::FRA,
            label: "FRA eSIM".into(),
            policy_down_mbps: 30.0,
            policy_up_mbps: 10.0,
            youtube_cap_mbps: None,
            loss: 0.0005,
            channel: ChannelSampler {
                mode_cqi: 12,
                weak_tail: 0.0,
            },
        };
        (net, ep, targets)
    }

    #[test]
    fn records_public_ip_and_breakout_server() {
        let (mut net, ep, targets) = world();
        let r = fastcom_test(&mut net, &ep, &targets, "web/0").unwrap();
        assert_eq!(
            r.server_city,
            City::Ashburn,
            "France eSIM broke out in Virginia"
        );
        assert_eq!(r.public_ip, "147.28.128.9".parse::<Ipv4Addr>().unwrap());
        assert!(
            r.latency_ms > 100.0,
            "transatlantic tunnel RTT: {}",
            r.latency_ms
        );
        assert!(
            r.down_mbps > 1.0 && r.down_mbps < 30.0,
            "goodput {}",
            r.down_mbps
        );
    }

    #[test]
    fn no_server_gives_none() {
        let (mut net, ep, _) = world();
        assert!(fastcom_test(&mut net, &ep, &ServiceTargets::new(), "web/0").is_none());
    }
}
