//! The columnar/CSV equivalence contract: for every dataset, rows pushed
//! through a [`ColumnarSink`] must re-render the exact bytes the CSV
//! export produces — and survive a seal/parse round trip through a
//! `roam-codec` frame unchanged. This covers the awkward cases the CSV
//! dialect pins down: non-finite floats (null in pages, empty fields in
//! CSV), failed rows with empty metrics, and free-text dictionary labels
//! that need quoting.

use proptest::prelude::*;
use roam_cellular::{Cqi, Rat, SimType};
use roam_columnar::{
    csv_header, field, push_csv_field, render_csv, CellValue, ColKind, Query, Schema, Table,
    TableBuilder, TableView,
};
use roam_geo::{City, Country};
use roam_ipx::RoamingArch;
use roam_measure::campaign::{CampaignData, DnsRecord, RecordTag, SpeedtestRecord};
use roam_measure::voip::VoipResult;
use roam_measure::{Dataset, Exporter, MeasureStatus, VoipRecord};

/// Any float a measurement could plausibly report — finite values plus
/// the non-finite ones dead paths produce.
fn arb_metric() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e6f64..1e6,
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
    ]
}

/// Every status a row can carry, failed ones included.
fn arb_status() -> impl Strategy<Value = MeasureStatus> {
    prop_oneof![
        Just(MeasureStatus::Ok),
        Just(MeasureStatus::Failover),
        Just(MeasureStatus::Timeout),
        Just(MeasureStatus::Unreachable),
    ]
}

fn arb_tag() -> impl Strategy<Value = RecordTag> {
    (
        prop_oneof![Just(Country::PAK), Just(Country::USA), Just(Country::DEU)],
        prop_oneof![Just(SimType::Physical), Just(SimType::Esim)],
        prop_oneof![
            Just(RoamingArch::Native),
            Just(RoamingArch::HomeRouted),
            Just(RoamingArch::LocalBreakout),
            Just(RoamingArch::IpxHubBreakout),
        ],
        prop_oneof![Just(Rat::Lte), Just(Rat::Nr5g)],
    )
        .prop_map(|(country, sim_type, arch, rat)| RecordTag {
            country,
            sim_type,
            arch,
            rat,
        })
}

fn arb_speedtest() -> impl Strategy<Value = SpeedtestRecord> {
    (
        arb_tag(),
        arb_metric(),
        arb_metric(),
        arb_metric(),
        1u32..5,
        (
            prop_oneof![Just(None), (1u8..=15).prop_map(Some)],
            arb_status(),
        ),
    )
        .prop_map(
            |(tag, down_mbps, up_mbps, latency_ms, attempts, (cqi, status))| SpeedtestRecord {
                tag,
                down_mbps,
                up_mbps,
                latency_ms,
                attempts,
                cqi: cqi.map(Cqi::new),
                status,
            },
        )
}

fn arb_dns() -> impl Strategy<Value = DnsRecord> {
    (
        arb_tag(),
        arb_metric(),
        1u32..4,
        any::<bool>(),
        prop_oneof![Just(None), Just(Some(City::Singapore))],
        arb_status(),
    )
        .prop_map(
            |(tag, lookup_ms, attempts, doh, resolver_city, status)| DnsRecord {
                tag,
                lookup_ms,
                attempts,
                resolver_city,
                doh,
                status,
            },
        )
}

fn arb_voip() -> impl Strategy<Value = VoipRecord> {
    (
        arb_tag(),
        arb_metric(),
        arb_metric(),
        arb_metric(),
        arb_metric(),
        (arb_metric(), arb_status()),
    )
        .prop_map(
            |(tag, rtt_ms, jitter_ms, loss, r_factor, (mos, status))| VoipRecord {
                tag,
                result: VoipResult {
                    rtt_ms,
                    jitter_ms,
                    loss,
                    r_factor,
                    mos,
                },
                status,
            },
        )
}

/// The columnar table's CSV rendering (header + pages), plus the same
/// after a seal/parse round trip — both must equal `expected_csv`.
fn assert_table_matches(table: &Table, expected_csv: &str) {
    let mut direct = csv_header(table);
    render_csv(table, &mut direct);
    assert_eq!(&direct, expected_csv, "owned table render diverged");

    let frame = table.to_frame();
    let view = TableView::parse_frame(&frame).expect("sealed frame parses");
    let mut round = csv_header(&view);
    render_csv(&view, &mut round);
    assert_eq!(&round, expected_csv, "frame round trip diverged");
}

proptest! {
    #[test]
    fn columnar_speedtests_equal_csv(
        records in proptest::collection::vec(arb_speedtest(), 0..40),
    ) {
        let whole = CampaignData {
            speedtests: records,
            ..CampaignData::default()
        };
        let csv = whole.export(Dataset::Speedtests);
        let tables = whole.export_tables();
        let (_, table) = tables
            .iter()
            .find(|(ds, _)| *ds == Dataset::Speedtests)
            .expect("export_tables registers every held dataset");
        assert_table_matches(table, &csv);
        prop_assert!(!csv.contains("inf") && !csv.contains("NaN"));
    }

    #[test]
    fn columnar_dns_equals_csv(
        records in proptest::collection::vec(arb_dns(), 0..40),
    ) {
        let whole = CampaignData {
            dns: records,
            ..CampaignData::default()
        };
        let csv = whole.export(Dataset::Dns);
        let tables = whole.export_tables();
        let (_, table) = tables
            .iter()
            .find(|(ds, _)| *ds == Dataset::Dns)
            .expect("export_tables registers every held dataset");
        assert_table_matches(table, &csv);
    }

    #[test]
    fn columnar_voip_equals_csv(
        records in proptest::collection::vec(arb_voip(), 0..40),
    ) {
        let csv = records[..].export(Dataset::Voip);
        let tables = records[..].export_tables();
        let (_, table) = tables
            .iter()
            .find(|(ds, _)| *ds == Dataset::Voip)
            .expect("slice exporters hold exactly the voip dataset");
        assert_table_matches(table, &csv);

        // Rows stay rectangular even when every metric goes empty.
        let cols = Dataset::Voip.header().split(',').count();
        let mut rendered = csv_header(table);
        render_csv(table, &mut rendered);
        for line in rendered.lines().skip(1) {
            prop_assert_eq!(line.split(',').count(), cols, "ragged: {}", line);
        }
    }

    /// Free-text dictionary labels — commas, quotes, repeats, nulls —
    /// must round-trip through dict pages and render with the exact
    /// quoting the row-streaming CSV sink uses.
    #[test]
    fn dict_free_text_round_trips(
        cities in proptest::collection::vec(
            prop_oneof![Just(None), "[a-z ,\"]{0,12}".prop_map(Some)],
            0..50,
        ),
    ) {
        let mut b = TableBuilder::new(Schema::new(vec![field("city", ColKind::Dict)]));
        for c in &cities {
            b.push_row(&[CellValue::Str(c.as_deref())]);
        }
        let table = b.finish();

        let mut expected = String::from("city\n");
        for c in &cities {
            if let Some(s) = c {
                push_csv_field(&mut expected, s);
            }
            expected.push('\n');
        }
        assert_table_matches(&table, &expected);

        // The query engine hands the original strings back, row for row.
        let frame = table.to_frame();
        let view = TableView::parse_frame(&frame).expect("sealed frame parses");
        let labels = Query::new(&view).labels("city");
        prop_assert_eq!(
            labels,
            cities.iter().map(Option::as_deref).collect::<Vec<_>>()
        );
    }
}

/// Schema and CSV header are two views of the same declaration: the
/// header's column names must equal the schema's field names, in order,
/// for every dataset — and stay stable across releases (the artifact
/// directories depend on them).
#[test]
fn schema_and_header_agree_for_every_dataset() {
    for ds in Dataset::ALL {
        let names: Vec<&str> = ds
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(
            ds.header().split(',').collect::<Vec<_>>(),
            names,
            "{ds:?}: header/schema drift"
        );
        assert_eq!(ds.header_csv(), format!("{}\n", ds.header()), "{ds:?}");

        // Every dataset carries the four context columns up front and a
        // trailing status enum.
        assert_eq!(&names[..4], &["country", "sim", "arch", "rat"], "{ds:?}");
        assert_eq!(names.last(), Some(&"status"), "{ds:?}");
        match &ds.schema().fields().last().expect("non-empty").kind {
            ColKind::Enum(labels) => {
                assert_eq!(
                    labels,
                    &["ok", "failover", "timeout", "unreachable"],
                    "{ds:?}"
                )
            }
            other => panic!("{ds:?}: status column is {other:?}, not an enum"),
        }
    }
}
