//! Property tests for the degradation summary's wire form: the fold that
//! tells a degraded run from a healthy one must survive checkpoint files
//! and worker pipes exactly, and decoded shard summaries must merge like
//! the in-memory originals (including the all-zero empty summary).

use proptest::prelude::*;
use roam_codec::{Decoder, Encoder};
use roam_measure::DegradationSummary;

fn arb_summary() -> impl Strategy<Value = DegradationSummary> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
    )
        .prop_map(|(ok, failover, timeout, unreachable)| DegradationSummary {
            ok,
            failover,
            timeout,
            unreachable,
        })
}

fn round_trip(s: &DegradationSummary) -> DegradationSummary {
    let mut e = Encoder::new();
    s.encode_fields(&mut e);
    let bytes = e.into_bytes();
    DegradationSummary::decode_fields(&mut Decoder::new(&bytes)).expect("clean round trip")
}

proptest! {
    #[test]
    fn summary_round_trip_is_identity(s in arb_summary()) {
        prop_assert_eq!(round_trip(&s), s);
    }

    #[test]
    fn decoded_summaries_merge_like_in_memory_ones(a in arb_summary(), b in arb_summary()) {
        let mut mem = a;
        mem.merge(b);
        let mut wire = round_trip(&a);
        wire.merge(round_trip(&b));
        prop_assert_eq!(wire, mem);
        // The empty summary is the merge identity on both sides of the
        // wire.
        let empty = round_trip(&DegradationSummary::default());
        let mut with_empty = wire;
        with_empty.merge(empty);
        prop_assert_eq!(with_empty, mem);
    }
}
