//! The streamed/buffered export equivalence: `Dataset::header_csv()` plus
//! record-at-a-time `export_rows` calls must render the exact bytes that
//! the buffered `export` produces for the same records — for *any* float
//! payload, including the `inf`/`NaN` values a dead path can report. This
//! is the contract the fleet path relies on when it emits tables in
//! chunks instead of materialising them.

use proptest::prelude::*;
use roam_cellular::{Cqi, Rat, SimType};
use roam_geo::{City, Country};
use roam_ipx::RoamingArch;
use roam_measure::campaign::{CampaignData, DnsRecord, RecordTag, SpeedtestRecord};
use roam_measure::voip::VoipResult;
use roam_measure::{Dataset, Exporter, MeasureStatus, VoipRecord};

/// Any float a measurement could plausibly report — finite values plus
/// the non-finite ones dead paths produce.
fn arb_metric() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e6f64..1e6,
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
    ]
}

/// Every status a row can carry, failed ones included — failed rows must
/// round-trip through both export paths byte-for-byte.
fn arb_status() -> impl Strategy<Value = MeasureStatus> {
    prop_oneof![
        Just(MeasureStatus::Ok),
        Just(MeasureStatus::Failover),
        Just(MeasureStatus::Timeout),
        Just(MeasureStatus::Unreachable),
    ]
}

fn arb_tag() -> impl Strategy<Value = RecordTag> {
    (
        prop_oneof![Just(Country::PAK), Just(Country::USA), Just(Country::DEU)],
        prop_oneof![Just(SimType::Physical), Just(SimType::Esim)],
        prop_oneof![
            Just(RoamingArch::Native),
            Just(RoamingArch::HomeRouted),
            Just(RoamingArch::LocalBreakout),
            Just(RoamingArch::IpxHubBreakout),
        ],
        prop_oneof![Just(Rat::Lte), Just(Rat::Nr5g)],
    )
        .prop_map(|(country, sim_type, arch, rat)| RecordTag {
            country,
            sim_type,
            arch,
            rat,
        })
}

fn arb_speedtest() -> impl Strategy<Value = SpeedtestRecord> {
    (
        arb_tag(),
        arb_metric(),
        arb_metric(),
        arb_metric(),
        1u32..5,
        (
            prop_oneof![Just(None), (1u8..=15).prop_map(Some)],
            arb_status(),
        ),
    )
        .prop_map(
            |(tag, down_mbps, up_mbps, latency_ms, attempts, (cqi, status))| SpeedtestRecord {
                tag,
                down_mbps,
                up_mbps,
                latency_ms,
                attempts,
                cqi: cqi.map(Cqi::new),
                status,
            },
        )
}

fn arb_dns() -> impl Strategy<Value = DnsRecord> {
    (
        arb_tag(),
        arb_metric(),
        1u32..4,
        any::<bool>(),
        prop_oneof![Just(None), Just(Some(City::Singapore))],
        arb_status(),
    )
        .prop_map(
            |(tag, lookup_ms, attempts, doh, resolver_city, status)| DnsRecord {
                tag,
                lookup_ms,
                attempts,
                resolver_city,
                doh,
                status,
            },
        )
}

fn arb_voip() -> impl Strategy<Value = VoipRecord> {
    (
        arb_tag(),
        arb_metric(),
        arb_metric(),
        arb_metric(),
        arb_metric(),
        (arb_metric(), arb_status()),
    )
        .prop_map(
            |(tag, rtt_ms, jitter_ms, loss, r_factor, (mos, status))| VoipRecord {
                tag,
                result: VoipResult {
                    rtt_ms,
                    jitter_ms,
                    loss,
                    r_factor,
                    mos,
                },
                status,
            },
        )
}

proptest! {
    #[test]
    fn streamed_speedtest_export_matches_buffered(
        records in proptest::collection::vec(arb_speedtest(), 0..40),
    ) {
        let whole = CampaignData {
            speedtests: records.clone(),
            ..CampaignData::default()
        };
        let buffered = whole.export(Dataset::Speedtests);

        // Stream: header once, then one export_rows call per record.
        let mut streamed = Dataset::Speedtests.header_csv();
        for r in records {
            let mut one = CampaignData::default();
            one.speedtests.push(r);
            one.export_rows(Dataset::Speedtests, &mut streamed);
        }
        prop_assert_eq!(&buffered, &streamed);
        prop_assert!(!buffered.contains("inf"), "inf leaked: {}", buffered);
        prop_assert!(!buffered.contains("NaN"), "NaN leaked: {}", buffered);
    }

    #[test]
    fn streamed_dns_export_matches_buffered(
        records in proptest::collection::vec(arb_dns(), 0..40),
    ) {
        let whole = CampaignData {
            dns: records.clone(),
            ..CampaignData::default()
        };
        let buffered = whole.export(Dataset::Dns);

        let mut streamed = Dataset::Dns.header_csv();
        for r in records {
            let mut one = CampaignData::default();
            one.dns.push(r);
            one.export_rows(Dataset::Dns, &mut streamed);
        }
        prop_assert_eq!(&buffered, &streamed);
        prop_assert!(!buffered.contains("inf") && !buffered.contains("NaN"));
    }

    #[test]
    fn streamed_voip_export_matches_buffered(
        records in proptest::collection::vec(arb_voip(), 0..40),
    ) {
        let buffered = records[..].export(Dataset::Voip);

        let mut streamed = Dataset::Voip.header_csv();
        for r in &records {
            [*r].export_rows(Dataset::Voip, &mut streamed);
        }
        prop_assert_eq!(&buffered, &streamed);
        prop_assert!(!buffered.contains("inf"), "inf leaked: {}", buffered);
        prop_assert!(!buffered.contains("NaN"), "NaN leaked: {}", buffered);

        // Rows stay rectangular even when fields go empty.
        let cols = Dataset::Voip.header().split(',').count();
        for line in buffered.lines() {
            prop_assert_eq!(line.split(',').count(), cols, "ragged: {}", line);
        }
    }

    #[test]
    fn unheld_datasets_stream_nothing(records in proptest::collection::vec(arb_voip(), 1..5)) {
        // A container asked for a dataset it does not hold appends nothing
        // when streaming and yields a bare header when buffered.
        let mut out = String::new();
        records[..].export_rows(Dataset::Speedtests, &mut out);
        prop_assert!(out.is_empty());
        prop_assert_eq!(
            records[..].export(Dataset::Speedtests),
            Dataset::Speedtests.header_csv()
        );
    }
}
