//! Fault injection: the methodology must stay sound when the network is
//! hostile — lossy radio links, silent CG-NATs, dead services. This is the
//! smoltcp discipline: adverse conditions are part of the test matrix, not
//! an afterthought.

use roamsim::core::analyze_traceroute;
use roamsim::geo::{City, Country};
use roamsim::measure::{mtr, ookla_speedtest, Service};
use roamsim::netsim::link::{LatencyModel, LinkClass};
use roamsim::netsim::{Network, NodeKind, TracerouteOpts};
use roamsim::world::World;

#[test]
fn demarcation_survives_heavy_probe_loss() {
    let mut net = Network::new(77);
    let h = net.add_node(
        "h",
        NodeKind::Host,
        City::Berlin,
        "10.0.0.2".parse().unwrap(),
    );
    let r = net.add_node(
        "r",
        NodeKind::Router,
        City::Berlin,
        "10.0.0.1".parse().unwrap(),
    );
    let nat = net.add_node(
        "nat",
        NodeKind::CgNat,
        City::Amsterdam,
        "147.75.81.1".parse().unwrap(),
    );
    let sp = net.add_node(
        "sp",
        NodeKind::SpEdge,
        City::Amsterdam,
        "142.250.0.1".parse().unwrap(),
    );
    let lossy = net.link_with(
        h,
        r,
        LinkClass::RadioAccess,
        LatencyModel::fixed(12.0, 3.0),
        0.0,
    );
    net.link_with(
        r,
        nat,
        LinkClass::Tunnel,
        LatencyModel::fixed(8.0, 2.0),
        0.0,
    );
    net.link_with(
        nat,
        sp,
        LinkClass::Peering,
        LatencyModel::fixed(1.0, 0.5),
        0.0,
    );
    net.set_link_loss(lossy, 0.3);

    let tr = net.traceroute(
        h,
        sp,
        TracerouteOpts {
            max_ttl: 10,
            probes_per_hop: 10,
        },
    );
    let pa = analyze_traceroute(&tr, net.registry());
    assert!(pa.reached, "30% loss with 10 probes/hop still completes");
    assert_eq!(pa.private_len, 1);
    assert_eq!(pa.pgw_ip, Some("147.75.81.1".parse().unwrap()));
}

#[test]
fn silent_cgnat_degrades_gracefully() {
    // The Qatari gateway is ICMP-silent in the calibrated world; the
    // physical SIM's traceroutes must still complete and classify.
    let mut world = World::build(78);
    let sim = world.attach_physical(Country::QAT);
    let out = mtr(
        &mut world.net,
        &sim,
        &world.internet.targets,
        Service::Facebook,
    )
    .expect("Facebook edge exists");
    assert!(out.analysis.reached, "silent hop must not kill the trace");
    // The demarcation shifts past the silent CG-NAT: the first *responding*
    // public hop belongs to the SP, so fewer unique ASNs are seen — exactly
    // the Fig. 6 anomaly ("only the SP's ASN … CG-NAT failing to respond").
    assert!(out.analysis.unique_public_asns <= 2);
    assert!(
        out.analysis.private_len >= 3,
        "silent hops count as private"
    );
}

#[test]
fn lossy_access_reduces_goodput_not_correctness() {
    let mut world = World::build(79);
    let ep = world.attach_esim(Country::PAK); // Jazz: loss-prone access
    let mut got = 0;
    for i in 0..10 {
        if let Some(r) = ookla_speedtest(
            &mut world.net,
            &ep,
            &world.internet.targets,
            &format!("ft/{i}"),
        ) {
            assert!(r.down_mbps > 0.0 && r.down_mbps < 50.0);
            assert!(r.latency_ms > 100.0, "HR latency survives loss");
            got += 1;
        }
    }
    assert!(got >= 8, "retries absorb sporadic loss: {got}/10");
}

#[test]
fn unreachable_service_returns_none_not_panic() {
    let mut world = World::build(80);
    let ep = world.attach_esim(Country::DEU);
    // A service with no nodes registered anywhere.
    let empty = roamsim::measure::ServiceTargets::new();
    assert!(mtr(&mut world.net, &ep, &empty, Service::Google).is_none());
    assert!(ookla_speedtest(&mut world.net, &ep, &empty, "ft/0").is_none());
}

#[test]
fn total_blackout_on_radio_link_fails_cleanly() {
    let mut net = Network::new(81);
    let a = net.add_node(
        "a",
        NodeKind::Host,
        City::Paris,
        "10.0.0.1".parse().unwrap(),
    );
    let b = net.add_node(
        "b",
        NodeKind::SpEdge,
        City::Paris,
        "1.1.1.1".parse().unwrap(),
    );
    let l = net.link_with(
        a,
        b,
        LinkClass::RadioAccess,
        LatencyModel::fixed(10.0, 1.0),
        0.0,
    );
    net.set_link_loss(l, 1.0);
    assert!(net.ping(a, b).is_none());
    assert!(
        net.rtt_ms(a, b).is_none(),
        "all retries fail under 100% loss"
    );
    let tr = net.traceroute(a, b, TracerouteOpts::default());
    assert!(!tr.reached);
    assert!(tr.hops.iter().all(|h| !h.responded()));
}
