//! The telemetry plane's determinism contract: the rendered summary and
//! the JSONL event stream are *byte-identical* across worker counts and
//! across both transport backends. Worker count cannot matter because
//! shards record locally and merge in shard-key order; the transport
//! cannot matter because only transport-independent observables (packet
//! walks, probe RTTs, attempt counts, byte counts) enter the plane —
//! transfer durations, where the backends differ in the low bits, never
//! do.

use roam_bench::CampaignRunner;
use roamsim::netsim::TransportKind;
use roamsim::telemetry::TelemetryMode;

const SEED: u64 = 17;

const MATRIX: [(usize, TransportKind); 4] = [
    (1, TransportKind::ClosedForm),
    (4, TransportKind::ClosedForm),
    (1, TransportKind::Engine),
    (4, TransportKind::Engine),
];

#[test]
fn telemetry_bytes_survive_workers_and_transports() {
    let mut device = Vec::new();
    let mut survey = Vec::new();
    for (workers, transport) in MATRIX {
        let run = CampaignRunner::new(SEED)
            .scale(0.02)
            .parallel(workers)
            .transport(transport)
            .telemetry(TelemetryMode::Jsonl)
            .run();
        device.push((workers, transport, run.telemetry.render()));

        // The Table-2 shape: the eSIM survey across every measured country.
        let s = CampaignRunner::new(SEED)
            .parallel(workers)
            .transport(transport)
            .telemetry(TelemetryMode::Jsonl)
            .run_survey(6);
        survey.push((workers, transport, s.telemetry.render()));
    }

    let (_, _, device_base) = &device[0];
    // Not trivially empty: the stream carries flow events and the summary
    // carries non-zero counters.
    assert!(device_base.contains("\"ev\":\"rtt\""));
    assert!(device_base.contains("\"ev\":\"plan\""));
    assert!(device_base.contains("\"ev\":\"shard\""));
    assert!(device_base.contains("packets_sent"));
    for (workers, transport, render) in &device[1..] {
        assert_eq!(
            device_base, render,
            "device-campaign telemetry diverged at workers={workers}, {transport:?}"
        );
    }

    let (_, _, survey_base) = &survey[0];
    assert!(survey_base.contains("shards_merged"));
    for (workers, transport, render) in &survey[1..] {
        assert_eq!(
            survey_base, render,
            "survey telemetry diverged at workers={workers}, {transport:?}"
        );
    }
}

#[test]
fn summary_mode_is_equally_stable_and_keeps_no_events() {
    let a = CampaignRunner::new(SEED)
        .scale(0.02)
        .telemetry(TelemetryMode::Summary)
        .run();
    let b = CampaignRunner::new(SEED)
        .scale(0.02)
        .parallel(4)
        .transport(TransportKind::Engine)
        .telemetry(TelemetryMode::Summary)
        .run();
    assert_eq!(a.telemetry.render(), b.telemetry.render());
    assert!(a
        .telemetry
        .render()
        .starts_with("== roam-telemetry summary"));
    assert!(a.telemetry.events().is_empty(), "summary keeps no events");
}
