//! Integration: the AmiGo-style testbed drives the device campaign the way
//! §3.2 describes — MEs poll a control server, alternate SIM slots, report
//! vitals, and hit the operational frictions (battery, Ookla rate limits)
//! that shaped Table 4's counts.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use roamsim::cellular::SimType;
use roamsim::geo::Country;
use roamsim::measure::{
    CampaignData, ControlServer, Instrumentation, MeasurementEndpoint, SkipReason,
};
use roamsim::world::World;

fn setup(seed: u64, ookla_limit: u32) -> (World, MeasurementEndpoint, ControlServer) {
    let mut world = World::build(seed);
    let sim = world.attach_physical(Country::PAK);
    let esim = world.attach_esim(Country::PAK);
    let me = MeasurementEndpoint::new(1, sim, esim);
    let server = ControlServer::new(ookla_limit);
    (world, me, server)
}

#[test]
fn day_plan_produces_records_on_both_slots() {
    let (mut world, mut me, mut server) = setup(21, 100);
    let mut rng = SmallRng::seed_from_u64(21);
    let mut data = CampaignData::default();
    server.push_day_plan(me.id, 2);
    me.run_to_completion(
        &mut server,
        &mut world.net,
        &world.internet.targets,
        &mut data,
        &mut rng,
    );

    for t in [SimType::Physical, SimType::Esim] {
        assert_eq!(
            data.speedtests
                .iter()
                .filter(|r| r.tag.sim_type == t)
                .count(),
            2,
            "{t:?} speedtests"
        );
        assert_eq!(
            data.traces.iter().filter(|r| r.tag.sim_type == t).count(),
            6
        );
        assert_eq!(data.cdns.iter().filter(|r| r.tag.sim_type == t).count(), 10);
        assert_eq!(data.dns.iter().filter(|r| r.tag.sim_type == t).count(), 2);
        assert_eq!(
            data.videos.iter().filter(|r| r.tag.sim_type == t).count(),
            2
        );
    }
    // Vitals were reported along the way.
    let v = server.vitals_of(me.id).expect("status posted");
    assert!(v.connected);
    assert!((1..=15).contains(&v.cqi));
    // The day plan ends with a charge instruction.
    assert!(
        (99.0..=100.0).contains(&me.battery()) || me.battery() > 90.0,
        "charged at end of plan: {}",
        me.battery()
    );
}

#[test]
fn battery_floor_skips_work() {
    let (mut world, mut me, mut server) = setup(22, 100);
    let mut rng = SmallRng::seed_from_u64(22);
    let mut data = CampaignData::default();
    // 12 rounds of the full suite drains well past the floor without a
    // charge instruction in between.
    for _ in 0..12 {
        server.push_job(me.id, Instrumentation::Speedtest);
        server.push_job(me.id, Instrumentation::Video);
        for _ in 0..10 {
            server.push_job(me.id, Instrumentation::Speedtest);
        }
    }
    me.run_to_completion(
        &mut server,
        &mut world.net,
        &world.internet.targets,
        &mut data,
        &mut rng,
    );
    assert!(
        me.battery() <= me.battery_floor + 5.0,
        "drained: {}",
        me.battery()
    );
    assert!(
        server
            .skips()
            .iter()
            .any(|(_, _, why)| *why == SkipReason::LowBattery),
        "low-battery skips must be recorded"
    );
}

#[test]
fn ookla_rate_limit_bites_shared_addresses() {
    // A tight per-IP allowance: the eSIM's pooled breakout addresses rotate
    // across attachments, but a single attachment's speedtests all come
    // from one public IP and trip the limiter — the §A.3 failure mode.
    let (mut world, mut me, mut server) = setup(23, 3);
    let mut rng = SmallRng::seed_from_u64(23);
    let mut data = CampaignData::default();
    for _ in 0..8 {
        server.push_job(me.id, Instrumentation::Speedtest);
    }
    me.run_to_completion(
        &mut server,
        &mut world.net,
        &world.internet.targets,
        &mut data,
        &mut rng,
    );
    let limited = server
        .skips()
        .iter()
        .filter(|(_, _, why)| *why == SkipReason::RateLimited)
        .count();
    assert_eq!(data.speedtests.len(), 3, "allowance consumed");
    assert_eq!(limited, 5, "the rest rejected");
}

#[test]
fn polling_an_empty_queue_returns_none() {
    let (mut world, mut me, mut server) = setup(24, 10);
    let mut rng = SmallRng::seed_from_u64(24);
    let mut data = CampaignData::default();
    assert!(me
        .poll(
            &mut server,
            &mut world.net,
            &world.internet.targets,
            &mut data,
            &mut rng
        )
        .is_none());
}
