//! Cross-crate integration: the full pipeline from marketplace to paper
//! findings, at reduced sample counts.

use roamsim::cellular::SimType;
use roamsim::core::TomographyReport;
use roamsim::geo::{City, Country};
use roamsim::ipx::RoamingArch;
use roamsim::measure::{
    fetch_jquery, mtr, ookla_speedtest, play_youtube, resolve, run_device_campaign, CdnProvider,
    DeviceCampaignSpec, Service,
};
use roamsim::stats::median;
use roamsim::world::World;

#[test]
fn hr_ihbo_native_latency_ordering_holds() {
    let mut world = World::build(11);
    let mut rtt = |country: Country| {
        let ep = world.attach_esim(country);
        mtr(
            &mut world.net,
            &ep,
            &world.internet.targets,
            Service::Google,
        )
        .and_then(|o| o.analysis.final_rtt_ms)
        .expect("Google reachable")
    };
    let hr = rtt(Country::PAK);
    let ihbo = rtt(Country::DEU);
    let native = rtt(Country::THA);
    assert!(hr > 2.0 * ihbo, "HR ({hr:.0}) must dwarf IHBO ({ihbo:.0})");
    assert!(ihbo > native * 0.9, "IHBO is not faster than native");
    assert!(hr > 150.0, "HR is in the 'less desirable' band");
}

#[test]
fn classification_of_all_24_countries_matches_table2() {
    let mut world = World::build(12);
    let mut endpoints = Vec::new();
    for c in world.measured_countries() {
        for _ in 0..4 {
            endpoints.push(world.attach_esim(c));
        }
    }
    // Group by country, classify from public IPs via the registry.
    let mut obs = std::collections::BTreeMap::new();
    for ep in &endpoints {
        let b = world.ops.dir.get(ep.att.b_mno);
        let v = world.ops.dir.get(ep.att.v_mno);
        let e = obs
            .entry(ep.country)
            .or_insert_with(|| roamsim::core::EsimObservation {
                visited: ep.country,
                b_mno_name: b.name.clone(),
                b_mno_country: b.country,
                b_mno_asn: b.asn,
                v_mno_asn: v.asn,
                user_city: City::sgw_city_for(ep.country).expect("measured"),
                public_ips: vec![],
            });
        e.public_ips.push(ep.att.public_ip);
    }
    let observations: Vec<_> = obs.into_values().collect();
    let report = TomographyReport::build(&observations, world.net.registry());
    assert_eq!(report.rows.len(), 24);
    assert_eq!(report.by_arch(RoamingArch::Native).len(), 3);
    assert_eq!(report.by_arch(RoamingArch::HomeRouted).len(), 5);
    assert_eq!(report.by_arch(RoamingArch::IpxHubBreakout).len(), 16);
    assert!(
        report.by_arch(RoamingArch::LocalBreakout).is_empty(),
        "no LBO observed"
    );
    assert_eq!(report.suboptimal_breakouts(), (8, 16), "the §4.2 headline");
}

#[test]
fn device_campaign_produces_coherent_records() {
    let mut world = World::build(13);
    let sim = world.attach_physical(Country::PAK);
    let esim = world.attach_esim(Country::PAK);
    let data = run_device_campaign(
        &mut world.net,
        &sim,
        &esim,
        &DeviceCampaignSpec::smoke(),
        &world.internet.targets,
    );
    // Counts: 2 endpoints × spec.
    assert_eq!(data.speedtests.len(), 6);
    assert_eq!(data.traces.len(), 2 * 3 * 3);
    assert_eq!(data.cdns.len(), 2 * 5 * 2);
    assert_eq!(data.dns.len(), 6);
    assert_eq!(data.videos.len(), 4);
    // SIM faster than HR eSIM on every axis (paper's core comparison).
    let m = |t: SimType, f: &dyn Fn(&roamsim::measure::TraceRecord) -> Option<f64>| {
        let v: Vec<f64> = data
            .traces
            .iter()
            .filter(|r| r.tag.sim_type == t)
            .filter_map(f)
            .collect();
        median(&v).expect("non-empty")
    };
    let rtt = |r: &roamsim::measure::TraceRecord| r.analysis.final_rtt_ms;
    assert!(m(SimType::Physical, &rtt) * 3.0 < m(SimType::Esim, &rtt));
}

#[test]
fn measurement_clients_work_on_every_archetype() {
    let mut world = World::build(14);
    for country in [Country::PAK, Country::DEU, Country::KOR] {
        let ep = world.attach_esim(country);
        assert!(
            ookla_speedtest(&mut world.net, &ep, &world.internet.targets, "e2e/st").is_some(),
            "{country} speedtest"
        );
        assert!(
            fetch_jquery(
                &mut world.net,
                &ep,
                &world.internet.targets,
                CdnProvider::Cloudflare,
                Default::default(),
                "e2e/cdn"
            )
            .is_some(),
            "{country} cdn"
        );
        assert!(
            resolve(
                &mut world.net,
                &ep,
                &world.internet.targets,
                "example.org",
                "e2e/dns"
            )
            .is_some(),
            "{country} dns"
        );
        assert!(
            play_youtube(&mut world.net, &ep, &world.internet.targets, "e2e/video").is_some(),
            "{country} video"
        );
    }
}

#[test]
fn dns_mode_follows_architecture() {
    let mut world = World::build(15);
    // HR: operator resolver in Singapore.
    let hr = world.attach_esim(Country::PAK);
    let r = resolve(&mut world.net, &hr, &world.internet.targets, "x.org", "d/0")
        .expect("resolver reachable");
    assert!(!r.doh);
    assert_eq!(
        r.resolver_city,
        City::Singapore,
        "HR resolves in the b-MNO's core"
    );
    // IHBO: Google DoH near the PGW.
    let ihbo = world.attach_esim(Country::GEO);
    let r2 = resolve(
        &mut world.net,
        &ihbo,
        &world.internet.targets,
        "x.org",
        "d/1",
    )
    .expect("resolver reachable");
    assert!(r2.doh, "IHBO uses DoH (the forgotten Android default)");
    let pgw_country = ihbo.att.breakout_city.country();
    // Anycast may flip to the second-nearest site, but it stays regional.
    let d = r2
        .resolver_city
        .location()
        .distance_km(ihbo.att.breakout_city.location());
    assert!(
        r2.resolver_city.country() == pgw_country || d < 1200.0,
        "resolver {} too far from PGW {}",
        r2.resolver_city,
        ihbo.att.breakout_city
    );
}

#[test]
fn hr_video_is_pinned_at_720p_despite_bandwidth() {
    let mut world = World::build(16);
    let ep = world.attach_esim(Country::ARE);
    assert!(ep.youtube_cap_mbps.is_some(), "Singtel throttles video");
    for i in 0..20 {
        let v = play_youtube(
            &mut world.net,
            &ep,
            &world.internet.targets,
            &format!("v/{i}"),
        )
        .expect("edge reachable");
        assert!(
            v.resolution <= roamsim::measure::Resolution::P720,
            "HR video must not exceed 720p, got {}",
            v.resolution
        );
    }
}
