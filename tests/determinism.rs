//! Determinism: the whole point of a seeded simulator is that two runs with
//! the same seed are indistinguishable — and runs with different seeds are
//! not. This guards every layer at once: world construction, attachment,
//! the event engine, the measurement clients and the economics pipeline.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use roamsim::econ::{Crawler, Market, Vantage};
use roamsim::geo::Country;
use roamsim::measure::{mtr, ookla_speedtest, Service};
use roamsim::world::World;

/// Fingerprint a short measurement session.
fn fingerprint(seed: u64) -> Vec<u64> {
    let mut world = World::build(seed);
    let mut out = Vec::new();
    for country in [Country::PAK, Country::DEU, Country::KOR, Country::FRA] {
        let ep = world.attach_esim(country);
        out.push(u64::from(u32::from(ep.att.public_ip)));
        out.push(ep.att.tunnel_km.to_bits());
        if let Some(o) = mtr(
            &mut world.net,
            &ep,
            &world.internet.targets,
            Service::Google,
        ) {
            out.push(o.analysis.private_len as u64);
            out.push(o.analysis.final_rtt_ms.unwrap_or(0.0).to_bits());
        }
        let label = format!("fp/{}", country.alpha3());
        if let Some(s) = ookla_speedtest(&mut world.net, &ep, &world.internet.targets, &label) {
            out.push(s.down_mbps.to_bits());
            out.push(s.latency_ms.to_bits());
        }
    }
    out
}

#[test]
fn same_seed_bit_identical() {
    assert_eq!(fingerprint(42), fingerprint(42));
    assert_eq!(fingerprint(1337), fingerprint(1337));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(fingerprint(42), fingerprint(43));
}

/// The tentpole guarantee of the shard runner: a parallel campaign run is
/// not merely "statistically equivalent" to a sequential one — the
/// exported datasets are the same bytes, because every shard's RNG is
/// keyed by what it measures, never by which worker ran it when.
#[test]
fn parallel_campaigns_export_identical_bytes() {
    use roam_bench::{run_device_mode, run_web_mode, survey_all_esims_mode};
    use roamsim::measure::{cdn_csv, dns_csv, speedtests_csv, traces_csv, videos_csv, RunMode};

    let seq = run_device_mode(11, 0.03, RunMode::Sequential);
    let par = run_device_mode(11, 0.03, RunMode::Parallel(4));
    assert_eq!(speedtests_csv(&seq.data), speedtests_csv(&par.data));
    assert_eq!(traces_csv(&seq.data), traces_csv(&par.data));
    assert_eq!(cdn_csv(&seq.data), cdn_csv(&par.data));
    assert_eq!(dns_csv(&seq.data), dns_csv(&par.data));
    assert_eq!(videos_csv(&seq.data), videos_csv(&par.data));

    let (_, web_seq) = run_web_mode(11, RunMode::Sequential);
    let (_, web_par) = run_web_mode(11, RunMode::Parallel(4));
    assert_eq!(format!("{web_seq:?}"), format!("{web_par:?}"));

    let (_, obs_seq) = survey_all_esims_mode(11, 2, RunMode::Sequential);
    let (_, obs_par) = survey_all_esims_mode(11, 2, RunMode::Parallel(4));
    assert_eq!(format!("{obs_seq:?}"), format!("{obs_par:?}"));
}

#[test]
fn market_and_crawls_are_deterministic() {
    let a = Market::generate(9);
    let b = Market::generate(9);
    let ca = Crawler::new(Vantage::Madrid).crawl(&a, 55);
    let cb = Crawler::new(Vantage::Madrid).crawl(&b, 55);
    assert_eq!(ca.records.len(), cb.records.len());
    for (x, y) in ca.records.iter().zip(&cb.records) {
        assert_eq!(x.price_usd, y.price_usd);
        assert_eq!(x.offer.country, y.offer.country);
    }
}

#[test]
fn visibility_experiment_is_deterministic() {
    let exp = roamsim::core::VisibilityExperiment {
        n_native: 50,
        n_roamers: 30,
        n_aggregator: 20,
        days: 3,
        ..roamsim::core::VisibilityExperiment::paper_setup()
    };
    let run = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (records, planted) = roamsim::core::simulate_core_records(&exp, &mut rng);
        let sum: f64 = records.iter().map(|r| r.data_mb + r.signalling_mb).sum();
        (records.len(), planted.len(), sum.to_bits())
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5).2, run(6).2);
}
