//! Determinism: the whole point of a seeded simulator is that two runs with
//! the same seed are indistinguishable — and runs with different seeds are
//! not. This guards every layer at once: world construction, attachment,
//! the event engine, the measurement clients and the economics pipeline.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use roamsim::econ::{Crawler, Market, Vantage};
use roamsim::geo::Country;
use roamsim::measure::{mtr, ookla_speedtest, Service};
use roamsim::world::World;

/// Fingerprint a short measurement session.
fn fingerprint(seed: u64) -> Vec<u64> {
    let mut world = World::build(seed);
    let mut out = Vec::new();
    for country in [Country::PAK, Country::DEU, Country::KOR, Country::FRA] {
        let ep = world.attach_esim(country);
        out.push(u64::from(u32::from(ep.att.public_ip)));
        out.push(ep.att.tunnel_km.to_bits());
        if let Some(o) = mtr(
            &mut world.net,
            &ep,
            &world.internet.targets,
            Service::Google,
        ) {
            out.push(o.analysis.private_len as u64);
            out.push(o.analysis.final_rtt_ms.unwrap_or(0.0).to_bits());
        }
        let label = format!("fp/{}", country.alpha3());
        if let Some(s) = ookla_speedtest(&mut world.net, &ep, &world.internet.targets, &label) {
            out.push(s.down_mbps.to_bits());
            out.push(s.latency_ms.to_bits());
        }
    }
    out
}

#[test]
fn same_seed_bit_identical() {
    assert_eq!(fingerprint(42), fingerprint(42));
    assert_eq!(fingerprint(1337), fingerprint(1337));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(fingerprint(42), fingerprint(43));
}

/// The tentpole guarantee of the shard runner: a parallel campaign run is
/// not merely "statistically equivalent" to a sequential one — the
/// exported datasets are the same bytes, because every shard's RNG is
/// keyed by what it measures, never by which worker ran it when.
#[test]
fn parallel_campaigns_export_identical_bytes() {
    use roam_bench::CampaignRunner;
    use roamsim::measure::Exporter;

    let seq = CampaignRunner::new(11).scale(0.03).run();
    let par = CampaignRunner::new(11).scale(0.03).parallel(4).run();
    for (ds, csv) in seq.data.export_all() {
        assert_eq!(csv, par.data.export(ds), "{ds:?} diverged across workers");
    }

    let web_seq = CampaignRunner::new(11).run_web();
    let web_par = CampaignRunner::new(11).parallel(4).run_web();
    assert_eq!(
        format!("{:?}", web_seq.results),
        format!("{:?}", web_par.results)
    );

    let obs_seq = CampaignRunner::new(11).run_survey(2);
    let obs_par = CampaignRunner::new(11).parallel(4).run_survey(2);
    assert_eq!(
        format!("{:?}", obs_seq.observations),
        format!("{:?}", obs_par.observations)
    );
}

#[test]
fn market_and_crawls_are_deterministic() {
    let a = Market::generate(9);
    let b = Market::generate(9);
    let ca = Crawler::new(Vantage::Madrid).crawl(&a, 55);
    let cb = Crawler::new(Vantage::Madrid).crawl(&b, 55);
    assert_eq!(ca.records.len(), cb.records.len());
    for (x, y) in ca.records.iter().zip(&cb.records) {
        assert_eq!(x.price_usd, y.price_usd);
        assert_eq!(x.offer.country, y.offer.country);
    }
}

#[test]
fn visibility_experiment_is_deterministic() {
    let exp = roamsim::core::VisibilityExperiment {
        n_native: 50,
        n_roamers: 30,
        n_aggregator: 20,
        days: 3,
        ..roamsim::core::VisibilityExperiment::paper_setup()
    };
    let run = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (records, planted) = roamsim::core::simulate_core_records(&exp, &mut rng);
        let sum: f64 = records.iter().map(|r| r.data_mb + r.signalling_mb).sum();
        (records.len(), planted.len(), sum.to_bits())
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5).2, run(6).2);
}
