//! Order insensitivity: every measurement in a device-campaign plan runs
//! on its own flow, keyed by the attachment's flow stamp and the plan
//! entry's label — never by execution order. Permuting the plan must
//! therefore permute the records and change nothing else, under both the
//! closed-form transport and the discrete-event engine.

use roamsim::geo::Country;
use roamsim::measure::{
    run_measurement, CampaignData, DeviceCampaignSpec, Endpoint, Exporter, PlannedMeasurement,
};
use roamsim::netsim::Network;
use roamsim::world::World;

/// Run one plan entry in isolation and serialize whatever it produced.
/// The CSV exporters cover every record field, so two entries with equal
/// serializations produced byte-identical records.
fn run_one(
    net: &mut Network,
    ep: &Endpoint,
    targets: &roamsim::measure::ServiceTargets,
    m: PlannedMeasurement,
) -> String {
    let mut data = CampaignData::default();
    run_measurement(net, ep, targets, m, &mut data);
    data.export_all()
        .into_iter()
        .map(|(_, csv)| csv)
        .collect::<String>()
}

/// Execute `plan` in the given order, returning each entry's serialized
/// records keyed by the entry itself.
fn run_plan(
    world: &mut World,
    ep: &Endpoint,
    plan: &[PlannedMeasurement],
) -> Vec<(PlannedMeasurement, String)> {
    plan.iter()
        .map(|&m| (m, run_one(&mut world.net, ep, &world.internet.targets, m)))
        .collect()
}

fn check_permutation_invariance() {
    let mut world = World::build(29);
    let ep = world.attach_esim(Country::PAK);
    let spec = DeviceCampaignSpec {
        ookla: (2, 2),
        mtr_per_target: (1, 1),
        cdn_per_provider: (1, 1),
        dns: (2, 2),
        video: (2, 2),
    };
    let plan = spec.plan(ep.sim_type);
    assert!(plan.len() > 8, "plan is large enough to permute");

    let forward = run_plan(&mut world, &ep, &plan);

    // Reversal and rotation together exercise every relative reordering
    // class that matters: first-vs-last swaps and mid-plan shifts.
    let mut reversed_plan = plan.clone();
    reversed_plan.reverse();
    let mut rotated_plan = plan.clone();
    rotated_plan.rotate_left(plan.len() / 2);

    for permuted_plan in [reversed_plan, rotated_plan] {
        let permuted = run_plan(&mut world, &ep, &permuted_plan);
        for (m, bytes) in &forward {
            let (_, permuted_bytes) = permuted
                .iter()
                .find(|(pm, _)| pm == m)
                .expect("permutation preserves the entry set");
            assert_eq!(
                bytes, permuted_bytes,
                "records for {m:?} changed when the plan order changed"
            );
        }
    }
}

#[test]
fn permuted_plan_yields_identical_records_per_flow_key() {
    // Closed-form transport (the default).
    std::env::remove_var("ROAM_TRANSPORT");
    check_permutation_invariance();

    // Discrete-event engine transport. `TransportKind::from_env` reads the
    // variable per probe, so flipping it mid-test takes effect immediately.
    std::env::set_var("ROAM_TRANSPORT", "engine");
    check_permutation_invariance();
    std::env::remove_var("ROAM_TRANSPORT");
}
