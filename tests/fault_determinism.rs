//! The degraded-run determinism contract: with a pinned fault schedule,
//! campaign exports and fleet reports are byte-identical across
//! `ROAM_PARALLEL` × `ROAM_TRANSPORT` × `ROAM_FLEET_SHARDS`, runs
//! complete with explicit `failed` rows instead of aborting, and the
//! degradation summary is populated.
//!
//! One `#[test]` on purpose: the fault-spec pin is process-global (like
//! the transport pin), so the matrix must not race a sibling test that
//! resolves `FaultSpec::current()`.

use roam_bench::CampaignRunner;
use roamsim::fleet::FleetRunner;
use roamsim::measure::{Dataset, Exporter};
use roamsim::netsim::{FaultSpec, TransportKind};

const SEED: u64 = 31;

/// Every dataset a campaign exports, concatenated — the byte-identity
/// boundary for the campaign half of the matrix.
fn campaign_bytes(workers: usize, transport: TransportKind) -> (String, u64, u64) {
    let run = CampaignRunner::new(SEED)
        .scale(0.05)
        .parallel(workers)
        .transport(transport)
        .faults(FaultSpec::heavy())
        .run();
    let mut bytes = String::new();
    for ds in [
        Dataset::Speedtests,
        Dataset::Traces,
        Dataset::Cdn,
        Dataset::Dns,
        Dataset::Videos,
    ] {
        bytes.push_str(&run.data.export(ds));
    }
    let d = run.data.degradation();
    (bytes, d.failed(), d.degraded())
}

#[test]
fn degraded_runs_are_matrix_invariant_and_explicit() {
    // -- campaign half: workers × transport under a heavy schedule --
    let (base, failed, degraded) = campaign_bytes(1, TransportKind::ClosedForm);
    assert!(
        failed > 0,
        "heavy faults must surface explicit failed rows, not silent gaps"
    );
    assert!(degraded >= failed);
    // Failed rows are explicit rows: empty metric cells, typed status.
    assert!(
        base.lines()
            .any(|l| l.ends_with(",timeout") || l.ends_with(",unreachable")),
        "no failed row made it into the exports"
    );
    for (workers, transport) in [
        (4, TransportKind::ClosedForm),
        (1, TransportKind::Engine),
        (4, TransportKind::Engine),
    ] {
        let (bytes, f, d) = campaign_bytes(workers, transport);
        assert_eq!(
            base, bytes,
            "campaign exports diverged at workers={workers}, {transport:?}"
        );
        assert_eq!((failed, degraded), (f, d));
    }

    // -- fleet half: shards × workers × transport, 1.5k users --
    let fleet = |shards: usize, workers: usize, transport: TransportKind| {
        FleetRunner::new(SEED)
            .users(1_500)
            .shards(shards)
            .parallel(workers)
            .transport(transport)
            .faults(FaultSpec::heavy())
            .run()
    };
    let base_run = fleet(1, 1, TransportKind::ClosedForm);
    let base_render = base_run.report.render();
    assert!(
        base_render.contains("degradation:"),
        "heavy fleet run must render its degradation summary"
    );
    assert!(base_run.report.degraded.degraded() > 0);
    // The per-shard summaries fold exactly into the report's total.
    for (shards, workers, transport) in [
        (3, 1, TransportKind::ClosedForm),
        (3, 4, TransportKind::Engine),
        (5, 2, TransportKind::Engine),
    ] {
        let run = fleet(shards, workers, transport);
        assert_eq!(
            base_render,
            run.report.render(),
            "fleet report diverged at shards={shards}, workers={workers}, {transport:?}"
        );
        assert_eq!(run.degraded.len(), shards, "one summary per shard");
        let mut total = roamsim::measure::DegradationSummary::default();
        for (_, d) in &run.degraded {
            total.merge(*d);
        }
        assert_eq!(total, run.report.degraded);
    }

    // -- off-spec pin: the fault plane must stay fully dormant --
    let quiet = FleetRunner::new(SEED)
        .users(300)
        .faults(FaultSpec::off())
        .run();
    assert!(!quiet.report.render().contains("degradation:"));
    assert_eq!(quiet.report.degraded.degraded(), 0);
}
