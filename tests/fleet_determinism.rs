//! The fleet determinism contract: [`FleetReport::render`] is
//! byte-identical across shard counts, worker counts and transport
//! backends. Shard count cannot matter because every shard builds the
//! same staged world and users only ever touch their own RNG streams;
//! workers cannot matter because shards merge in index order through
//! exactly-associative state; the transport cannot matter because only
//! transport-independent observables (packet-walk RTTs, resolver
//! lookups, drawn workload sizes) enter the report.

use roamsim::fleet::FleetRunner;
use roamsim::netsim::TransportKind;
use roamsim::telemetry::TelemetryMode;

const SEED: u64 = 23;
const USERS: u64 = 1_500;

// shards × workers × transport — every axis the report must be blind to.
const MATRIX: [(usize, usize, TransportKind); 6] = [
    (1, 1, TransportKind::ClosedForm),
    (3, 1, TransportKind::ClosedForm),
    (3, 4, TransportKind::ClosedForm),
    (1, 1, TransportKind::Engine),
    (3, 4, TransportKind::Engine),
    (5, 2, TransportKind::Engine),
];

#[test]
fn fleet_report_bytes_survive_shards_workers_and_transports() {
    let mut renders = Vec::new();
    for (shards, workers, transport) in MATRIX {
        let run = FleetRunner::new(SEED)
            .users(USERS)
            .shards(shards)
            .parallel(workers)
            .transport(transport)
            .run();
        assert_eq!(run.timings.len(), shards, "one timing per shard");
        renders.push((shards, workers, transport, run.report.render()));
    }
    let (_, _, _, base) = &renders[0];
    // Not trivially empty: the whole population ran and every session
    // kind fired.
    assert!(base.contains(&format!("users                {USERS}")));
    assert!(!base.contains("count=0 "), "all metric sketches populated");
    for needle in ["rtt_probes", "dns_lookups", "transfers", "spend_usd"] {
        assert!(base.contains(needle), "report lost its {needle} line");
    }
    for (shards, workers, transport, render) in &renders[1..] {
        assert_eq!(
            base, render,
            "fleet report diverged at shards={shards}, workers={workers}, {transport:?}"
        );
    }
}

#[test]
fn telemetry_is_worker_and_transport_invariant_at_fixed_shards() {
    // Telemetry sees the shard structure (`shards_merged`), so unlike the
    // report it is only pinned across workers × transport.
    let mut renders = Vec::new();
    for (workers, transport) in [
        (1, TransportKind::ClosedForm),
        (4, TransportKind::ClosedForm),
        (4, TransportKind::Engine),
    ] {
        let run = FleetRunner::new(SEED)
            .users(400)
            .shards(2)
            .parallel(workers)
            .transport(transport)
            .telemetry(TelemetryMode::Summary)
            .run();
        renders.push(run.telemetry.render());
    }
    assert!(renders[0].contains("fleet_users"));
    assert!(renders[0].contains("fleet_sessions"));
    assert!(renders[0].contains("fleet_purchases"));
    assert_eq!(renders[0], renders[1]);
    assert_eq!(renders[0], renders[2]);
}

#[test]
fn shards_partition_the_population_exactly() {
    // More shards than users degrades gracefully to one user per shard.
    let run = FleetRunner::new(7).users(3).shards(64).run();
    assert_eq!(run.timings.len(), 3);
    assert!(run.report.render().contains("users                3"));
}

/// The acceptance-scale run: a million subscribers in O(shards × sketch)
/// memory. Ignored by default (minutes in debug); CI exercises the same
/// path in release via the `fleet_smoke` job.
#[test]
#[ignore = "population-scale: run explicitly or via the CI fleet_smoke job"]
fn a_million_users_fit_through_the_streaming_plane() {
    let run = FleetRunner::new(SEED)
        .users(1_000_000)
        .shards(8)
        .parallel(4)
        .run();
    assert!(run.report.render().contains("users                1000000"));
}
