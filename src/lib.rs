//! # roamsim
//!
//! A simulation and measurement toolkit reproducing **"Roam Without a Home:
//! Unraveling the Airalo Ecosystem"** (IMC 2025).
//!
//! The paper dissects Airalo — a *thick* Mobile Network Aggregator that
//! sells eSIM profiles leased from six base operators and breaks roaming
//! traffic out at third-party gateways inside the IPX ecosystem (IPX Hub
//! Breakout). Its raw data came from travellers, rooted phones and a
//! commercial price aggregator; none of that is reachable from a laptop, so
//! this workspace rebuilds the entire substrate as a deterministic
//! simulation and re-runs the paper's methodology on top of it.
//!
//! ## Crate map
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`columnar`] | `roam-columnar` | zero-copy column pages + streaming query engine |
//! | [`geo`] | `roam-geo` | geodesy, country/city gazetteer |
//! | [`stats`] | `roam-stats` | quantiles, CDFs, Welch t, Levene |
//! | [`netsim`] | `roam-netsim` | packet-level network simulator (wire formats, TTL/ICMP, CG-NAT, throughput) |
//! | [`cellular`] | `roam-cellular` | PLMN/IMSI, radio/CQI, operators, SIM/eSIM + RSP |
//! | [`ipx`] | `roam-ipx` | PGW providers, HR/LBO/IHBO, GTP sessions |
//! | [`core`] | `roam-core` | thick-MNA model + tomography (the paper's contribution) |
//! | [`measure`] | `roam-measure` | traceroute/speedtest/CDN/DNS/video clients, campaigns |
//! | [`telemetry`] | `roam-telemetry` | deterministic counters/histograms/events (`ROAM_TELEMETRY`) |
//! | [`econ`] | `roam-econ` | eSIM market, crawler, price analytics |
//! | [`world`] | `roam-world` | the calibrated 24-country scenario + emnify validation |
//! | [`fleet`] | `roam-fleet` | population-scale deterministic workload generator (`ROAM_FLEET_*`) |
//!
//! ## Quickstart
//!
//! ```
//! use roamsim::world::World;
//! use roamsim::measure::{mtr, Service};
//! use roamsim::geo::Country;
//!
//! // Build the paper's world and buy an Airalo eSIM for Pakistan.
//! let mut world = World::build(42);
//! let esim = world.attach_esim(Country::PAK);
//!
//! // It is Home-Routed through Singtel: traffic tunnels to Singapore.
//! let out = mtr(&mut world.net, &esim, &world.internet.targets, Service::Google)
//!     .expect("Google edges exist");
//! assert!(out.analysis.reached);
//! assert_eq!(out.analysis.pgw_city, Some(roamsim::geo::City::Singapore));
//! // Most of the latency is private-path (the GTP tunnel), §4.3's finding:
//! assert!(out.analysis.private_share.unwrap() > 0.5);
//! ```

pub use roam_cellular as cellular;
pub use roam_columnar as columnar;
pub use roam_core as core;
pub use roam_econ as econ;
pub use roam_fleet as fleet;
pub use roam_geo as geo;
pub use roam_ipx as ipx;
pub use roam_measure as measure;
pub use roam_netsim as netsim;
pub use roam_service as service;
pub use roam_stats as stats;
pub use roam_telemetry as telemetry;
pub use roam_world as world;
